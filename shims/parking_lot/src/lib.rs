//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it actually uses: [`Mutex`] and
//! [`RwLock`] with non-poisoning guards. Locks are delegated to `std`;
//! a poisoned `std` lock (a panic while holding the guard) is recovered
//! into the inner value, matching `parking_lot`'s no-poisoning semantics.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (non-poisoning `lock()` like `parking_lot`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock (non-poisoning guards like `parking_lot`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
