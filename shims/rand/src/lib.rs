//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it actually uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range`, `gen_bool` and `gen`. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic across platforms, which is
//! all the synthetic-dataset and test code requires (the exact stream
//! differs from upstream `rand`; nothing in the workspace depends on
//! upstream's bit stream, only on determinism per seed).

#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator seedable from integers or byte arrays.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Core RNG interface: raw 32/64-bit output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0 <= p <= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.sample_f64() < p
    }

    /// A random value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    #[doc(hidden)]
    fn sample_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform range sampler. Mirrors upstream rand's
/// structure: a single blanket `SampleRange` impl per range shape keyed
/// on this trait, which is what lets integer-literal inference unify
/// the range's element type with the surrounding expression.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of one 64-bit draw is irrelevant here.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + unit * (end - start)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        f64::sample_half_open(rng, start, end)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: f32, end: f32) -> f32 {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        start + unit * (end - start)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f32, end: f32) -> f32 {
        f32::sample_half_open(rng, start, end)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state, where xoshiro is a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// The conventional prelude re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(7); // unrelated
            a.gen_range(0i64..1000) == c.gen_range(0i64..1000)
        });
        assert!(!same);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(5i64..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
