//! The JSON-like value tree shared by the `serde` and `serde_json` shims.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer when exactly representable, float otherwise.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Builds an integer number.
    pub fn from_i64(n: i64) -> Number {
        Number::Int(n)
    }

    /// Builds a float number.
    pub fn from_f64(f: f64) -> Number {
        Number::Float(f)
    }

    /// The value as `i64`, when integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::Int(n) => Some(*n),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(n) => *n as f64,
            Number::Float(f) => *f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        self.as_f64() == other.as_f64()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(n) => write!(f, "{n}"),
            Number::Float(x) if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e16 => {
                write!(f, "{x:.1}")
            }
            Number::Float(x) => write!(f, "{x}"),
        }
    }
}

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys, like serde_json's default BTreeMap).
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as `i64`, when it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `&str`, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, when boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, when an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member access that returns `None` off-type or off-key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        i64::try_from(*other).is_ok_and(|n| self.as_i64() == Some(n))
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        i64::try_from(*other).is_ok_and(|n| self.as_i64() == Some(n))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(Number::Int(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(Number::Int(n as i64))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

/// Deserialization failure: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}
