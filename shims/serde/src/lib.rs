//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a simplified serde: instead of the visitor-based
//! `Serializer`/`Deserializer` machinery, [`Serialize`] and
//! [`Deserialize`] convert to and from an owned JSON-like [`Value`] tree.
//! The companion `serde_json` shim renders and parses that tree. The
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! `serde_derive` shim) generate these conversions with serde's standard
//! data model: structs as objects, newtypes as their inner value, tuples
//! and tuple structs as arrays, unit enum variants as strings.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{DeError, Number, Value};

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if let Ok(i) = i64::try_from(*self) {
            Value::Number(Number::from_i64(i))
        } else {
            Value::Number(Number::from_f64(*self as f64))
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<u64, DeError> {
        let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
        u64::try_from(n).map_err(|_| DeError::new(format!("integer {n} out of range for u64")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            {
                                let _ = stringify!($t);
                                $t::from_value(
                                    it.next().ok_or_else(|| DeError::new("tuple too short"))?,
                                )?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::new("tuple too long"));
                        }
                        Ok(tuple)
                    }
                    other => Err(DeError::expected("array", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}
