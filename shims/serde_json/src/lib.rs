//! Offline stand-in for the `serde_json` crate.
//!
//! Works with the workspace's simplified `serde` shim: [`to_string`] /
//! [`to_string_pretty`] render a [`Value`] tree produced by
//! `serde::Serialize::to_value`, and [`from_str`] parses JSON text back
//! into a tree handed to `serde::Deserialize::from_value`. The grammar is
//! RFC 8259 JSON (with `\uXXXX` escapes, surrogate pairs included);
//! objects use sorted keys like upstream serde_json's default `BTreeMap`
//! backing.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde::value::{Number, Value};

/// JSON (de)serialization failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// Serialises to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserialisable type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Converts a [`Value`] tree into any deserialisable type.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

// ---- rendering ----

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            use fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            items.len(),
            out,
            indent,
            level,
            ('[', ']'),
            |item, out, lvl| write_value(item, out, indent, lvl),
        ),
        Value::Object(map) => write_seq(
            map.iter(),
            map.len(),
            out,
            indent,
            level,
            ('{', '}'),
            |(k, v), out, lvl| {
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, lvl)
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (level + 1)));
        }
        write_item(item, out, level + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * level));
    }
    out.push(brackets.1);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected '{}', found '{}' at byte {}",
                b as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or ']', found '{}' at byte {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}', found '{}' at byte {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                    }
                    c => {
                        return Err(Error::new(format!(
                            "invalid escape '\\{}' at byte {}",
                            c as char,
                            self.pos - 1
                        )))
                    }
                },
                // Collect raw UTF-8 bytes of a multi-byte character.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::from_f64(f)))
                .map_err(|e| Error::new(format!("bad number '{text}': {e}")))
        } else {
            text.parse::<i64>()
                .map(|n| Value::Number(Number::from_i64(n)))
                .or_else(|_| {
                    text.parse::<f64>()
                        .map(|f| Value::Number(Number::from_f64(f)))
                        .map_err(|e| Error::new(format!("bad number '{text}': {e}")))
                })
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let src = r#"{"a": [1, 2.5, "x\n\"y\""], "b": {"c": true, "d": null}, "n": -7}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1i64);
        assert_eq!(v["a"][1], 2.5f64);
        assert_eq!(v["a"][2], "x\n\"y\"");
        assert_eq!(v["b"]["c"], true);
        assert!(v["b"]["d"].is_null());
        assert_eq!(v["n"], -7i64);
        let printed = to_string(&v).unwrap();
        let back: Value = from_str(&printed).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_printing_reparses() {
        let v: Value = from_str(r#"{"series": [{"label": "o1", "mean": 0.5}]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"series\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
