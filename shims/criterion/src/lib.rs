//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of criterion's API used by the workspace's bench
//! targets — [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistics. Output
//! is one line per benchmark: mean time per iteration plus derived
//! throughput when configured.
//!
//! When the binary is invoked without `--bench` (as `cargo test` does
//! for `harness = false` bench targets), every benchmark body runs
//! exactly once as a smoke test and no timing is reported.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement throughput basis for a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name parameterised by an input label.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Full measurement only under `cargo bench` (which passes
        // `--bench`); `cargo test` runs bench targets as smoke tests.
        let smoke_only = !std::env::args().any(|a| a == "--bench");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            smoke_only: self.smoke_only,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let smoke = self.smoke_only;
        run_one("", name, smoke, None, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    smoke_only: bool,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput basis for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.to_string(),
            self.smoke_only,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.to_string(),
            self.smoke_only,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times a closure; handed to each benchmark body.
pub struct Bencher {
    smoke_only: bool,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, storing mean nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke_only {
            std::hint::black_box(f());
            return;
        }
        std::hint::black_box(f()); // warm-up
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || iters >= 1 << 22 {
                self.nanos_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 4;
        }
    }
}

fn run_one(
    group: &str,
    name: &str,
    smoke_only: bool,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let mut b = Bencher {
        smoke_only,
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    if smoke_only {
        println!("bench {label}: ok (smoke)");
        return;
    }
    let per_iter = Duration::from_nanos(b.nanos_per_iter as u64);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (b.nanos_per_iter / 1e9);
            println!("bench {label}: {per_iter:?}/iter, {rate:.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (b.nanos_per_iter / 1e9) / (1024.0 * 1024.0);
            println!("bench {label}: {per_iter:?}/iter, {rate:.1} MiB/s");
        }
        None => println!("bench {label}: {per_iter:?}/iter"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque-value helper; re-exported for criterion compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
