//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `crossbeam` it uses:
//!
//! * [`thread::scope`] — scoped threads, delegated to `std::thread::scope`
//!   (the closure-takes-`&Scope` spawn signature is preserved);
//! * [`channel`] — bounded multi-producer multi-consumer channels built on
//!   a mutex + condvars, with `try_send`-style explicit backpressure.

#![warn(missing_docs)]

pub mod channel;

/// Scoped threads with crossbeam's `scope(|s| ...)` / `s.spawn(|_| ...)`
/// calling convention, backed by `std::thread::scope`.
pub mod thread {
    /// A scope handle passed to [`scope`] closures; `spawn` borrows it so
    /// spawned closures may themselves spawn.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload as an error).
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so it
        /// can spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Creates a scope in which threads borrowing local data can be
    /// spawned. Always returns `Ok`: a panicking child re-panics in the
    /// parent (std semantics), so the `Err` arm of callers is never taken.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn nested_spawn_works() {
        let n = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
