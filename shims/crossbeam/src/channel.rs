//! Bounded MPMC channels with explicit backpressure, mirroring the
//! `crossbeam-channel` API surface the workspace uses: `bounded`,
//! `unbounded`, `Sender::send`/`try_send`, `Receiver::recv`/`try_recv`/
//! `recv_timeout`, and the matching error types.
//!
//! Implementation: a `VecDeque` under a mutex with two condvars (readers
//! wait on `not_empty`, writers on `not_full`). Disconnection is tracked
//! with sender/receiver reference counts.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the caller owns the message again.
    Full(T),
    /// Every receiver was dropped.
    Disconnected(T),
}

/// Error returned by [`Sender::send`] when every receiver was dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender was dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender was dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender was dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// `None` capacity = unbounded.
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel. Clonable (multi-producer).
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of a channel. Clonable (multi-consumer).
pub struct Receiver<T>(Arc<Shared<T>>);

/// Creates a bounded channel of the given capacity (> 0).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded channel capacity must be positive");
    make(Some(cap))
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(shared.clone()), Receiver(shared))
}

impl<T> Sender<T> {
    /// Sends, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.0.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.0.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.0.not_full.wait(state).unwrap();
                }
                _ => break,
            }
        }
        state.queue.push_back(msg);
        drop(state);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Attempts to send without blocking; a `Full` result is the
    /// backpressure signal.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.0.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.0.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        state.queue.push_back(msg);
        drop(state);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.0.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.0.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.0.not_empty.wait(state).unwrap();
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.0.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.0.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives, blocking up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.0.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (s, _) = self
                .0
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = s;
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.0.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.0.state.lock().unwrap().senders += 1;
        Sender(self.0.clone())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.0.state.lock().unwrap().receivers += 1;
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_backpressure_and_fifo() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn blocking_send_wakes_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
