//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generation half of proptest's API — [`Strategy`],
//! combinators (`prop_map`, `prop_recursive`, tuples, ranges,
//! `prop::collection::{vec, btree_set}`, `prop_oneof!`) and the
//! [`proptest!`] test macro — on top of the workspace's `rand` shim.
//! There is no shrinking: a failing case panics with the generated
//! inputs in the assertion message (every property test in this
//! workspace formats its inputs into `prop_assert!` messages already).
//! Case generation is deterministic: case `i` of every test uses
//! `StdRng::seed_from_u64(hash(i))`, so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::Arc;

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and
    /// `branch(inner)` wraps the previous level. `depth` bounds the
    /// recursion; `_desired_size` and `_expected_branch_size` are
    /// accepted for API compatibility but unused (generation here is
    /// already depth-bounded).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let rec = branch(current).boxed();
            let l = leaf.clone();
            current = BoxedStrategy::new(move |rng| {
                use rand::Rng as _;
                if rng.gen_bool(0.4) {
                    l.sample(rng)
                } else {
                    rec.sample(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.sample(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut StdRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling closure.
    pub fn new(f: impl Fn(&mut StdRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng as _;
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Uniform choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng as _;
        let idx = rng.gen_range(0usize..self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{BTreeSet, Range, StdRng, Strategy};

        /// A `Vec` with length drawn from `len` and items from `item`.
        pub fn vec<S: Strategy>(item: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { item, len }
        }

        /// A `BTreeSet` built from up to `len` drawn items (duplicates
        /// collapse, matching upstream's size-as-upper-bound behaviour).
        pub fn btree_set<S: Strategy>(item: S, len: Range<usize>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy { item, len }
        }

        /// See [`vec()`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            item: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                use rand::Rng as _;
                let n = if self.len.is_empty() {
                    self.len.start
                } else {
                    rng.gen_range(self.len.start..self.len.end)
                };
                (0..n).map(|_| self.item.sample(rng)).collect()
            }
        }

        /// See [`btree_set`].
        #[derive(Clone)]
        pub struct BTreeSetStrategy<S> {
            item: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                use rand::Rng as _;
                let n = if self.len.is_empty() {
                    self.len.start
                } else {
                    rng.gen_range(self.len.start..self.len.end)
                };
                (0..n).map(|_| self.item.sample(rng)).collect()
            }
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property runs, and the rest of the knobs the
    /// upstream config exposes (unused here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Runs `body` for each case with a per-case deterministic RNG.
/// Called by the [`proptest!`] expansion; not part of the public API.
#[doc(hidden)]
pub fn run_cases(config: test_runner::ProptestConfig, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..u64::from(config.cases) {
        // SplitMix-style spread so consecutive case seeds are unrelated.
        let seed = (case ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let mut rng = StdRng::seed_from_u64(seed);
        body(&mut rng);
    }
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, |prop_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)+
                    $body
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Asserts a condition inside a property (panics with the message; no
/// shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies (which may be distinct types).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The conventional `use proptest::prelude::*` surface.
pub mod prelude {
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<i64>> {
        prop::collection::vec(0i64..10, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vectors_respect_bounds(v in small_vec()) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn tuples_and_maps_compose(p in (0u8..3, 1i64..4).prop_map(|(a, b)| (a, b * 2))) {
            prop_assert!(p.0 < 3);
            prop_assert!(p.1 % 2 == 0, "odd: {}", p.1);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursive_terminate(s in leafy()) {
            prop_assert!(!s.is_empty());
        }
    }

    fn leafy() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            (0u8..3).prop_map(|i| format!("c{i}")),
            (0i64..9).prop_map(|i| i.to_string()),
        ];
        leaf.prop_recursive(2, 8, 2, |inner| {
            (0u8..2, prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(f, args)| format!("f{f}({})", args.join(",")))
        })
    }
}
