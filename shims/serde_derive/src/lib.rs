//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! simplified value-tree traits of the workspace's `serde` shim, parsing
//! the item with the bare `proc_macro` API (no `syn`/`quote`, which are
//! unavailable offline). Supported shapes — exactly those appearing in
//! the workspace:
//!
//! * structs with named fields  -> JSON objects keyed by field name;
//! * tuple structs: one field   -> the inner value (newtype convention),
//!   several fields             -> a JSON array;
//! * unit structs               -> `null`;
//! * enums with unit variants   -> the variant name as a string.
//!
//! Lifetime generics (e.g. `struct Foo<'a>`) are carried through; type
//! parameters are rejected with a compile error naming this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed item: name, generics source text, and shape.
struct Item {
    name: String,
    /// Generic parameter list including angle brackets (e.g. `<'a>`), or
    /// empty.
    generics: String,
    shape: Shape,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    UnitEnum(Vec<String>),
}

/// Derives `serde::Serialize` (value-tree shim semantics).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (value-tree shim semantics).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let src = if serialize {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    src.parse()
        .expect("serde_derive shim generated invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Extracts name, generics and shape from a struct/enum definition.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected struct/enum, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("serde shim: cannot derive for `{kind}` items"));
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected item name, got {other:?}")),
    };
    i += 1;

    // Generics: collect `<...>` token text, balancing nested brackets.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0usize;
            let mut parts: Vec<String> = Vec::new();
            loop {
                let t = tokens
                    .get(i)
                    .ok_or_else(|| "serde shim: unbalanced generics".to_string())?;
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                parts.push(t.to_string());
                i += 1;
                if depth == 0 {
                    break;
                }
            }
            // Concatenate without spaces so lifetime tokens (`'` + ident)
            // re-parse as lifetimes rather than a char literal.
            generics = parts.concat();
            if generics.contains("where") {
                return Err("serde shim: where clauses are unsupported".into());
            }
            // Reject type parameters: every comma-separated entry must be
            // a lifetime (the only generic shape the workspace derives).
            let inner = &generics[1..generics.len() - 1];
            for param in inner.split(',') {
                if !param.trim().starts_with('\'') {
                    return Err(
                        "serde shim: type parameters on derived items are unsupported".into(),
                    );
                }
            }
        }
    }

    // Body.
    if kind == "enum" {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("serde shim: expected enum body, got {other:?}")),
        };
        let variants = parse_unit_variants(body)?;
        return Ok(Item {
            name,
            generics,
            shape: Shape::UnitEnum(variants),
        });
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok(Item {
                name,
                generics,
                shape: Shape::Named(fields),
            })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_top_level_fields(g.stream());
            Ok(Item {
                name,
                generics,
                shape: Shape::Tuple(arity),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
            name,
            generics,
            shape: Shape::Unit,
        }),
        other => Err(format!("serde shim: unsupported struct body {other:?}")),
    }
}

/// Field names of a named-field body: the identifier right before each
/// top-level single `:` (path separators `::` are skipped as pairs).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut prev: Option<String> = None;
    let mut depth = 0usize;
    let mut it = body.into_iter().peekable();
    while let Some(t) = it.next() {
        match &t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ':' if depth == 0 => {
                    let is_path = matches!(
                        it.peek(),
                        Some(TokenTree::Punct(next)) if next.as_char() == ':'
                    );
                    if is_path {
                        it.next(); // consume the second ':' of `::`
                    } else if let Some(name) = prev.take() {
                        fields.push(name);
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 => {
                let s = id.to_string();
                if s != "pub" {
                    prev = Some(s);
                }
            }
            _ => {}
        }
    }
    Ok(fields)
}

/// Number of comma-separated entries at bracket depth zero.
fn count_top_level_fields(body: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut any = false;
    for t in body {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    count += 1;
                    any = false;
                    continue;
                }
                _ => {}
            }
        }
        any = true;
    }
    count + usize::from(any)
}

/// Variant names of an all-unit enum; data-carrying variants are
/// rejected.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut expecting_name = true;
    let mut i_tokens = body.into_iter().peekable();
    while let Some(t) = i_tokens.next() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i_tokens.next(); // the attribute group
            }
            TokenTree::Punct(p) if p.as_char() == ',' => expecting_name = true,
            TokenTree::Ident(id) if expecting_name => {
                variants.push(id.to_string());
                expecting_name = false;
            }
            TokenTree::Group(_) => {
                return Err("serde shim: only unit enum variants are supported".into());
            }
            _ => {}
        }
    }
    Ok(variants)
}

fn impl_header(trait_name: &str, item: &Item) -> String {
    let Item { name, generics, .. } = item;
    if generics.is_empty() {
        format!("impl serde::{trait_name} for {name} ")
    } else {
        format!("impl{generics} serde::{trait_name} for {name}{generics} ")
    }
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header("Serialize", item);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert({f:?}.to_string(), serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "let mut map = std::collections::BTreeMap::new();\n{inserts}serde::Value::Object(map)"
            )
        }
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => serde::Value::String({v:?}.to_string()),\n"))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!("{header}{{\n fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}")
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header("Deserialize", item);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let gets: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(map.get({f:?}).ok_or_else(|| \
                         serde::DeError::new(concat!(\"missing field `\", {f:?}, \"`\")))?)?,\n"
                    )
                })
                .collect();
            format!(
                "let map = v.as_object().ok_or_else(|| serde::DeError::expected(\"object\", v))?;\n\
                 Ok({name} {{\n{gets}}})"
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| serde::DeError::expected(\"array\", v))?;\n\
                 if items.len() != {n} {{\n\
                   return Err(serde::DeError::new(\"wrong tuple-struct arity\"));\n\
                 }}\n\
                 Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok(Self::{v}),\n"))
                .collect();
            format!(
                "let s = v.as_str().ok_or_else(|| serde::DeError::expected(\"string\", v))?;\n\
                 match s {{\n{arms}other => Err(serde::DeError::new(format!(\
                 \"unknown variant `{{other}}`\"))),\n}}"
            )
        }
    };
    format!(
        "{header}{{\n fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}"
    )
}
