//! Activity-definition generation with an LLM (Figure 1 of the paper):
//! run the staged prompting pipeline against a simulated model, inspect
//! the generated rules, correct them minimally and check they run.
//!
//! Swap `MockLlm` for any `LanguageModel` implementation (e.g. an HTTP
//! provider) to use a live model.
//!
//! ```text
//! cargo run -p adgen-core --example definition_generation
//! ```

use adgen_core::correction::correct_description;
use adgen_core::figures::CORRECTION_ALIASES;
use adgen_core::taxonomy::classify;
use llmgen::{generate, LanguageModel, MockLlm, Model};
use maritime::thresholds::Thresholds;

fn main() {
    let model = Model::Gpt4o;
    let mut llm = MockLlm::new(model);
    println!("model: {}", llm.name());

    let generated = generate(&mut llm, model.best_scheme(), &Thresholds::default());
    println!(
        "session: {} prompts, {} activity definitions generated\n",
        generated.prompts_sent,
        generated.per_task.len()
    );

    // Show what the model produced for 'loitering' — the definition the
    // paper singles out (union_all confused with intersect_all).
    println!("--- generated definition of loitering (raw) ---");
    println!("{}", generated.task_text("l").unwrap_or("<missing>"));

    // Qualitative error assessment.
    let gold = maritime::gold_event_description();
    let taxonomy = classify(&generated, &gold);
    println!("\nerror assessment for {}:", taxonomy.label);
    println!("  naming divergences:   {:?}", taxonomy.naming_divergences);
    println!("  wrong fluent kind:    {:?}", taxonomy.wrong_fluent_kind);
    println!(
        "  undefined activities: {:?}",
        taxonomy.undefined_dependencies
    );
    println!("  operator confusion:   {:?}", taxonomy.operator_confusions);

    // Minimal syntactic correction (the paper's ▲ step).
    let outcome = correct_description(&generated, CORRECTION_ALIASES);
    println!("\ncorrection -> {}:", outcome.label);
    for change in &outcome.changes {
        println!("  - {change}");
    }

    // The corrected description parses cleanly and compiles.
    let desc = outcome.corrected.description();
    assert!(desc.parse_errors.is_empty());
    let compiled = desc.compile().expect("corrected description stratifies");
    println!(
        "\ncorrected description: {} clauses, {} validation error(s), {} warning(s)",
        desc.clauses.len(),
        compiled.report.errors().count(),
        compiled.report.warnings().count()
    );
}
