//! The similarity metric up close: reproduce the paper's worked examples
//! (Section 4) and score a flawed rule set against the gold standard,
//! showing how each error type moves the number.
//!
//! ```text
//! cargo run -p adgen-core --example similarity_analysis
//! ```

use rtec::parser::parse_term;
use rtec::{EventDescription, SymbolTable};
use simdist::{compare_descriptions, ground, rule};

fn main() {
    // --- Example 4.2: distance between ground expressions ---
    let mut sym = SymbolTable::new();
    let e1 = parse_term("happensAt(entersArea(v42, a1), 23)", &mut sym).unwrap();
    let e2 = parse_term("happensAt(inArea(v42, a1), 23)", &mut sym).unwrap();
    println!(
        "Example 4.2  d(e1, e2) = {}   (paper: 0.25)",
        ground::ground_distance(&e1, &e2)
    );

    // --- Example 4.6: distance between sets of ground expressions ---
    let ea: Vec<_> = [
        "happensAt(entersArea(v42, a1), 23)",
        "areaType(a1, fishing)",
        "holdsAt(underway(v42)=true, 23)",
    ]
    .iter()
    .map(|s| parse_term(s, &mut sym).unwrap())
    .collect();
    let eb: Vec<_> = ["areaType(a1, fishing)", "happensAt(inArea(v42, a1), 23)"]
        .iter()
        .map(|s| parse_term(s, &mut sym).unwrap())
        .collect();
    println!(
        "Example 4.6  dE = {:.4}, similarity = {:.4}   (paper: 0.4167 / 0.5833)",
        ground::set_distance(&ea, &eb),
        ground::set_similarity(&ea, &eb)
    );

    // --- Example 4.13: rule distance under renaming and argument swaps ---
    let rules = EventDescription::parse(
        "initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
            happensAt(entersArea(Vl, AreaID), T), areaType(AreaID, AreaType).\n\
         initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
            happensAt(entersArea(Vl, Area), T), areaType(Area, AreaType).\n\
         initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
            happensAt(entersArea(Vl, AreaID), T), areaType(AreaType, AreaID).",
    )
    .unwrap();
    let c = &rules.clauses;
    println!(
        "Example 4.13 renamed variable: dr = {}   (paper: 0)",
        rule::rule_distance(&c[0], &c[1])
    );
    println!(
        "Example 4.13 swapped arguments: dr = {:.4}   (paper's components sum to 0.1927)",
        rule::rule_distance(&c[0], &c[2])
    );

    // --- Whole-description comparison: each error type, one at a time ---
    let gold = EventDescription::parse(
        "holdsFor(loitering(Vessel)=true, I) :- \
            holdsFor(lowSpeed(Vessel)=true, Il), \
            holdsFor(stopped(Vessel)=farFromPorts, Is), \
            union_all([Il, Is], I).",
    )
    .unwrap();
    let variants = [
        ("identical", "holdsFor(loitering(Vessel)=true, I) :- holdsFor(lowSpeed(Vessel)=true, Il), holdsFor(stopped(Vessel)=farFromPorts, Is), union_all([Il, Is], I)."),
        ("renamed fluent", "holdsFor(loitering(Vessel)=true, I) :- holdsFor(slowSpeed(Vessel)=true, Il), holdsFor(stopped(Vessel)=farFromPorts, Is), union_all([Il, Is], I)."),
        ("operator confusion", "holdsFor(loitering(Vessel)=true, I) :- holdsFor(lowSpeed(Vessel)=true, Il), holdsFor(stopped(Vessel)=farFromPorts, Is), intersect_all([Il, Is], I)."),
        ("missing condition", "holdsFor(loitering(Vessel)=true, I) :- holdsFor(lowSpeed(Vessel)=true, Il), union_all([Il], I)."),
        ("wrong fluent kind", "initiatedAt(loitering(Vessel)=true, T) :- happensAt(slow_motion_start(Vessel), T)."),
    ];
    println!("\nerror-type sensitivity (similarity against the gold loitering rule):");
    for (label, src) in variants {
        let gen = EventDescription::parse(src).unwrap();
        let cmp = compare_descriptions(&gold, &gen);
        println!("  {label:<20} similarity = {:.4}", cmp.similarity);
    }
}
