//! Maritime situational awareness end-to-end: generate a synthetic
//! Brest-like AIS scenario, derive the critical-event stream, run the
//! gold-standard activity definitions over it with a sliding window, and
//! report what was detected.
//!
//! ```text
//! cargo run -p adgen-core --example maritime_monitoring
//! ```

use maritime::gold::activities;
use maritime::{BrestScenario, Dataset};
use rtec::{Engine, EngineConfig};

fn main() {
    let scenario = BrestScenario::default();
    let dataset = Dataset::generate(&scenario);
    println!(
        "synthetic Brest-like scenario: {} vessels, {} AIS signals, {} critical events, \
         horizon {} s",
        dataset.vessels.len(),
        dataset.signal_count(),
        dataset.stream.len(),
        dataset.horizon()
    );

    let gold = dataset.gold_description();
    let compiled = gold.compile().expect("gold compiles");
    println!(
        "gold event description: {} simple rules, {} holdsFor rules, {} background facts",
        compiled.simple.len(),
        compiled.statics.len(),
        compiled.facts.len()
    );

    // Hourly tumbling windows, as a deployed CER system would run.
    let mut engine = Engine::new(&compiled, EngineConfig::windowed(3600));
    dataset.stream.load_into(&mut engine);
    let horizon = dataset.horizon() + 1;
    engine.run_to(horizon);
    let symbols = engine.symbols().clone();
    let output = engine.into_output();

    println!("\ndetected composite activities:");
    for a in activities() {
        let arity = if matches!(a.key, "tu" | "p") { 2 } else { 1 };
        let Some(sym) = compiled.symbols.get(a.name) else {
            continue;
        };
        let instances = output.instances_of((sym, arity));
        let union = output.union_of((sym, arity));
        let total = union.duration_up_to(horizon);
        println!(
            "  {:<22} {:>3} instance(s), {:>7} s total",
            a.name,
            instances.len(),
            total
        );
        for fvp in instances.iter().take(3) {
            let list = output.intervals(fvp).unwrap();
            println!("      {} holds for {}", fvp.display(&symbols), list);
        }
    }
    if !output.warnings.is_empty() {
        println!("\nwarnings: {:?}", output.warnings);
    }
}
