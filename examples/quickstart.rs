//! Quickstart: write an RTEC activity definition, feed it a handful of
//! events, and watch the composite activity being recognised.
//!
//! ```text
//! cargo run -p adgen-core --example quickstart
//! ```

use rtec::{Engine, EngineConfig, EventDescription};

fn main() {
    // The paper's running example (rules (1)-(3)): a vessel is within an
    // area of some type from the moment it enters it until it leaves it
    // or stops transmitting.
    let src = r#"
        initiatedAt(withinArea(Vessel, AreaType)=true, T) :-
            happensAt(entersArea(Vessel, AreaId), T),
            areaType(AreaId, AreaType).
        terminatedAt(withinArea(Vessel, AreaType)=true, T) :-
            happensAt(leavesArea(Vessel, AreaId), T),
            areaType(AreaId, AreaType).
        terminatedAt(withinArea(Vessel, AreaType)=true, T) :-
            happensAt(gap_start(Vessel), T).

        areaType(a1, fishing).
        areaType(a2, anchorage).
    "#;

    let mut desc = EventDescription::parse(src).expect("valid RTEC");
    println!("parsed {} clauses", desc.clauses.len());

    // A tiny stream: vessel v1 enters the fishing area at t=10, leaves at
    // t=60; vessel v2 enters the anchorage at t=20 and goes silent at 50.
    let events = [
        ("entersArea(v1, a1)", 10),
        ("entersArea(v2, a2)", 20),
        ("gap_start(v2)", 50),
        ("leavesArea(v1, a1)", 60),
    ];

    let queries = [
        ("withinArea(v1, fishing)=true", [15, 55, 70]),
        ("withinArea(v2, anchorage)=true", [30, 49, 55]),
    ];

    // Parse query FVPs before compiling so symbols are shared.
    let parsed_events: Vec<_> = events
        .iter()
        .map(|(src, t)| (desc.term(src).unwrap(), *t))
        .collect();
    let parsed_queries: Vec<_> = queries
        .iter()
        .map(|(src, ts)| (src, desc.fvp(src).unwrap(), ts))
        .collect();

    let compiled = desc.compile().expect("valid event description");
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    engine.add_events(parsed_events);
    let output = engine.run_to(100);

    for (src, fvp, ts) in parsed_queries {
        let intervals = output
            .intervals(&fvp)
            .map(|l| l.to_string())
            .unwrap_or_else(|| "[]".to_owned());
        println!("\nholdsFor({src}) = {intervals}");
        for t in *ts {
            println!("  holdsAt(..., {t}) = {}", output.holds_at(&fvp, t));
        }
    }
}
