//! End-to-end reproduction of the paper's evaluation on a small dataset:
//! generation (Fig 1 pipeline) -> similarity (Fig 2a) -> correction
//! (Fig 2b) -> recognition accuracy (Fig 2c), with the qualitative shape
//! assertions the paper reports.

use adgen_core::figures::{fig2a, fig2b, fig2c};
use adgen_core::report;
use maritime::{BrestScenario, Dataset};

#[test]
fn full_pipeline_reproduces_figure_2() {
    // --- Figure 2a ---
    let a = fig2a();
    assert_eq!(a.series.len(), 6);
    let mean = |label: &str| {
        a.series
            .iter()
            .find(|s| s.label.starts_with(label))
            .unwrap_or_else(|| panic!("{label} missing"))
            .mean
    };
    // Paper ordering: the three best are o1, GPT-4o and Llama-3.
    let mut means: Vec<(String, f64)> =
        a.series.iter().map(|s| (s.label.clone(), s.mean)).collect();
    means.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap());
    let top3: Vec<&str> = means.iter().take(3).map(|(l, _)| l.as_str()).collect();
    assert!(top3.iter().any(|l| l.starts_with("o1")), "{top3:?}");
    assert!(top3.iter().any(|l| l.starts_with("GPT-4o")), "{top3:?}");
    assert!(top3.iter().any(|l| l.starts_with("Llama-3")), "{top3:?}");
    // Gemma-2 is the weakest.
    assert!(means.last().unwrap().0.contains("Gemma"));
    // Sanity of values.
    for s in &a.series {
        for score in &s.scores {
            assert!(
                (0.0..=1.0).contains(&score.value),
                "{}:{} = {}",
                s.label,
                score.key,
                score.value
            );
        }
    }

    // --- Figure 2b ---
    let b = fig2b(&a);
    assert_eq!(b.series.len(), 3);
    for (s, o) in b.series.iter().zip(&b.outcomes) {
        // Correction is "minor": a small increase in average similarity.
        let model_prefix: String = s
            .label
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
            .collect();
        let before = mean(&model_prefix);
        assert!(s.mean >= before - 1e-9);
        assert!(
            s.mean - before < 0.15,
            "correction changed {} too much: {} -> {}",
            s.label,
            before,
            s.mean
        );
        // The corrected descriptions parse cleanly.
        assert!(o.corrected.description().parse_errors.is_empty());
    }

    // --- Figure 2c ---
    let dataset = Dataset::generate(&BrestScenario::small());
    let c = fig2c(&b, &dataset);
    assert_eq!(c.series.len(), 3);
    let report_of = |label: &str| {
        &c.series
            .iter()
            .find(|(l, _)| l.starts_with(label))
            .unwrap()
            .1
    };
    // o1 wins overall; all three recognise the simple-fluent activities
    // comparably well.
    let o1 = report_of("o1").mean_f1();
    assert!(o1 > report_of("GPT-4o").mean_f1());
    assert!(o1 > report_of("Llama-3").mean_f1());
    assert!(o1 > 0.85, "o1 mean f1 = {o1}");

    // Rendering works for all three artefacts.
    let t_a = report::fig2a_table(&a);
    let t_b = report::fig2b_table(&b);
    let t_c = report::fig2c_table(&c);
    for t in [&t_a, &t_b, &t_c] {
        assert!(t.contains(" aM"));
        assert!(t.lines().count() >= 4);
    }
    let json = report::fig2c_json(&c);
    assert!(json.contains("\"figure\": \"2c\""));
}
