//! Entity-partitioned parallel recognition must agree exactly with the
//! single-engine run on the full maritime dataset — including the pair
//! activities (tugging, pilot boarding, rendezvous) whose vessels must be
//! co-located in a shard by the proximity-based union-find.

use maritime::{BrestScenario, Dataset};
use rtec::parallel::{recognize_partitioned, FirstArgPartitioner, ParallelConfig};
use rtec::{Engine, EngineConfig};
use std::collections::BTreeMap;

fn snapshot(
    out: &rtec::engine::RecognitionOutput,
    sym: &rtec::SymbolTable,
) -> BTreeMap<String, String> {
    out.iter()
        .map(|(fvp, list)| (fvp.display(sym), list.to_string()))
        .collect()
}

#[test]
fn partitioned_maritime_recognition_equals_single_engine() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let gold = dataset.gold_description();
    let compiled = gold.compile().unwrap();
    let horizon = dataset.horizon() + 1;

    let mut single = Engine::new(&compiled, EngineConfig::default());
    dataset.stream.load_into(&mut single);
    single.run_to(horizon);
    let single_sym = single.symbols().clone();
    let reference = snapshot(&single.into_output(), &single_sym);
    assert!(!reference.is_empty());

    for threads in [2, 4, 8] {
        let (out, sym) = recognize_partitioned(
            &compiled,
            &dataset.stream,
            horizon,
            ParallelConfig {
                threads,
                engine: EngineConfig::default(),
            },
            &FirstArgPartitioner,
        );
        let parallel = snapshot(&out, &sym);
        assert_eq!(
            reference.len(),
            parallel.len(),
            "threads={threads}: FVP counts differ"
        );
        for (fvp, intervals) in &reference {
            assert_eq!(
                parallel.get(fvp),
                Some(intervals),
                "threads={threads}: {fvp} differs"
            );
        }
        // The pair activities survived partitioning.
        assert!(
            parallel.keys().any(|k| k.starts_with("tugging(")),
            "threads={threads}: tugging lost"
        );
        assert!(
            parallel.keys().any(|k| k.starts_with("pilotOps(")),
            "threads={threads}: pilotOps lost"
        );
    }
}

#[test]
fn partitioned_windowed_also_agrees() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let gold = dataset.gold_description();
    let compiled = gold.compile().unwrap();
    let horizon = dataset.horizon() + 1;

    let (batch, bsym) = recognize_partitioned(
        &compiled,
        &dataset.stream,
        horizon,
        ParallelConfig {
            threads: 4,
            engine: EngineConfig::default(),
        },
        &FirstArgPartitioner,
    );
    let (windowed, wsym) = recognize_partitioned(
        &compiled,
        &dataset.stream,
        horizon,
        ParallelConfig {
            threads: 4,
            engine: EngineConfig::windowed(3600),
        },
        &FirstArgPartitioner,
    );
    assert_eq!(snapshot(&batch, &bsym), snapshot(&windowed, &wsym));
}
