//! Cross-check of the RTEC engine against a brute-force reference
//! evaluator of Event Calculus semantics.
//!
//! A small hierarchical event description (two multi-valued simple
//! fluents, negation, a statically determined union) is evaluated both by
//! the engine and by a point-by-point simulation of the law of inertia;
//! every `holdsAt` answer must agree, for randomly generated event
//! streams.

use proptest::prelude::*;
use rtec::{Engine, EngineConfig, EventDescription};
use std::collections::BTreeMap;

const DESC: &str = "
    initiatedAt(f(V)=on, T) :- happensAt(a(V), T).
    terminatedAt(f(V)=on, T) :- happensAt(b(V), T).
    initiatedAt(f(V)=off, T) :- happensAt(b(V), T), holdsAt(g(V)=true, T).
    initiatedAt(g(V)=true, T) :- happensAt(c(V), T).
    terminatedAt(g(V)=true, T) :- happensAt(a(V), T), not happensAt(c(V), T).
    holdsFor(h(V)=true, I) :-
        holdsFor(f(V)=on, I1),
        holdsFor(g(V)=true, I2),
        union_all([I1, I2], I).
";

/// Event kinds of the reference world.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Ev {
    A,
    B,
    C,
}

/// Point-by-point reference evaluation: returns, per time-point `t` in
/// `0..=horizon` and per vessel, the triple
/// `(f(v) value, g(v) holds, h(v) holds)` *at* `t`.
fn reference(
    events: &BTreeMap<(u8, i64), Ev>,
    vessels: &[u8],
    horizon: i64,
) -> BTreeMap<(u8, i64), (Option<&'static str>, bool, bool)> {
    let mut out = BTreeMap::new();
    // Current value of f(v) and g(v) — the state *after* processing all
    // time-points < t equals holdsAt(·, t).
    let mut f: BTreeMap<u8, Option<&'static str>> = vessels.iter().map(|v| (*v, None)).collect();
    let mut g: BTreeMap<u8, bool> = vessels.iter().map(|v| (*v, false)).collect();

    for t in 0..=horizon {
        for &v in vessels {
            out.insert((v, t), (f[&v], g[&v], f[&v] == Some("on") || g[&v]));
        }
        // Process the events at t; effects become visible at t + 1.
        for &v in vessels {
            let ev = events.get(&(v, t)).copied();
            let g_now = g[&v];
            // Simple fluent g.
            match ev {
                Some(Ev::C) => {
                    g.insert(v, true);
                }
                Some(Ev::A) => {
                    // terminated by a(V) when no c(V) at the same point;
                    // the generator emits at most one event per (v, t).
                    g.insert(v, false);
                }
                _ => {}
            }
            // Simple fluent f (multi-valued: initiating 'off' supersedes
            // 'on' and vice versa).
            match ev {
                Some(Ev::A) => {
                    f.insert(v, Some("on"));
                }
                Some(Ev::B) => {
                    // Termination of 'on' plus conditional initiation of
                    // 'off' (requires g at this time-point).
                    if g_now {
                        f.insert(v, Some("off"));
                    } else if f[&v] == Some("on") {
                        f.insert(v, None);
                    }
                }
                _ => {}
            }
        }
    }
    out
}

fn engine_answers(
    events: &BTreeMap<(u8, i64), Ev>,
    vessels: &[u8],
    horizon: i64,
) -> BTreeMap<(u8, i64), (Option<&'static str>, bool, bool)> {
    let mut desc = EventDescription::parse(DESC).unwrap();
    let mut terms = Vec::new();
    for (&(v, t), &kind) in events {
        let name = match kind {
            Ev::A => "a",
            Ev::B => "b",
            Ev::C => "c",
        };
        let ev = desc.term(&format!("{name}(v{v})")).unwrap();
        terms.push((ev, t));
    }
    let mut fvps = BTreeMap::new();
    for &v in vessels {
        fvps.insert((v, "on"), desc.fvp(&format!("f(v{v})=on")).unwrap());
        fvps.insert((v, "off"), desc.fvp(&format!("f(v{v})=off")).unwrap());
        fvps.insert((v, "g"), desc.fvp(&format!("g(v{v})=true")).unwrap());
        fvps.insert((v, "h"), desc.fvp(&format!("h(v{v})=true")).unwrap());
    }
    let compiled = desc.compile().unwrap();
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    engine.add_events(terms);
    engine.run_to(horizon);
    let out = engine.into_output();

    let mut answers = BTreeMap::new();
    for t in 0..=horizon {
        for &v in vessels {
            let on = out.holds_at(&fvps[&(v, "on")], t);
            let off = out.holds_at(&fvps[&(v, "off")], t);
            let fval = if on {
                Some("on")
            } else if off {
                Some("off")
            } else {
                None
            };
            let gv = out.holds_at(&fvps[&(v, "g")], t);
            let hv = out.holds_at(&fvps[&(v, "h")], t);
            answers.insert((v, t), (fval, gv, hv));
        }
    }
    answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_agrees_with_reference(
        raw in prop::collection::vec((0u8..2, 0i64..60, 0u8..3), 0..60)
    ) {
        // At most one event per (vessel, time-point): later entries win.
        let mut events: BTreeMap<(u8, i64), Ev> = BTreeMap::new();
        for (v, t, k) in raw {
            let kind = match k { 0 => Ev::A, 1 => Ev::B, _ => Ev::C };
            events.insert((v, t), kind);
        }
        let vessels = [0u8, 1];
        let horizon = 62;
        let expected = reference(&events, &vessels, horizon);
        let actual = engine_answers(&events, &vessels, horizon);
        for (key, exp) in &expected {
            let act = &actual[key];
            prop_assert_eq!(
                exp, act,
                "mismatch at vessel v{} time {}: events {:?}",
                key.0, key.1, events
            );
        }
    }
}
