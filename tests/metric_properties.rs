//! Property-based tests of the similarity metric: bounds, identity and
//! symmetry at every level (ground expressions, expression sets, rules,
//! event descriptions), over randomly generated terms and clauses.

use proptest::prelude::*;
use rtec::parser::{parse_program, parse_term};
use rtec::SymbolTable;
use simdist::{description, ground, rule};

/// Random ground-term source text, depth-bounded.
fn ground_term_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0u8..5).prop_map(|i| format!("c{i}")),
        (0i64..20).prop_map(|i| i.to_string()),
        (0u8..3).prop_map(|i| format!("{}.5", i)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (0u8..3, prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(f, args)| { format!("f{f}({})", args.join(", ")) }),
            prop::collection::vec(inner, 0..3).prop_map(|items| format!("[{}]", items.join(", "))),
        ]
    })
}

/// Random possibly-non-ground term source (adds variables).
fn term_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0u8..5).prop_map(|i| format!("c{i}")),
        (0u8..4).prop_map(|i| format!("X{i}")),
        (0i64..20).prop_map(|i| i.to_string()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (0u8..3, prop::collection::vec(inner, 1..4))
            .prop_map(|(f, args)| format!("f{f}({})", args.join(", ")))
    })
}

/// Random clause source: a compound head and up to three body literals.
fn clause_src() -> impl Strategy<Value = String> {
    (term_src(), prop::collection::vec(term_src(), 0..4)).prop_map(|(h, body)| {
        if body.is_empty() {
            // Facts must be ground for compilation, but the metric works
            // on raw clauses; wrap to guarantee a parsable head.
            format!("p({h}).")
        } else {
            format!(
                "p({h}) :- {}.",
                body.iter()
                    .map(|b| format!("q({b})"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ground_distance_bounds_identity_symmetry(a in ground_term_src(), b in ground_term_src()) {
        let mut sym = SymbolTable::new();
        let ta = parse_term(&a, &mut sym).unwrap();
        let tb = parse_term(&b, &mut sym).unwrap();
        let dab = ground::ground_distance(&ta, &tb);
        let dba = ground::ground_distance(&tb, &ta);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert!((dab - dba).abs() < 1e-12, "not symmetric: {a} vs {b}");
        prop_assert_eq!(ground::ground_distance(&ta, &ta), 0.0);
        // Zero distance implies syntactic equality up to numeric type.
        if dab == 0.0 {
            prop_assert!((ground::set_distance(&[ta], &[tb])).abs() < 1e-12);
        }
    }

    #[test]
    fn set_distance_bounds_and_symmetry(
        xs in prop::collection::vec(ground_term_src(), 0..5),
        ys in prop::collection::vec(ground_term_src(), 0..5),
    ) {
        let mut sym = SymbolTable::new();
        let ta: Vec<_> = xs.iter().map(|s| parse_term(s, &mut sym).unwrap()).collect();
        let tb: Vec<_> = ys.iter().map(|s| parse_term(s, &mut sym).unwrap()).collect();
        let dab = ground::set_distance(&ta, &tb);
        let dba = ground::set_distance(&tb, &ta);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab));
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(ground::set_distance(&ta, &ta).abs() < 1e-12);
    }

    #[test]
    fn rule_distance_bounds_identity_symmetry(a in clause_src(), b in clause_src()) {
        let mut sym = SymbolTable::new();
        let ca = parse_program(&a, &mut sym).unwrap().remove(0);
        let cb = parse_program(&b, &mut sym).unwrap().remove(0);
        let dab = rule::rule_distance(&ca, &cb);
        let dba = rule::rule_distance(&cb, &ca);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab), "out of range: {dab}");
        prop_assert!((dab - dba).abs() < 1e-9, "not symmetric: {a} vs {b}");
        prop_assert!(rule::rule_distance(&ca, &ca).abs() < 1e-12, "identity failed: {a}");
    }

    #[test]
    fn description_distance_bounds_identity_symmetry(
        xs in prop::collection::vec(clause_src(), 0..4),
        ys in prop::collection::vec(clause_src(), 0..4),
    ) {
        let mut sym = SymbolTable::new();
        let ca: Vec<_> = xs
            .iter()
            .flat_map(|s| parse_program(s, &mut sym).unwrap())
            .collect();
        let cb: Vec<_> = ys
            .iter()
            .flat_map(|s| parse_program(s, &mut sym).unwrap())
            .collect();
        let dab = description::description_distance(&ca, &cb);
        let dba = description::description_distance(&cb, &ca);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab));
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(description::description_distance(&ca, &ca).abs() < 1e-12);
        // Variable renaming never changes the distance.
        let renamed: Vec<_> = xs
            .iter()
            .map(|s| s.replace("X0", "Y9").replace("X1", "Z8"))
            .flat_map(|s| parse_program(&s, &mut sym).unwrap())
            .collect();
        prop_assert!(
            description::description_distance(&ca, &renamed).abs() < 1e-9,
            "renaming changed the distance"
        );
    }
}
