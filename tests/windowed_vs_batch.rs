//! The engine's windowed evaluation must be *exact*: for every window
//! size, the recognition output over the full maritime stream equals the
//! single-batch run, interval for interval.

use maritime::{BrestScenario, Dataset};
use rtec::{Engine, EngineConfig};
use std::collections::HashMap;

fn run(dataset: &Dataset, window: i64) -> HashMap<String, String> {
    let gold = dataset.gold_description();
    let compiled = gold.compile().expect("gold compiles");
    let config = if window == 0 {
        EngineConfig::default()
    } else {
        EngineConfig::windowed(window)
    };
    let mut engine = Engine::new(&compiled, config);
    dataset.stream.load_into(&mut engine);
    engine.run_to(dataset.horizon() + 1);
    let symbols = engine.symbols().clone();
    let out = engine.into_output();
    out.iter()
        .map(|(fvp, list)| (fvp.display(&symbols), format!("{list}")))
        .collect()
}

#[test]
fn windowed_recognition_equals_batch_for_all_window_sizes() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let batch = run(&dataset, 0);
    assert!(!batch.is_empty());
    for window in [311, 900, 3_600, 7_200, 50_000] {
        let windowed = run(&dataset, window);
        assert_eq!(
            batch.len(),
            windowed.len(),
            "window {window}: different FVP counts"
        );
        for (fvp, intervals) in &batch {
            let w = windowed
                .get(fvp)
                .unwrap_or_else(|| panic!("window {window}: {fvp} missing"));
            assert_eq!(w, intervals, "window {window}: {fvp} differs");
        }
    }
}

#[test]
fn incremental_feeding_matches_one_shot() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let gold = dataset.gold_description();
    let compiled = gold.compile().unwrap();

    // One shot.
    let mut all = Engine::new(&compiled, EngineConfig::default());
    dataset.stream.load_into(&mut all);
    all.run_to(dataset.horizon() + 1);
    let reference = all.into_output();

    // Fed in three chronological chunks with a query after each.
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    let horizon = dataset.horizon() + 1;
    let cut1 = horizon / 3;
    let cut2 = 2 * horizon / 3;
    let mut events: Vec<_> = dataset.stream.events().to_vec();
    events.sort_by_key(|(_, t)| *t);
    for (fvp, list) in dataset.stream.intervals() {
        engine.add_input_intervals_from(fvp, &dataset.stream.symbols, list.clone());
    }
    for (ev, t) in &events {
        if *t <= cut1 {
            engine.add_event_from(ev, &dataset.stream.symbols, *t);
        }
    }
    engine.run_to(cut1);
    for (ev, t) in &events {
        if *t > cut1 && *t <= cut2 {
            engine.add_event_from(ev, &dataset.stream.symbols, *t);
        }
    }
    engine.run_to(cut2);
    for (ev, t) in &events {
        if *t > cut2 {
            engine.add_event_from(ev, &dataset.stream.symbols, *t);
        }
    }
    engine.run_to(horizon);
    let incremental = engine.into_output();

    assert_eq!(reference.len(), incremental.len());
    for (fvp, list) in reference.iter() {
        assert_eq!(
            Some(list),
            incremental.intervals(fvp),
            "FVP intervals differ between one-shot and incremental runs"
        );
    }
}

/// Interleaving `add_event` and `run_to` at *every window boundary* of a
/// windowed engine must equal one batch `run()` — the streaming-service
/// ingestion pattern (events trickle in, ticks follow) in miniature.
#[test]
fn per_window_interleaved_feeding_matches_batch() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let gold = dataset.gold_description();
    let compiled = gold.compile().unwrap();
    let horizon = dataset.horizon() + 1;

    let mut batch = Engine::new(&compiled, EngineConfig::default());
    dataset.stream.load_into(&mut batch);
    batch.run_to(horizon);
    let reference = batch.into_output();

    let window = 3_600;
    let mut engine = Engine::new(&compiled, EngineConfig::windowed(window));
    for (fvp, list) in dataset.stream.intervals() {
        engine.add_input_intervals_from(fvp, &dataset.stream.symbols, list.clone());
    }
    let mut events: Vec<_> = dataset.stream.events().to_vec();
    events.sort_by_key(|(_, t)| *t);
    let mut fed = 0;
    let mut boundary = window;
    while boundary < horizon + window {
        let q = boundary.min(horizon);
        while fed < events.len() && events[fed].1 <= q {
            let (ev, t) = &events[fed];
            engine.add_event_from(ev, &dataset.stream.symbols, *t);
            fed += 1;
        }
        engine.run_to(q);
        boundary += window;
    }
    assert_eq!(fed, events.len(), "all events fed");
    let interleaved = engine.into_output();

    assert_eq!(reference.len(), interleaved.len());
    for (fvp, list) in reference.iter() {
        assert_eq!(
            Some(list),
            interleaved.intervals(fvp),
            "FVP intervals differ between batch and per-window interleaved runs"
        );
    }
}

/// The engine's forget-horizon policy: an event arriving at or before the
/// processed frontier is dropped (counted and warned about), and the rest
/// of the stream is unaffected — the output matches a run that never saw
/// the stale event.
#[test]
fn forget_horizon_drops_stale_events_and_keeps_the_rest_exact() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let gold = dataset.gold_description();
    let compiled = gold.compile().unwrap();
    let horizon = dataset.horizon() + 1;
    let cut = horizon / 2;

    let mut events: Vec<_> = dataset.stream.events().to_vec();
    events.sort_by_key(|(_, t)| *t);

    let feed = |engine: &mut Engine, lo: i64, hi: i64| {
        for (ev, t) in &events {
            if *t > lo && *t <= hi {
                engine.add_event_from(ev, &dataset.stream.symbols, *t);
            }
        }
    };

    // Reference: the clean two-phase run.
    let mut clean = Engine::new(&compiled, EngineConfig::default());
    for (fvp, list) in dataset.stream.intervals() {
        clean.add_input_intervals_from(fvp, &dataset.stream.symbols, list.clone());
    }
    feed(&mut clean, i64::MIN, cut);
    clean.run_to(cut);
    feed(&mut clean, cut, horizon);
    clean.run_to(horizon);
    assert_eq!(clean.stats().events_dropped, 0);
    let reference = clean.into_output();

    // Same run, plus two stale events queued after the frontier passed.
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    for (fvp, list) in dataset.stream.intervals() {
        engine.add_input_intervals_from(fvp, &dataset.stream.symbols, list.clone());
    }
    feed(&mut engine, i64::MIN, cut);
    engine.run_to(cut);
    assert_eq!(engine.processed_to(), cut);
    let (stale_ev, _) = &events[0];
    engine.add_event_from(stale_ev, &dataset.stream.symbols, cut); // t == frontier
    engine.add_event_from(stale_ev, &dataset.stream.symbols, 0); // far behind
    feed(&mut engine, cut, horizon);
    engine.run_to(horizon);
    assert_eq!(engine.stats().events_dropped, 2);
    let output = engine.into_output();
    assert!(
        output
            .warnings
            .iter()
            .any(|w| w.contains("2 event(s) at or before the processed frontier were dropped")),
        "missing forget-horizon warning: {:?}",
        output.warnings
    );

    assert_eq!(reference.len(), output.len());
    for (fvp, list) in reference.iter() {
        assert_eq!(
            Some(list),
            output.intervals(fvp),
            "stale events must not perturb the rest of the stream"
        );
    }
}
