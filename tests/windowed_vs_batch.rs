//! The engine's windowed evaluation must be *exact*: for every window
//! size, the recognition output over the full maritime stream equals the
//! single-batch run, interval for interval.

use maritime::{BrestScenario, Dataset};
use rtec::{Engine, EngineConfig};
use std::collections::HashMap;

fn run(dataset: &Dataset, window: i64) -> HashMap<String, String> {
    let gold = dataset.gold_description();
    let compiled = gold.compile().expect("gold compiles");
    let config = if window == 0 {
        EngineConfig::default()
    } else {
        EngineConfig::windowed(window)
    };
    let mut engine = Engine::new(&compiled, config);
    dataset.stream.load_into(&mut engine);
    engine.run_to(dataset.horizon() + 1);
    let symbols = engine.symbols().clone();
    let out = engine.into_output();
    out.iter()
        .map(|(fvp, list)| (fvp.display(&symbols), format!("{list}")))
        .collect()
}

#[test]
fn windowed_recognition_equals_batch_for_all_window_sizes() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let batch = run(&dataset, 0);
    assert!(!batch.is_empty());
    for window in [311, 900, 3_600, 7_200, 50_000] {
        let windowed = run(&dataset, window);
        assert_eq!(
            batch.len(),
            windowed.len(),
            "window {window}: different FVP counts"
        );
        for (fvp, intervals) in &batch {
            let w = windowed
                .get(fvp)
                .unwrap_or_else(|| panic!("window {window}: {fvp} missing"));
            assert_eq!(w, intervals, "window {window}: {fvp} differs");
        }
    }
}

#[test]
fn incremental_feeding_matches_one_shot() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let gold = dataset.gold_description();
    let compiled = gold.compile().unwrap();

    // One shot.
    let mut all = Engine::new(&compiled, EngineConfig::default());
    dataset.stream.load_into(&mut all);
    all.run_to(dataset.horizon() + 1);
    let reference = all.into_output();

    // Fed in three chronological chunks with a query after each.
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    let horizon = dataset.horizon() + 1;
    let cut1 = horizon / 3;
    let cut2 = 2 * horizon / 3;
    let mut events: Vec<_> = dataset.stream.events().to_vec();
    events.sort_by_key(|(_, t)| *t);
    for (fvp, list) in dataset.stream.intervals() {
        engine.add_input_intervals_from(fvp, &dataset.stream.symbols, list.clone());
    }
    for (ev, t) in &events {
        if *t <= cut1 {
            engine.add_event_from(ev, &dataset.stream.symbols, *t);
        }
    }
    engine.run_to(cut1);
    for (ev, t) in &events {
        if *t > cut1 && *t <= cut2 {
            engine.add_event_from(ev, &dataset.stream.symbols, *t);
        }
    }
    engine.run_to(cut2);
    for (ev, t) in &events {
        if *t > cut2 {
            engine.add_event_from(ev, &dataset.stream.symbols, *t);
        }
    }
    engine.run_to(horizon);
    let incremental = engine.into_output();

    assert_eq!(reference.len(), incremental.len());
    for (fvp, list) in reference.iter() {
        assert_eq!(
            Some(list),
            incremental.intervals(fvp),
            "FVP intervals differ between one-shot and incremental runs"
        );
    }
}
