//! Integration tests of the generation pipeline across crates: every
//! model/scheme combination produces a parsable description, corrections
//! make the top models runnable, and the whole path is deterministic.

use adgen_core::correction::correct_description;
use adgen_core::evaluation::{activity_similarities, mean_similarity};
use llmgen::{generate, MockLlm, Model, PromptScheme};
use maritime::thresholds::Thresholds;
use maritime::{BrestScenario, Dataset};

#[test]
fn all_twelve_generations_parse_and_score() {
    let gold = maritime::gold_event_description();
    for model in Model::ALL {
        for scheme in [PromptScheme::FewShot, PromptScheme::ChainOfThought] {
            let mut llm = MockLlm::new(model);
            let g = generate(&mut llm, scheme, &Thresholds::default());
            assert_eq!(g.per_task.len(), 20, "{model:?}/{scheme:?}");
            let desc = g.description();
            assert!(
                desc.clauses.len() >= 30,
                "{model:?}/{scheme:?}: only {} clauses",
                desc.clauses.len()
            );
            let scores = activity_similarities(&g, &gold);
            let mean = mean_similarity(&scores);
            assert!(
                (0.0..=1.0).contains(&mean),
                "{model:?}/{scheme:?}: mean {mean}"
            );
        }
    }
}

#[test]
fn best_scheme_always_at_least_as_good() {
    let gold = maritime::gold_event_description();
    for model in Model::ALL {
        let mut means = std::collections::HashMap::new();
        for scheme in [PromptScheme::FewShot, PromptScheme::ChainOfThought] {
            let mut llm = MockLlm::new(model);
            let g = generate(&mut llm, scheme, &Thresholds::default());
            means.insert(scheme, mean_similarity(&activity_similarities(&g, &gold)));
        }
        let best = model.best_scheme();
        let other = if best == PromptScheme::FewShot {
            PromptScheme::ChainOfThought
        } else {
            PromptScheme::FewShot
        };
        assert!(
            means[&best] >= means[&other],
            "{model:?}: best scheme {:?} scored {} < {}",
            best,
            means[&best],
            means[&other]
        );
    }
}

#[test]
fn corrected_descriptions_run_on_the_stream() {
    let dataset = Dataset::generate(&BrestScenario::small());
    for model in [Model::O1, Model::Gpt4o, Model::Llama3] {
        let mut llm = MockLlm::new(model);
        let g = generate(&mut llm, model.best_scheme(), &Thresholds::default());
        let outcome = correct_description(&g, adgen_core::figures::CORRECTION_ALIASES);
        let desc = dataset.with_background(&outcome.corrected.full_text());
        assert!(
            desc.parse_errors.is_empty(),
            "{model:?}: {:?}",
            desc.parse_errors
        );
        let compiled = desc.compile().expect("corrected descriptions stratify");
        let mut engine = rtec::Engine::new(&compiled, rtec::EngineConfig::default());
        dataset.stream.load_into(&mut engine);
        let out = engine.run_to(dataset.horizon() + 1);
        assert!(
            !out.is_empty(),
            "{model:?}: corrected description recognised nothing"
        );
    }
}

#[test]
fn generation_and_correction_are_deterministic() {
    let run = || {
        let mut llm = MockLlm::new(Model::Gpt4o);
        let g = generate(&mut llm, Model::Gpt4o.best_scheme(), &Thresholds::default());
        let c = correct_description(&g, adgen_core::figures::CORRECTION_ALIASES);
        (g.full_text(), c.corrected.full_text(), c.changes)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn similarity_reflects_error_severity_across_models() {
    // The model ranking must be stable: o1 at the top, Gemma-2 at the
    // bottom, with a real gap between them.
    let gold = maritime::gold_event_description();
    let mean_for = |model: Model| {
        let mut llm = MockLlm::new(model);
        let g = generate(&mut llm, model.best_scheme(), &Thresholds::default());
        mean_similarity(&activity_similarities(&g, &gold))
    };
    let o1 = mean_for(Model::O1);
    let gemma = mean_for(Model::Gemma2);
    let gpt4 = mean_for(Model::Gpt4);
    assert!(o1 > 0.85, "o1 = {o1}");
    assert!(gemma < 0.6, "gemma = {gemma}");
    assert!(o1 - gemma > 0.3, "gap too small: {o1} vs {gemma}");
    assert!(gpt4 < o1 && gpt4 > gemma, "gpt4 = {gpt4}");
}
