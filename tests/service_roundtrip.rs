//! The streaming service must be *exact*: replaying the maritime
//! scenario through an rtec-service session — in-process or over TCP
//! with concurrent sessions and multiple shards — yields output
//! byte-identical to one batch engine run over the same stream.

use maritime::{BrestScenario, Dataset};
use rtec::{Engine, EngineConfig};
use rtec_service::{
    stream_file, Client, Server, ServerConfig, Session, SessionConfig, StreamFile, StreamOptions,
};

/// The gold description in concrete syntax (rules + this dataset's
/// background knowledge), as a client would send it over the wire.
fn gold_source(dataset: &Dataset) -> String {
    format!("{}\n{}", maritime::gold::GOLD_RULES, dataset.background)
}

/// Reference: one batch engine over the full stream.
fn batch_rows(dataset: &Dataset, horizon: i64) -> Vec<(String, String)> {
    let compiled = dataset.gold_description().compile().unwrap();
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    dataset.stream.load_into(&mut engine);
    engine.run_to(horizon);
    let symbols = engine.symbols().clone();
    let out = engine.into_output();
    let mut rows: Vec<(String, String)> = out
        .iter()
        .map(|(fvp, list)| (fvp.display(&symbols), list.to_string()))
        .collect();
    rows.sort();
    rows
}

/// The dataset's stream rendered to the client's text format (events
/// sorted by time; input intervals separate).
fn stream_file_of(dataset: &Dataset) -> StreamFile {
    let symbols = &dataset.stream.symbols;
    let mut file = StreamFile::default();
    for (fvp, list) in dataset.stream.intervals() {
        file.intervals.push((
            fvp.fluent.display(symbols).to_string(),
            fvp.value.display(symbols).to_string(),
            list.iter().map(|iv| (iv.start, iv.end)).collect(),
        ));
    }
    let mut events: Vec<_> = dataset.stream.events().to_vec();
    events.sort_by_key(|&(_, t)| t);
    for (ev, t) in events {
        file.events.push((t, ev.display(symbols).to_string()));
    }
    file
}

#[test]
fn in_process_session_matches_batch_engine() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let horizon = dataset.horizon() + 1;
    let reference = batch_rows(&dataset, horizon);
    assert!(!reference.is_empty());
    let gold = gold_source(&dataset);
    let file = stream_file_of(&dataset);

    for shards in [1, 2, 4] {
        let mut session = Session::open(
            "maritime",
            &gold,
            SessionConfig {
                window: None,
                shards,
                queue_capacity: 256,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        for (fluent, value, pairs) in &file.intervals {
            session.ingest_intervals(fluent, value, pairs).unwrap();
        }
        for (t, ev) in &file.events {
            session.ingest_event(ev, *t).unwrap();
        }
        session.tick(horizon).unwrap();
        let (out, symbols) = session.query().unwrap();
        let mut rows: Vec<(String, String)> = out
            .iter()
            .map(|(fvp, list)| (fvp.display(&symbols), list.to_string()))
            .collect();
        rows.sort();
        assert_eq!(rows, reference, "shards={shards}");
        // A shard that received no instance of an input fluent may warn
        // about it ("never holds") — the same artifact
        // recognize_partitioned has. No events may ever be dropped.
        assert!(
            out.warnings.iter().all(|w| !w.contains("dropped")),
            "shards={shards}: {:?}",
            out.warnings
        );
        assert_eq!(session.late_couplings(), 0, "shards={shards}");

        let stats = session.stats();
        assert_eq!(stats.events_ingested, file.events.len() as u64);
        assert!(stats.engine.windows >= 1);
        assert!(stats.tick_latency.count() >= 1);
        assert_eq!(stats.queue_high_water.len(), shards, "shards={shards}");
        session.close().unwrap();
    }
}

#[test]
fn tcp_concurrent_sessions_match_batch_engine() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let horizon = dataset.horizon() + 1;
    let reference = batch_rows(&dataset, horizon);
    let gold = gold_source(&dataset);
    let file = stream_file_of(&dataset);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        metrics_addr: None,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let server_thread = std::thread::spawn(move || server.serve());

    // Two sessions replay concurrently on separate connections, with
    // different shard counts, windows, and tick cadences. fleet-a stays
    // open after its replay so the metrics scrape below observes a live
    // session.
    let configs = [
        (
            "fleet-a",
            StreamOptions {
                session: "fleet-a".to_string(),
                shards: 2,
                window: None,
                tick_every: None,
                horizon: Some(horizon),
                batch_size: 128,
                close: false,
                ..StreamOptions::default()
            },
        ),
        (
            "fleet-b",
            StreamOptions {
                session: "fleet-b".to_string(),
                shards: 3,
                window: Some(3_600),
                tick_every: Some(50_000),
                horizon: Some(horizon),
                batch_size: 32,
                ..StreamOptions::default()
            },
        ),
    ];
    let mut replays = Vec::new();
    for (name, opts) in configs {
        let addr = addr.clone();
        let gold = gold.clone();
        let file = file.clone();
        replays.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr)?;
            let report = stream_file(&mut client, &gold, &file, &opts)?;
            Ok::<_, String>((name, report))
        }));
    }
    for replay in replays {
        let (name, report) = replay.join().unwrap().unwrap();
        assert_eq!(report.rows, reference, "session {name}");
        assert!(
            report.warnings.iter().all(|w| !w.contains("dropped")),
            "session {name}: {:?}",
            report.warnings
        );
        assert_eq!(report.events, file.events.len() as u64, "session {name}");

        // The stats frame must show real work: evaluated windows and a
        // populated tick-latency histogram.
        let stats = &report.stats;
        assert!(stats["windows"].as_i64().unwrap() >= 1, "session {name}");
        assert_eq!(stats["late_couplings"].as_i64(), Some(0), "session {name}");
        let latency = &stats["tick_latency"];
        assert!(latency["count"].as_i64().unwrap() >= 1, "session {name}");
        assert!(
            !latency["buckets"].as_array().unwrap().is_empty(),
            "session {name}"
        );
        // Observability extensions to the stats frame: nothing was
        // forgotten in this replay, and each shard reports a queue
        // high-water mark.
        assert_eq!(stats["forget_drops"].as_i64(), Some(0), "session {name}");
        let high_water = stats["queue_high_water"].as_array().unwrap();
        assert!(!high_water.is_empty(), "session {name}");
    }

    // Scrape the Prometheus exposition over the NDJSON protocol while
    // fleet-a is still open: it must be valid text-format output and
    // carry both engine-level and service-level series, including the
    // per-session gauges sampled at scrape time.
    let mut scraper = Client::connect(&addr).unwrap();
    let body = scraper.metrics().unwrap();
    rtec_obs::expo::validate(&body).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
    for series in [
        "rtec_engine_windows_total",
        "rtec_engine_tick_duration_us_bucket",
        "rtec_engine_cache_requests_total{result=\"hit\"}",
        "rtec_engine_forget_drops_total",
        "rtec_service_events_ingested_total",
        "rtec_service_ticks_total",
        "rtec_service_sessions_open 1",
        "rtec_service_queue_depth{session=\"fleet-a\",shard=\"0\"}",
        "rtec_service_queue_high_water{session=\"fleet-a\",shard=\"1\"}",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }
    scraper
        .request("{\"cmd\":\"close\",\"session\":\"fleet-a\"}")
        .unwrap();
    // The connection must be gone before shutdown: the server joins its
    // handler pool, and a handler stays parked in read_line while a
    // client holds its connection open.
    drop(scraper);

    let response = rtec_service::request_shutdown(&addr).unwrap();
    assert!(response.contains("\"ok\": true") || response.contains("\"ok\":true"));
    server_thread.join().unwrap().unwrap();
}

/// The incremental window re-evaluation leg: a sliding session with
/// `incremental: true` replays a *reordered* Brest-scale synth slice —
/// including events delivered after the window that covered them was
/// already ticked (inside the `window - slide` overlap) and a
/// mid-stream checkpoint/restore — byte-identical to one batch engine
/// run and to the full-recompute sliding session. This pins the whole
/// service composition on top of the engine-level differential tests.
#[test]
fn incremental_sliding_session_replays_reordered_synth_like_batch() {
    use maritime::synth::{self, SynthConfig};

    let synth = synth::generate(&SynthConfig {
        seed: 11,
        vessels: 30,
        steps: 100,
        period: 60,
    });
    let horizon = synth.horizon() + 1;
    let gold = format!("{}\n{}", maritime::gold::GOLD_RULES, synth.background);

    // Reference: one batch engine over the stream in time order.
    let compiled = synth.gold_description().compile().unwrap();
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    synth.stream.load_into(&mut engine);
    engine.run_to(horizon);
    let symbols = engine.symbols().clone();
    let out = engine.into_output();
    let mut reference: Vec<(String, String)> = out
        .iter()
        .map(|(fvp, list)| (fvp.display(&symbols), list.to_string()))
        .collect();
    reference.sort();
    assert!(!reference.is_empty());

    // The stream as (t, src) rows in time order.
    let stream_symbols = &synth.stream.symbols;
    let mut events: Vec<(i64, String)> = synth
        .stream
        .events()
        .iter()
        .map(|(ev, t)| (*t, ev.display(stream_symbols).to_string()))
        .collect();
    events.sort_by_key(|&(t, _)| t);

    const WINDOW: i64 = 600;
    const SLIDE: i64 = 120;
    const OVERLAP: i64 = WINDOW - SLIDE; // 480: also the reorder slack
    let mid = 3_000; // first tick; also where the late slice lands
    let cp_at = 4_200; // checkpoint/restore point

    // Split the feed: everything up to `mid` except a held-out sample
    // from the last overlap (delivered late, after the tick), then the
    // rest. Pre-tick delivery is shuffled in 50-event chunks — within
    // the reorder slack, so nothing may be dropped.
    let (until_mid, after_mid): (Vec<_>, Vec<_>) =
        events.iter().cloned().partition(|&(t, _)| t <= mid);
    let (held_out, on_time): (Vec<_>, Vec<_>) = until_mid
        .iter()
        .cloned()
        .enumerate()
        .partition(|(i, (t, _))| *t > mid - 200 && i % 3 == 0);
    let held_out: Vec<_> = held_out.into_iter().map(|(_, e)| e).collect();
    let mut shuffled: Vec<_> = on_time.into_iter().map(|(_, e)| e).collect();
    for chunk in shuffled.chunks_mut(50) {
        chunk.reverse();
    }
    assert!(
        !held_out.is_empty(),
        "the late slice must exercise amendment"
    );

    let mut results = Vec::new();
    for incremental in [false, true] {
        let config = SessionConfig {
            window: Some(WINDOW),
            slide: Some(SLIDE),
            incremental,
            shards: 2,
            reorder_slack: Some(OVERLAP),
            ..SessionConfig::default()
        };
        let mut session = Session::open("synth-slice", &gold, config).unwrap();
        for (t, ev) in &shuffled {
            session.ingest_event(ev, *t).unwrap();
        }
        session.tick(mid).unwrap();

        // Late arrivals: behind the ticked horizon but inside the
        // sliding overlap, so the engines amend instead of dropping.
        for (t, ev) in &held_out {
            let outcome = session.ingest_event(ev, *t).unwrap();
            assert!(
                matches!(outcome, rtec_service::Ingest::Accepted),
                "incremental={incremental}: late event at t={t} refused: {outcome:?}"
            );
        }

        let (first, second): (Vec<_>, Vec<_>) =
            after_mid.iter().cloned().partition(|&(t, _)| t <= cp_at);
        for (t, ev) in &first {
            session.ingest_event(ev, *t).unwrap();
        }
        session.tick(cp_at).unwrap();

        // Mid-stream checkpoint/restore composes with the sliding state.
        let cp = rtec_service::persist::SessionCheckpoint::capture(&session)
            .expect("checkpoint right after a tick");
        let cp = rtec_service::persist::SessionCheckpoint::from_json(&cp.to_json()).unwrap();
        session.close().unwrap();
        let mut session = cp.restore().unwrap();

        for (t, ev) in &second {
            session.ingest_event(ev, *t).unwrap();
        }
        session.tick(horizon).unwrap();

        let (out, symbols) = session.query().unwrap();
        let mut rows: Vec<(String, String)> = out
            .iter()
            .map(|(fvp, list)| (fvp.display(&symbols), list.to_string()))
            .collect();
        rows.sort();
        assert_eq!(rows, reference, "incremental={incremental}");
        assert!(
            out.warnings.iter().all(|w| !w.contains("dropped")),
            "incremental={incremental}: {:?}",
            out.warnings
        );
        let mut warnings = out.warnings.clone();
        warnings.sort();
        results.push((rows, warnings));
        session.close().unwrap();
    }

    // Full recompute and incremental must agree observationally, down
    // to the warning set.
    assert_eq!(results[0], results[1]);
}
