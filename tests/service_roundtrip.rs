//! The streaming service must be *exact*: replaying the maritime
//! scenario through an rtec-service session — in-process or over TCP
//! with concurrent sessions and multiple shards — yields output
//! byte-identical to one batch engine run over the same stream.

use maritime::{BrestScenario, Dataset};
use rtec::{Engine, EngineConfig};
use rtec_service::{
    stream_file, Client, Server, ServerConfig, Session, SessionConfig, StreamFile, StreamOptions,
};

/// The gold description in concrete syntax (rules + this dataset's
/// background knowledge), as a client would send it over the wire.
fn gold_source(dataset: &Dataset) -> String {
    format!("{}\n{}", maritime::gold::GOLD_RULES, dataset.background)
}

/// Reference: one batch engine over the full stream.
fn batch_rows(dataset: &Dataset, horizon: i64) -> Vec<(String, String)> {
    let compiled = dataset.gold_description().compile().unwrap();
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    dataset.stream.load_into(&mut engine);
    engine.run_to(horizon);
    let symbols = engine.symbols().clone();
    let out = engine.into_output();
    let mut rows: Vec<(String, String)> = out
        .iter()
        .map(|(fvp, list)| (fvp.display(&symbols), list.to_string()))
        .collect();
    rows.sort();
    rows
}

/// The dataset's stream rendered to the client's text format (events
/// sorted by time; input intervals separate).
fn stream_file_of(dataset: &Dataset) -> StreamFile {
    let symbols = &dataset.stream.symbols;
    let mut file = StreamFile::default();
    for (fvp, list) in dataset.stream.intervals() {
        file.intervals.push((
            fvp.fluent.display(symbols).to_string(),
            fvp.value.display(symbols).to_string(),
            list.iter().map(|iv| (iv.start, iv.end)).collect(),
        ));
    }
    let mut events: Vec<_> = dataset.stream.events().to_vec();
    events.sort_by_key(|&(_, t)| t);
    for (ev, t) in events {
        file.events.push((t, ev.display(symbols).to_string()));
    }
    file
}

#[test]
fn in_process_session_matches_batch_engine() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let horizon = dataset.horizon() + 1;
    let reference = batch_rows(&dataset, horizon);
    assert!(!reference.is_empty());
    let gold = gold_source(&dataset);
    let file = stream_file_of(&dataset);

    for shards in [1, 2, 4] {
        let mut session = Session::open(
            "maritime",
            &gold,
            SessionConfig {
                window: None,
                shards,
                queue_capacity: 256,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        for (fluent, value, pairs) in &file.intervals {
            session.ingest_intervals(fluent, value, pairs).unwrap();
        }
        for (t, ev) in &file.events {
            session.ingest_event(ev, *t).unwrap();
        }
        session.tick(horizon).unwrap();
        let (out, symbols) = session.query().unwrap();
        let mut rows: Vec<(String, String)> = out
            .iter()
            .map(|(fvp, list)| (fvp.display(&symbols), list.to_string()))
            .collect();
        rows.sort();
        assert_eq!(rows, reference, "shards={shards}");
        // A shard that received no instance of an input fluent may warn
        // about it ("never holds") — the same artifact
        // recognize_partitioned has. No events may ever be dropped.
        assert!(
            out.warnings.iter().all(|w| !w.contains("dropped")),
            "shards={shards}: {:?}",
            out.warnings
        );
        assert_eq!(session.late_couplings(), 0, "shards={shards}");

        let stats = session.stats();
        assert_eq!(stats.events_ingested, file.events.len() as u64);
        assert!(stats.engine.windows >= 1);
        assert!(stats.tick_latency.count() >= 1);
        assert_eq!(stats.queue_high_water.len(), shards, "shards={shards}");
        session.close().unwrap();
    }
}

#[test]
fn tcp_concurrent_sessions_match_batch_engine() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let horizon = dataset.horizon() + 1;
    let reference = batch_rows(&dataset, horizon);
    let gold = gold_source(&dataset);
    let file = stream_file_of(&dataset);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        metrics_addr: None,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let server_thread = std::thread::spawn(move || server.serve());

    // Two sessions replay concurrently on separate connections, with
    // different shard counts, windows, and tick cadences. fleet-a stays
    // open after its replay so the metrics scrape below observes a live
    // session.
    let configs = [
        (
            "fleet-a",
            StreamOptions {
                session: "fleet-a".to_string(),
                shards: 2,
                window: None,
                tick_every: None,
                horizon: Some(horizon),
                batch_size: 128,
                close: false,
                ..StreamOptions::default()
            },
        ),
        (
            "fleet-b",
            StreamOptions {
                session: "fleet-b".to_string(),
                shards: 3,
                window: Some(3_600),
                tick_every: Some(50_000),
                horizon: Some(horizon),
                batch_size: 32,
                ..StreamOptions::default()
            },
        ),
    ];
    let mut replays = Vec::new();
    for (name, opts) in configs {
        let addr = addr.clone();
        let gold = gold.clone();
        let file = file.clone();
        replays.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr)?;
            let report = stream_file(&mut client, &gold, &file, &opts)?;
            Ok::<_, String>((name, report))
        }));
    }
    for replay in replays {
        let (name, report) = replay.join().unwrap().unwrap();
        assert_eq!(report.rows, reference, "session {name}");
        assert!(
            report.warnings.iter().all(|w| !w.contains("dropped")),
            "session {name}: {:?}",
            report.warnings
        );
        assert_eq!(report.events, file.events.len() as u64, "session {name}");

        // The stats frame must show real work: evaluated windows and a
        // populated tick-latency histogram.
        let stats = &report.stats;
        assert!(stats["windows"].as_i64().unwrap() >= 1, "session {name}");
        assert_eq!(stats["late_couplings"].as_i64(), Some(0), "session {name}");
        let latency = &stats["tick_latency"];
        assert!(latency["count"].as_i64().unwrap() >= 1, "session {name}");
        assert!(
            !latency["buckets"].as_array().unwrap().is_empty(),
            "session {name}"
        );
        // Observability extensions to the stats frame: nothing was
        // forgotten in this replay, and each shard reports a queue
        // high-water mark.
        assert_eq!(stats["forget_drops"].as_i64(), Some(0), "session {name}");
        let high_water = stats["queue_high_water"].as_array().unwrap();
        assert!(!high_water.is_empty(), "session {name}");
    }

    // Scrape the Prometheus exposition over the NDJSON protocol while
    // fleet-a is still open: it must be valid text-format output and
    // carry both engine-level and service-level series, including the
    // per-session gauges sampled at scrape time.
    let mut scraper = Client::connect(&addr).unwrap();
    let body = scraper.metrics().unwrap();
    rtec_obs::expo::validate(&body).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
    for series in [
        "rtec_engine_windows_total",
        "rtec_engine_tick_duration_us_bucket",
        "rtec_engine_cache_requests_total{result=\"hit\"}",
        "rtec_engine_forget_drops_total",
        "rtec_service_events_ingested_total",
        "rtec_service_ticks_total",
        "rtec_service_sessions_open 1",
        "rtec_service_queue_depth{session=\"fleet-a\",shard=\"0\"}",
        "rtec_service_queue_high_water{session=\"fleet-a\",shard=\"1\"}",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }
    scraper
        .request("{\"cmd\":\"close\",\"session\":\"fleet-a\"}")
        .unwrap();
    // The connection must be gone before shutdown: the server joins its
    // handler pool, and a handler stays parked in read_line while a
    // client holds its connection open.
    drop(scraper);

    let response = rtec_service::request_shutdown(&addr).unwrap();
    assert!(response.contains("\"ok\": true") || response.contains("\"ok\":true"));
    server_thread.join().unwrap().unwrap();
}
