//! Crash-equivalence: a [`FaultPlan`] kills a shard worker mid-stream;
//! the session supervisor respawns the worker from its last in-memory
//! checkpoint, replays the un-checkpointed items, and the final output
//! is byte-identical to an uninterrupted batch engine run.
//!
//! Every test installs a fault plan via `fault::with_plan`, which holds
//! a process-global guard — tests in this binary therefore serialize
//! against each other, keeping the seeded schedules deterministic.

use maritime::{BrestScenario, Dataset};
use rtec::{Engine, EngineConfig};
use rtec_service::fault::with_plan;
use rtec_service::{FaultPlan, Session, SessionConfig};

/// The gold description in concrete syntax (rules + this dataset's
/// background knowledge), as a client would send it over the wire.
fn gold_source(dataset: &Dataset) -> String {
    format!("{}\n{}", maritime::gold::GOLD_RULES, dataset.background)
}

/// Reference: one batch engine over the full stream, no faults.
fn batch_rows(dataset: &Dataset, horizon: i64) -> Vec<(String, String)> {
    let compiled = dataset.gold_description().compile().unwrap();
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    dataset.stream.load_into(&mut engine);
    engine.run_to(horizon);
    let symbols = engine.symbols().clone();
    let out = engine.into_output();
    let mut rows: Vec<(String, String)> = out
        .iter()
        .map(|(fvp, list)| (fvp.display(&symbols), list.to_string()))
        .collect();
    rows.sort();
    rows
}

/// Runs the full dataset through a session, ticking at `ticks` (the
/// last entry must be the horizon), and returns the sorted output rows.
fn session_rows(
    dataset: &Dataset,
    config: SessionConfig,
    ticks: &[i64],
) -> (Vec<(String, String)>, Session) {
    let gold = gold_source(dataset);
    let mut session = Session::open("crash", &gold, config).unwrap();
    let symbols = &dataset.stream.symbols;
    for (fvp, list) in dataset.stream.intervals() {
        let pairs: Vec<(i64, i64)> = list.iter().map(|iv| (iv.start, iv.end)).collect();
        session
            .ingest_intervals(
                &fvp.fluent.display(symbols).to_string(),
                &fvp.value.display(symbols).to_string(),
                &pairs,
            )
            .unwrap();
    }
    let mut events: Vec<_> = dataset.stream.events().to_vec();
    events.sort_by_key(|&(_, t)| t);
    let mut fed = 0;
    for &to in ticks {
        while fed < events.len() && events[fed].1 < to {
            let (ev, t) = &events[fed];
            session
                .ingest_event(&ev.display(symbols).to_string(), *t)
                .unwrap();
            fed += 1;
        }
        session.tick(to).unwrap();
    }
    let (out, out_symbols) = session.query().unwrap();
    let mut rows: Vec<(String, String)> = out
        .iter()
        .map(|(fvp, list)| (fvp.display(&out_symbols), list.to_string()))
        .collect();
    rows.sort();
    (rows, session)
}

#[test]
fn worker_panic_before_any_checkpoint_recovers_byte_identically() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let horizon = dataset.horizon() + 1;
    let reference = batch_rows(&dataset, horizon);
    assert!(!reference.is_empty());

    // One tick only: the panic fires before any checkpoint exists, so
    // the supervisor restarts the shard fresh and replays everything.
    let plan = FaultPlan::new().panic_worker(0, 10);
    let ((rows, session), injected) = with_plan(plan, || {
        session_rows(&dataset, SessionConfig::default(), &[horizon])
    });
    assert_eq!(injected, 1, "the scheduled panic must fire");
    assert_eq!(rows, reference, "recovered output differs from batch");
    assert_eq!(session.stats().worker_restarts, 1);
    assert!(session.quarantined().is_none());
    session.close().unwrap();
}

#[test]
fn worker_panic_mid_stream_restores_from_checkpoint() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let horizon = dataset.horizon() + 1;
    let reference = batch_rows(&dataset, horizon);

    // Multiple window-sized ticks so checkpoints exist, then a late
    // panic: the respawned worker resumes from the last checkpoint and
    // replays only the items sent since it.
    let ticks: Vec<i64> = (1..=4).map(|i| i * horizon / 4).chain([horizon]).collect();
    for shards in [1, 2] {
        for step in [40u64, 200] {
            let plan = FaultPlan::new().panic_worker(0, step);
            let config = SessionConfig {
                window: Some(horizon / 4 + 1),
                shards,
                ..SessionConfig::default()
            };
            let ((rows, session), injected) =
                with_plan(plan, || session_rows(&dataset, config, &ticks));
            assert_eq!(injected, 1, "shards={shards} step={step}");
            assert_eq!(
                rows, reference,
                "shards={shards} step={step}: output differs from batch"
            );
            assert!(
                session.stats().worker_restarts >= 1,
                "shards={shards} step={step}"
            );
            assert!(session.quarantined().is_none());
            session.close().unwrap();
        }
    }
}

#[test]
fn repeated_panics_on_both_shards_still_converge() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let horizon = dataset.horizon() + 1;
    let reference = batch_rows(&dataset, horizon);

    let plan = FaultPlan::new()
        .panic_worker(0, 25)
        .panic_worker(1, 60)
        .panic_worker(0, 120);
    let config = SessionConfig {
        window: Some(horizon / 3 + 1),
        shards: 2,
        max_worker_restarts: 4,
        ..SessionConfig::default()
    };
    let ticks: Vec<i64> = (1..=3).map(|i| i * horizon / 3).chain([horizon]).collect();
    let ((rows, session), injected) = with_plan(plan, || session_rows(&dataset, config, &ticks));
    assert_eq!(injected, 3, "all three panics must fire");
    assert_eq!(rows, reference, "output differs from batch");
    assert!(session.stats().worker_restarts >= 3);
    assert!(session.quarantined().is_none());
    session.close().unwrap();
}

#[test]
fn exhausted_restart_budget_quarantines_the_session() {
    let dataset = Dataset::generate(&BrestScenario::small());
    let horizon = dataset.horizon() + 1;
    let gold = gold_source(&dataset);

    let plan = FaultPlan::new().panic_worker(0, 1).panic_worker(0, 2);
    let config = SessionConfig {
        max_worker_restarts: 1,
        ..SessionConfig::default()
    };
    let ((), _injected) = with_plan(plan, || {
        let mut session = Session::open("doomed", &gold, config).unwrap();
        let symbols = &dataset.stream.symbols;
        let mut events: Vec<_> = dataset.stream.events().to_vec();
        events.sort_by_key(|&(_, t)| t);
        let mut failed = None;
        for (ev, t) in &events {
            if let Err(e) = session.ingest_event(&ev.display(symbols).to_string(), *t) {
                failed = Some(e);
                break;
            }
        }
        let err = match failed {
            Some(e) => e,
            None => session.tick(horizon).unwrap_err(),
        };
        assert!(
            err.contains("quarantined") || err.contains("shard worker"),
            "unexpected error: {err}"
        );
        // The budget is charged per respawn attempt; keep driving the
        // dead shard until the budget runs out and the session is
        // quarantined for good.
        for i in 0..4 {
            if session.quarantined().is_some() {
                break;
            }
            let _ = session.tick(horizon + i);
        }
        // Once quarantined, every entry point reports it and nothing
        // panics; close() still returns the stats.
        assert!(session.quarantined().is_some());
        let err = session.ingest_event("ping(x)", horizon + 10).unwrap_err();
        assert!(err.contains("quarantined"), "unexpected error: {err}");
        assert!(session.tick(horizon + 11).is_err());
        assert!(session.query().is_err());
        let stats = session.close().unwrap();
        assert!(stats.worker_restarts >= 1);
    });
}
