//! Shared helpers for the experiment binaries.
//!
//! Each binary regenerates one artefact of the paper's evaluation
//! (Section 5) and prints the same series the corresponding figure plots;
//! `--json` additionally writes a machine-readable artefact to
//! `target/figures/`.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

/// Writes a JSON artefact under `target/figures/` and returns its path.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir).expect("create target/figures");
    let path = dir.join(name);
    fs::write(&path, contents).expect("write figure artifact");
    path
}

/// Whether `--json` was passed.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Scenario scale from `--scale small|default|large` (default: default).
pub fn scenario_from_args() -> maritime::BrestScenario {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("default");
    match scale {
        "small" => maritime::BrestScenario::small(),
        "large" => maritime::BrestScenario::large(),
        _ => maritime::BrestScenario::default(),
    }
}
