//! Figure 2c: predictive accuracy (f1 per activity) of the corrected
//! top-three descriptions, measured by running RTEC over the synthetic
//! Brest-like stream and comparing against the gold standard's
//! recognition output.
//!
//! ```text
//! cargo run -p experiments --bin fig2c [--scale small|default|large] [--json]
//! ```

use adgen_core::figures::{fig2a, fig2b, fig2c};
use adgen_core::report;
use maritime::Dataset;
use std::time::Instant;

fn main() {
    let scenario = experiments::scenario_from_args();
    let t0 = Instant::now();
    let dataset = Dataset::generate(&scenario);
    println!(
        "dataset: {} AIS signals, {} vessels, {} critical events, horizon {} s  ({:.2?})",
        dataset.signal_count(),
        dataset.vessels.len(),
        dataset.stream.len(),
        dataset.horizon(),
        t0.elapsed()
    );

    let a = fig2a();
    let b = fig2b(&a);
    let t1 = Instant::now();
    let c = fig2c(&b, &dataset);
    println!(
        "recognition (gold + 3 corrected descriptions): {:.2?}\n",
        t1.elapsed()
    );

    println!("Figure 2c — predictive accuracy of corrected descriptions\n");
    println!("{}", report::fig2c_table(&c));
    println!();
    for (label, r) in &c.series {
        println!("  {:<10} mean f1 {:.3}", label, r.mean_f1());
    }
    if experiments::json_requested() {
        let path = experiments::write_artifact("fig2c.json", &report::fig2c_json(&c));
        println!("\nwrote {}", path.display());
    }
}
