//! Qualitative error assessment (Section 5.2): classifies the defects of
//! every generated description into the paper's four categories.
//!
//! ```text
//! cargo run -p experiments --bin error_taxonomy
//! ```

use adgen_core::taxonomy::classify;
use llmgen::{generate, MockLlm, Model};
use maritime::thresholds::Thresholds;

fn main() {
    let gold = maritime::gold_event_description();
    println!("Qualitative error assessment (paper Section 5.2)\n");
    for model in Model::ALL {
        let mut llm = MockLlm::new(model);
        let generated = generate(&mut llm, model.best_scheme(), &Thresholds::default());
        let t = classify(&generated, &gold);
        println!("=== {} ===", t.label);
        println!("  syntax errors:            {}", t.syntax_errors);
        println!("  validation errors:        {}", t.validation_errors);
        println!(
            "  naming divergences (1):   {}",
            if t.naming_divergences.is_empty() {
                "-".to_owned()
            } else {
                t.naming_divergences.join(", ")
            }
        );
        println!(
            "  wrong fluent kind (2):    {}",
            if t.wrong_fluent_kind.is_empty() {
                "-".to_owned()
            } else {
                t.wrong_fluent_kind.join(", ")
            }
        );
        println!(
            "  undefined activities (3): {}",
            if t.undefined_dependencies.is_empty() {
                "-".to_owned()
            } else {
                t.undefined_dependencies.join(", ")
            }
        );
        println!(
            "  operator confusion (4):   {}",
            if t.operator_confusions.is_empty() {
                "-".to_owned()
            } else {
                t.operator_confusions.join(", ")
            }
        );
        println!();
    }
}
