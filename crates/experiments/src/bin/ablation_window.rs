//! Window-size ablation: RTEC's runtime and memory profile as a function
//! of the processing window (paper Section 2: "the cost of reasoning
//! depends on the window, instead of the size of the complete stream").
//!
//! For each window size, the gold event description is run over the same
//! stream; the output is checked to be identical to the batch run (the
//! engine's inertia carry-over makes windowed recognition exact).
//!
//! ```text
//! cargo run --release -p experiments --bin ablation_window [--scale small|default|large]
//! ```

use maritime::Dataset;
use rtec::{Engine, EngineConfig};
use std::time::Instant;

fn main() {
    let scenario = experiments::scenario_from_args();
    let dataset = Dataset::generate(&scenario);
    let gold = dataset.gold_description();
    let compiled = gold.compile().expect("gold compiles");
    println!(
        "stream: {} events, horizon {} s\n",
        dataset.stream.len(),
        dataset.horizon()
    );
    println!(
        "{:>12} {:>12} {:>14} {:>10}",
        "window (s)", "queries", "runtime", "fvp count"
    );

    let mut reference: Option<usize> = None;
    for window in [600, 1800, 3600, 7200, 21600, i64::MAX] {
        let t0 = Instant::now();
        let mut engine = Engine::new(
            &compiled,
            EngineConfig {
                window,
                ..EngineConfig::default()
            },
        );
        dataset.stream.load_into(&mut engine);
        engine.run_to(dataset.horizon() + 1);
        let out = engine.into_output();
        let elapsed = t0.elapsed();
        let queries = if window == i64::MAX {
            1
        } else {
            (dataset.horizon() / window + 1) as usize
        };
        let label = if window == i64::MAX {
            "batch".to_owned()
        } else {
            window.to_string()
        };
        println!(
            "{label:>12} {queries:>12} {:>14.2?} {:>10}",
            elapsed,
            out.len()
        );
        match reference {
            None => reference = Some(out.len()),
            Some(r) => assert_eq!(r, out.len(), "windowed run diverged from batch"),
        }
    }
    println!("\nall window sizes produced identical recognition output");
}
