//! One-shot reproduction of the paper's entire evaluation: Figures 2a,
//! 2b and 2c plus the qualitative error assessment, printed in order.
//!
//! ```text
//! cargo run --release -p experiments --bin reproduce_all [--scale small|default|large] [--json]
//! ```

use adgen_core::figures::{fig2a, fig2b, fig2c};
use adgen_core::report;
use adgen_core::taxonomy::classify;
use llmgen::{generate, MockLlm, Model};
use maritime::thresholds::Thresholds;
use maritime::Dataset;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();

    println!("=== Figure 2a — similarity of LLM-generated definitions ===\n");
    let a = fig2a();
    println!("{}\n", report::fig2a_table(&a));

    println!("=== Figure 2b — similarities after minimal syntactic changes ===\n");
    let b = fig2b(&a);
    println!("{}\n", report::fig2b_table(&b));
    for o in &b.outcomes {
        for change in &o.changes {
            println!("  [{}] {change}", o.label);
        }
    }

    println!("\n=== Figure 2c — predictive accuracy on the maritime stream ===\n");
    let scenario = experiments::scenario_from_args();
    let dataset = Dataset::generate(&scenario);
    println!(
        "dataset: {} vessels, {} AIS signals, {} critical events, horizon {} s\n",
        dataset.vessels.len(),
        dataset.signal_count(),
        dataset.stream.len(),
        dataset.horizon()
    );
    let c = fig2c(&b, &dataset);
    println!("{}\n", report::fig2c_table(&c));

    println!("=== Section 5.2 — qualitative error assessment ===\n");
    let gold = maritime::gold_event_description();
    for model in Model::ALL {
        let mut llm = MockLlm::new(model);
        let g = generate(&mut llm, model.best_scheme(), &Thresholds::default());
        let t = classify(&g, &gold);
        println!(
            "{:<10} syntax {}, validation {}, naming {:?}, wrong-kind {:?}, undefined {:?}, \
             operator {:?}",
            t.label,
            t.syntax_errors,
            t.validation_errors,
            t.naming_divergences,
            t.wrong_fluent_kind,
            t.undefined_dependencies,
            t.operator_confusions
        );
    }

    if experiments::json_requested() {
        experiments::write_artifact("fig2a.json", &report::series_json("2a", &a.series));
        experiments::write_artifact("fig2b.json", &report::series_json("2b", &b.series));
        experiments::write_artifact("fig2c.json", &report::fig2c_json(&c));
        println!("\nwrote target/figures/fig2{{a,b,c}}.json");
    }
    println!("\ntotal: {:.2?}", t0.elapsed());
}
