//! Figure 2a: similarity values of LLM-generated definitions against the
//! gold standard, per activity, best prompting scheme per model.
//!
//! ```text
//! cargo run -p experiments --bin fig2a [--json]
//! ```

use adgen_core::figures::fig2a;
use adgen_core::report;

fn main() {
    let f = fig2a();
    println!("Figure 2a — similarity of LLM-generated definitions");
    println!("(best prompting scheme per model: \u{25a1} few-shot, \u{25b3} chain-of-thought)\n");
    println!("{}", report::fig2a_table(&f));
    println!();
    for s in &f.series {
        println!("  {:<10} mean similarity {:.3}", s.label, s.mean);
    }
    if experiments::json_requested() {
        let path = experiments::write_artifact("fig2a.json", &report::series_json("2a", &f.series));
        println!("\nwrote {}", path.display());
    }
}
