//! Metric-sensitivity ablation: similarity after injecting each error
//! category of Section 5.2, one at a time, per activity. Quantifies the
//! paper's claim that the metric reflects correction effort.
//!
//! ```text
//! cargo run -p experiments --bin metric_ablation
//! ```

use adgen_core::ablation::{mean_by_error, metric_ablation, ERROR_TYPES};

fn main() {
    let cells = metric_ablation();
    println!("Metric-sensitivity ablation (similarity after one injected error)\n");

    // Grid: rows = activities, cols = error types.
    let keys = ["h", "aM", "tr", "tu", "p", "l", "s", "d"];
    print!("{:<6}", "");
    for e in ERROR_TYPES {
        print!(" {:>20}", e);
    }
    println!();
    for key in keys {
        print!("{key:<6}");
        for e in ERROR_TYPES {
            match cells.iter().find(|c| c.activity == key && c.error == e) {
                Some(c) => print!(" {:>20.3}", c.similarity),
                None => print!(" {:>20}", "n/a"),
            }
        }
        println!();
    }

    println!("\nmean similarity per error type:");
    for (error, mean) in mean_by_error(&cells) {
        let bar_len = (mean * 40.0).round() as usize;
        println!("  {error:<20} {mean:.3}  {}", "#".repeat(bar_len));
    }
    println!(
        "\nreading: the cheaper an error is to fix by hand (e.g. a rename), the\n\
         closer the similarity stays to 1 — the property the paper's metric is\n\
         designed to have."
    );
}
