//! Figure 2b: similarities after the minimal syntactic correction step,
//! for the three best descriptions of Figure 2a.
//!
//! ```text
//! cargo run -p experiments --bin fig2b [--json]
//! ```

use adgen_core::figures::{fig2a, fig2b};
use adgen_core::report;

fn main() {
    let a = fig2a();
    let b = fig2b(&a);
    println!("Figure 2b — similarities after minimal syntactic changes");
    println!(
        "(top three descriptions; \u{25a0} few-shot corrected, \u{25b2} chain-of-thought corrected)\n"
    );
    println!("{}", report::fig2b_table(&b));
    println!();
    for (s, o) in b.series.iter().zip(&b.outcomes) {
        let model_prefix: String = s
            .label
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
            .collect();
        let before = a
            .series
            .iter()
            .find(|x| x.label.starts_with(&model_prefix))
            .map(|x| x.mean)
            .unwrap_or(0.0);
        println!(
            "  {:<10} mean {:.3} -> {:.3}  ({} rename(s), {} syntax repair(s))",
            s.label, before, s.mean, o.renames, o.syntax_repairs
        );
        for change in &o.changes {
            println!("      - {change}");
        }
    }
    if experiments::json_requested() {
        let path = experiments::write_artifact("fig2b.json", &report::series_json("2b", &b.series));
        println!("\nwrote {}", path.display());
    }
}
