//! Throughput scaling: recognition cost as the stream grows, single
//! engine vs entity-partitioned parallel recognition.
//!
//! RTEC's selling point (Section 1) is efficient stream reasoning; this
//! sweep measures events/second of the gold event description over
//! progressively longer synthetic streams, and the speed-up obtained by
//! sharding vessels across threads.
//!
//! ```text
//! cargo run --release -p experiments --bin scaling
//! ```

use maritime::{BrestScenario, Dataset};
use rtec::parallel::{recognize_partitioned, FirstArgPartitioner, ParallelConfig};
use rtec::{Engine, EngineConfig};
use std::time::Instant;

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "available CPUs: {cpus}{}",
        if cpus == 1 {
            "  (parallel speed-up is not observable on a single core; the \
             sweep still verifies exactness of the partitioned runs)"
        } else {
            ""
        }
    );
    println!(
        "{:>8} {:>9} {:>9} {:>12} {:>12} {:>12} {:>9}",
        "repeats", "vessels", "events", "single", "4 threads", "8 threads", "speedup"
    );
    for repeats in [1usize, 2, 4, 8] {
        let scenario = BrestScenario {
            repeats,
            ..BrestScenario::default()
        };
        let dataset = Dataset::generate(&scenario);
        let gold = dataset.gold_description();
        let compiled = gold.compile().expect("gold compiles");
        let horizon = dataset.horizon() + 1;

        let t = Instant::now();
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        dataset.stream.load_into(&mut engine);
        engine.run_to(horizon);
        let single_out = engine.into_output().len();
        let single = t.elapsed();

        let mut timings = Vec::new();
        for threads in [4usize, 8] {
            let t = Instant::now();
            let (out, _) = recognize_partitioned(
                &compiled,
                &dataset.stream,
                horizon,
                ParallelConfig {
                    threads,
                    engine: EngineConfig::default(),
                },
                &FirstArgPartitioner,
            );
            assert_eq!(out.len(), single_out, "parallel output diverged");
            timings.push(t.elapsed());
        }

        let speedup = single.as_secs_f64() / timings[1].as_secs_f64();
        println!(
            "{repeats:>8} {:>9} {:>9} {:>12.2?} {:>12.2?} {:>12.2?} {speedup:>8.2}x",
            dataset.vessels.len(),
            dataset.stream.len(),
            single,
            timings[0],
            timings[1],
        );
    }
}
