//! Cross-tabulation of `rtec-lint` diagnostics against the qualitative
//! error taxonomy (Section 5.2): every mock model's injected error
//! profile must surface as lint findings, and the codes that fire must
//! line up with the taxonomy categories the profile populates. This
//! pins the analyzer to the paper's error catalogue — if a profile
//! mutation stops producing its lint signature, one of the two layers
//! regressed.

use adgen_core::correction::correct_description;
use adgen_core::taxonomy::classify;
use llmgen::{generate, GeneratedDescription, MockLlm, Model};
use maritime::thresholds::Thresholds;
use rtec::EventDescription;
use rtec_lint::{analyze, codes, AnalysisReport};

const MODELS: [Model; 6] = [
    Model::O1,
    Model::Gpt4o,
    Model::Llama3,
    Model::Gpt4,
    Model::Mistral,
    Model::Gemma2,
];

fn generate_best(model: Model) -> GeneratedDescription {
    let mut m = MockLlm::new(model);
    generate(&mut m, model.best_scheme(), &Thresholds::default())
}

fn lint(g: &GeneratedDescription) -> AnalysisReport {
    analyze(&g.description())
}

/// The exact lint signature of each model's error profile at its best
/// prompting scheme. The mock pipeline is deterministic, so these are
/// exact sets, not subsets.
#[test]
fn each_error_profile_has_a_stable_lint_signature() {
    let expected: [(Model, &[&str]); 6] = [
        (
            Model::O1,
            &[
                codes::UNDEFINED_FLUENT,
                codes::SINGLETON_VARIABLE,
                codes::UNREACHABLE_FLUENT,
            ],
        ),
        (
            Model::Gpt4o,
            &[
                codes::UNDEFINED_FLUENT,
                codes::SINGLETON_VARIABLE,
                codes::DEAD_RULE,
                codes::UNREACHABLE_FLUENT,
            ],
        ),
        (
            Model::Llama3,
            &[
                codes::UNDEFINED_FLUENT,
                codes::SINGLETON_VARIABLE,
                codes::UNREACHABLE_FLUENT,
            ],
        ),
        (
            Model::Gpt4,
            &[
                codes::UNDEFINED_FLUENT,
                codes::KIND_CONFLICT,
                codes::UNSAFE_VARIABLE,
                codes::SINGLETON_VARIABLE,
                codes::UNREACHABLE_FLUENT,
                codes::NON_TERMINATING_FLUENT,
            ],
        ),
        (
            Model::Mistral,
            &[
                codes::SYNTAX_ERROR,
                codes::UNDEFINED_FLUENT,
                codes::SINGLETON_VARIABLE,
                codes::UNREACHABLE_FLUENT,
                codes::NON_TERMINATING_FLUENT,
            ],
        ),
        (
            Model::Gemma2,
            &[
                codes::SYNTAX_ERROR,
                codes::UNDEFINED_FLUENT,
                codes::SINGLETON_VARIABLE,
                codes::DEAD_RULE,
                codes::UNREACHABLE_FLUENT,
            ],
        ),
    ];
    for (model, want) in expected {
        let report = lint(&generate_best(model));
        assert!(
            !report.diagnostics.is_empty(),
            "{model:?}: every error profile must yield at least one lint finding"
        );
        assert_eq!(
            report.codes_fired(),
            want.to_vec(),
            "{model:?} lint signature drifted:\n{}",
            report.render()
        );
    }
}

/// The lint codes must agree with the taxonomy categories computed
/// against the gold standard.
#[test]
fn lint_codes_cross_tabulate_with_taxonomy_categories() {
    let gold = EventDescription::parse_lenient(maritime::gold::GOLD_RULES);
    for model in MODELS {
        let g = generate_best(model);
        let report = lint(&g);
        let fired = report.codes_fired();
        let tax = classify(&g, &gold);

        // Unparseable clauses are exactly RL0001 territory.
        assert_eq!(
            tax.syntax_errors > 0,
            fired.contains(&codes::SYNTAX_ERROR),
            "{model:?}: taxonomy syntax_errors={} vs lint {fired:?}",
            tax.syntax_errors
        );
        // Taxonomy category 3 (undefined dependencies) implies the
        // analyzer's undefined-fluent finding. The converse need not
        // hold: the taxonomy excludes names the gold standard defines,
        // the analyzer judges the description on its own.
        if !tax.undefined_dependencies.is_empty() {
            assert!(
                fired.contains(&codes::UNDEFINED_FLUENT),
                "{model:?}: taxonomy found undefined dependencies {:?} but lint fired {fired:?}",
                tax.undefined_dependencies
            );
        }
        // Naming divergences (category 1) also leave dangling
        // references behind.
        if !tax.naming_divergences.is_empty() {
            assert!(
                fired.contains(&codes::UNDEFINED_FLUENT),
                "{model:?}: naming divergences {:?} but lint fired {fired:?}",
                tax.naming_divergences
            );
        }
    }
}

/// The flow analysis (`RL1xxx`, backed by `rtec-analysis`) catches
/// semantic damage the clause-local `RL0xxx` passes structurally
/// cannot: Gpt4o's profile replaces the `movingSpeed` definition with
/// one whose every initiation depends on undefined helper fluents.
/// `movingSpeed` itself is *defined*, and each of its rules is
/// individually well-formed, so no local pass flags the rules that
/// require it — only propagating emptiness through the fluent graph
/// reveals that `movingSpeed`, and everything built on it, is dead.
#[test]
fn flow_lints_catch_gpt4o_damage_that_local_passes_miss() {
    let report = lint(&generate_best(Model::Gpt4o));
    // RL1002: the transitively-dead chain, starting at movingSpeed.
    let unreachable: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == codes::UNREACHABLE_FLUENT)
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        unreachable.iter().any(|m| m.contains("movingSpeed/1")),
        "{unreachable:?}"
    );
    assert!(
        unreachable.iter().any(|m| m.contains("underWay/1")),
        "{unreachable:?}"
    );
    // The flow-driven RL0501 on the rules requiring the dead fluents.
    // The local heuristic (fluent defined only by terminatedAt rules)
    // cannot fire here: movingSpeed and underWay both have initiations.
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::DEAD_RULE && d.message.contains("can never hold")),
        "flow-driven RL0501 missing:\n{}",
        report.render()
    );
    // And none of this is visible to the RL0xxx undefined-reference
    // pass: movingSpeed IS defined, so RL0101 never mentions it.
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::UNDEFINED_FLUENT && d.message.contains("movingSpeed")),
        "{}",
        report.render()
    );
}

/// The correction step must never make the lint report worse on
/// comparable ground, and for the profiles with syntax damage it must
/// strictly reduce the error count (RL0001 findings disappear once the
/// text parses). A successful syntax repair legitimately *unlocks*
/// clauses for the deeper passes — the newly analyzable clauses may
/// carry flow findings — so the total is only required to be monotone
/// when no repair changed the analyzable clause set.
#[test]
fn correction_reduces_lint_findings() {
    for model in MODELS {
        let g = generate_best(model);
        let outcome = correct_description(&g, &[("trawlingArea", "fishing")]);
        assert!(
            outcome.lint_after.errors <= outcome.lint_before.errors,
            "{model:?}: correction added lint errors: {:?} -> {:?}",
            outcome.lint_before,
            outcome.lint_after
        );
        if outcome.syntax_repairs == 0 {
            assert!(
                outcome.lint_after.total() <= outcome.lint_before.total(),
                "{model:?}: correction added lint findings: {:?} -> {:?}",
                outcome.lint_before,
                outcome.lint_after
            );
        }
        // Residual flow findings are surfaced for repair-or-reject and
        // exactly mirror the RL1xxx findings in the final report.
        assert!(
            outcome.residual_flow.iter().all(|m| m.contains("[RL1")),
            "{model:?}: {:?}",
            outcome.residual_flow
        );
    }
    // Gpt4o's statically-dead movingSpeed chain survives lexical
    // correction — renames cannot resurrect it — and is reported for
    // the reject decision.
    let outcome = correct_description(&generate_best(Model::Gpt4o), &[]);
    assert!(
        outcome
            .residual_flow
            .iter()
            .any(|m| m.contains("movingSpeed/1")),
        "{:?}",
        outcome.residual_flow
    );
    // Mistral's missing period is repaired, so its syntax finding goes.
    let outcome = correct_description(&generate_best(Model::Mistral), &[]);
    assert!(
        outcome.lint_before.errors > outcome.lint_after.errors,
        "syntax repair must remove the RL0001 error: {:?} -> {:?}",
        outcome.lint_before,
        outcome.lint_after
    );
}
