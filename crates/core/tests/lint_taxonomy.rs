//! Cross-tabulation of `rtec-lint` diagnostics against the qualitative
//! error taxonomy (Section 5.2): every mock model's injected error
//! profile must surface as lint findings, and the codes that fire must
//! line up with the taxonomy categories the profile populates. This
//! pins the analyzer to the paper's error catalogue — if a profile
//! mutation stops producing its lint signature, one of the two layers
//! regressed.

use adgen_core::correction::correct_description;
use adgen_core::taxonomy::classify;
use llmgen::{generate, GeneratedDescription, MockLlm, Model};
use maritime::thresholds::Thresholds;
use rtec::EventDescription;
use rtec_lint::{analyze, codes, AnalysisReport};

const MODELS: [Model; 6] = [
    Model::O1,
    Model::Gpt4o,
    Model::Llama3,
    Model::Gpt4,
    Model::Mistral,
    Model::Gemma2,
];

fn generate_best(model: Model) -> GeneratedDescription {
    let mut m = MockLlm::new(model);
    generate(&mut m, model.best_scheme(), &Thresholds::default())
}

fn lint(g: &GeneratedDescription) -> AnalysisReport {
    analyze(&g.description())
}

/// The exact lint signature of each model's error profile at its best
/// prompting scheme. The mock pipeline is deterministic, so these are
/// exact sets, not subsets.
#[test]
fn each_error_profile_has_a_stable_lint_signature() {
    let expected: [(Model, &[&str]); 6] = [
        (
            Model::O1,
            &[codes::UNDEFINED_FLUENT, codes::SINGLETON_VARIABLE],
        ),
        (
            Model::Gpt4o,
            &[codes::UNDEFINED_FLUENT, codes::SINGLETON_VARIABLE],
        ),
        (
            Model::Llama3,
            &[codes::UNDEFINED_FLUENT, codes::SINGLETON_VARIABLE],
        ),
        (
            Model::Gpt4,
            &[
                codes::UNDEFINED_FLUENT,
                codes::KIND_CONFLICT,
                codes::UNSAFE_VARIABLE,
                codes::SINGLETON_VARIABLE,
            ],
        ),
        (
            Model::Mistral,
            &[
                codes::SYNTAX_ERROR,
                codes::UNDEFINED_FLUENT,
                codes::SINGLETON_VARIABLE,
            ],
        ),
        (
            Model::Gemma2,
            &[
                codes::SYNTAX_ERROR,
                codes::UNDEFINED_FLUENT,
                codes::SINGLETON_VARIABLE,
                codes::DEAD_RULE,
            ],
        ),
    ];
    for (model, want) in expected {
        let report = lint(&generate_best(model));
        assert!(
            !report.diagnostics.is_empty(),
            "{model:?}: every error profile must yield at least one lint finding"
        );
        assert_eq!(
            report.codes_fired(),
            want.to_vec(),
            "{model:?} lint signature drifted:\n{}",
            report.render()
        );
    }
}

/// The lint codes must agree with the taxonomy categories computed
/// against the gold standard.
#[test]
fn lint_codes_cross_tabulate_with_taxonomy_categories() {
    let gold = EventDescription::parse_lenient(maritime::gold::GOLD_RULES);
    for model in MODELS {
        let g = generate_best(model);
        let report = lint(&g);
        let fired = report.codes_fired();
        let tax = classify(&g, &gold);

        // Unparseable clauses are exactly RL0001 territory.
        assert_eq!(
            tax.syntax_errors > 0,
            fired.contains(&codes::SYNTAX_ERROR),
            "{model:?}: taxonomy syntax_errors={} vs lint {fired:?}",
            tax.syntax_errors
        );
        // Taxonomy category 3 (undefined dependencies) implies the
        // analyzer's undefined-fluent finding. The converse need not
        // hold: the taxonomy excludes names the gold standard defines,
        // the analyzer judges the description on its own.
        if !tax.undefined_dependencies.is_empty() {
            assert!(
                fired.contains(&codes::UNDEFINED_FLUENT),
                "{model:?}: taxonomy found undefined dependencies {:?} but lint fired {fired:?}",
                tax.undefined_dependencies
            );
        }
        // Naming divergences (category 1) also leave dangling
        // references behind.
        if !tax.naming_divergences.is_empty() {
            assert!(
                fired.contains(&codes::UNDEFINED_FLUENT),
                "{model:?}: naming divergences {:?} but lint fired {fired:?}",
                tax.naming_divergences
            );
        }
    }
}

/// The correction step must never make the lint report worse, and for
/// the profiles with syntax damage it must strictly reduce the error
/// count (RL0001 findings disappear once the text parses).
#[test]
fn correction_reduces_lint_findings() {
    for model in MODELS {
        let g = generate_best(model);
        let outcome = correct_description(&g, &[("trawlingArea", "fishing")]);
        assert!(
            outcome.lint_after.errors <= outcome.lint_before.errors,
            "{model:?}: correction added lint errors: {:?} -> {:?}",
            outcome.lint_before,
            outcome.lint_after
        );
        assert!(
            outcome.lint_after.total() <= outcome.lint_before.total(),
            "{model:?}: correction added lint findings: {:?} -> {:?}",
            outcome.lint_before,
            outcome.lint_after
        );
    }
    // Mistral's missing period is repaired, so its syntax finding goes.
    let outcome = correct_description(&generate_best(Model::Mistral), &[]);
    assert!(
        outcome.lint_before.errors > outcome.lint_after.errors,
        "syntax repair must remove the RL0001 error: {:?} -> {:?}",
        outcome.lint_before,
        outcome.lint_after
    );
}
