//! Metric-sensitivity ablation: how much does each error category move
//! the similarity score?
//!
//! The paper argues the metric "reflects the human effort required to
//! correct" a definition. This ablation quantifies that claim on our
//! gold standard: each error type of Section 5.2 is injected — alone —
//! into each target activity's definition, and the resulting similarity
//! is recorded. Naming divergences should cost little (a rename is one
//! edit), missing/extra conditions more, and a wrong fluent kind the
//! most (a rewrite).

use llmgen::errors::{apply_mutations, render, Mutation, SyntaxErrorKind};
use maritime::gold::{activities, clauses_for_fluents, gold_event_description};
use rtec::EventDescription;
use serde::Serialize;

/// One ablation cell: the similarity of an activity definition after a
/// single injected error.
#[derive(Clone, Debug, Serialize)]
pub struct AblationCell {
    /// The activity key.
    pub activity: String,
    /// The error type injected.
    pub error: String,
    /// Similarity against the unmodified gold definition.
    pub similarity: f64,
}

/// The error types of the ablation, with a representative mutation per
/// activity. Returns `None` when the error type is not applicable (e.g.
/// dropping a rule from a single-rule definition would empty it).
fn mutation_for(error: &str, n_rules: usize) -> Option<Vec<Mutation>> {
    match error {
        "rename-constant" => Some(vec![Mutation::RenameSymbol {
            from: "true".into(),
            to: "yes".into(),
        }]),
        "redundant-condition" => Some(vec![Mutation::AddCondition {
            rule_index: 0,
            literal: "holdsFor(underWay(Vessel)=true, Iextra)".into(),
        }]),
        "dropped-rule" => (n_rules > 1).then(|| vec![Mutation::DropRule { index: n_rules - 1 }]),
        "operator-confusion" => Some(vec![Mutation::ConfuseUnionIntersect]),
        "argument-swap" => Some(vec![Mutation::SwapArgs {
            functor: "areaType".into(),
        }]),
        "syntax-error" => Some(vec![Mutation::InjectSyntaxError {
            rule_index: 0,
            kind: SyntaxErrorKind::MissingPeriod,
        }]),
        _ => None,
    }
}

/// The error types exercised by the ablation, in report order.
pub const ERROR_TYPES: [&str; 6] = [
    "rename-constant",
    "redundant-condition",
    "dropped-rule",
    "operator-confusion",
    "argument-swap",
    "syntax-error",
];

/// Runs the full ablation grid over the eight target activities.
pub fn metric_ablation() -> Vec<AblationCell> {
    let gold = gold_event_description();
    let mut out = Vec::new();
    for activity in activities() {
        let gold_clauses: Vec<rtec::ast::Clause> = clauses_for_fluents(&gold, &[activity.name])
            .into_iter()
            .cloned()
            .collect();
        let gold_side = EventDescription::from_clauses(gold.symbols.clone(), gold_clauses.clone());
        for error in ERROR_TYPES {
            let Some(mutations) = mutation_for(error, gold_clauses.len()) else {
                continue;
            };
            let mut symbols = gold.symbols.clone();
            let mutated = apply_mutations(gold_clauses.clone(), &mut symbols, &mutations);
            let text = render(&mutated, &symbols);
            let gen_side = EventDescription::parse_lenient(&text);
            let cmp = simdist::compare_descriptions(&gold_side, &gen_side);
            out.push(AblationCell {
                activity: activity.key.to_owned(),
                error: error.to_owned(),
                similarity: cmp.similarity,
            });
        }
    }
    out
}

/// Mean similarity per error type (the ablation's headline numbers).
pub fn mean_by_error(cells: &[AblationCell]) -> Vec<(String, f64)> {
    ERROR_TYPES
        .iter()
        .filter_map(|e| {
            let vals: Vec<f64> = cells
                .iter()
                .filter(|c| c.error == *e)
                .map(|c| c.similarity)
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some((
                    (*e).to_owned(),
                    vals.iter().sum::<f64>() / vals.len() as f64,
                ))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_grid_is_complete_enough() {
        let cells = metric_ablation();
        // 8 activities x 6 error types, minus inapplicable dropped-rule
        // cells for single-rule definitions.
        assert!(cells.len() >= 8 * 5, "only {} cells", cells.len());
        for c in &cells {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&c.similarity),
                "{c:?} out of range"
            );
        }
    }

    #[test]
    fn error_severity_ordering_matches_intuition() {
        let cells = metric_ablation();
        let means = mean_by_error(&cells);
        let get = |name: &str| {
            means
                .iter()
                .find(|(e, _)| e == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // A rename is the cheapest error; structural damage costs more.
        assert!(get("rename-constant") > get("redundant-condition"));
        assert!(get("rename-constant") > get("dropped-rule"));
        assert!(get("rename-constant") > get("syntax-error"));
        // A single dangling syntax error loses at least one whole rule.
        assert!(get("syntax-error") < 0.95);
    }

    #[test]
    fn identity_controls_score_one() {
        // Without mutations the similarity is exactly 1 (control check
        // that the ablation harness itself adds no noise).
        let gold = gold_event_description();
        for activity in activities().iter().take(2) {
            let clauses: Vec<rtec::ast::Clause> = clauses_for_fluents(&gold, &[activity.name])
                .into_iter()
                .cloned()
                .collect();
            let side = EventDescription::from_clauses(gold.symbols.clone(), clauses);
            let cmp = simdist::compare_descriptions(&side, &side);
            assert!((cmp.similarity - 1.0).abs() < 1e-12);
        }
    }
}
