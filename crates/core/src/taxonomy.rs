//! Qualitative error assessment (Section 5.2).
//!
//! Classifies the defects of a generated event description into the
//! paper's four categories — naming divergences, wrong fluent kind,
//! undefined dependencies and operator confusion — plus outright
//! syntactic and validation errors.

use crate::correction::standard_vocabulary;
use llmgen::GeneratedDescription;
use maritime::gold::head_fluent_name;
use rtec::EventDescription;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// The error classification of one generated description.
#[derive(Clone, Debug, Serialize)]
pub struct ErrorTaxonomy {
    /// The description's label, e.g. `Mistral△`.
    pub label: String,
    /// Clauses that failed to parse.
    pub syntax_errors: usize,
    /// Clauses rejected by RTEC's rule-syntax validation.
    pub validation_errors: usize,
    /// Category 1: names outside the input schema / background knowledge
    /// (and not defined by the description itself).
    pub naming_divergences: Vec<String>,
    /// Category 2: fluents defined with the opposite kind (simple vs
    /// statically determined) compared to the gold standard.
    pub wrong_fluent_kind: Vec<String>,
    /// Category 3: fluents referenced in rule bodies but defined nowhere
    /// (and not input fluents).
    pub undefined_dependencies: Vec<String>,
    /// Category 4: statically determined fluents whose interval
    /// constructs match the gold ones only after swapping
    /// `union_all`/`intersect_all`.
    pub operator_confusions: Vec<String>,
}

#[derive(PartialEq, Clone, Copy, Debug)]
enum FluentKind {
    Simple,
    Static,
}

fn fluent_kinds(desc: &EventDescription) -> BTreeMap<String, FluentKind> {
    let mut kinds = BTreeMap::new();
    for c in &desc.clauses {
        let Some(name) = head_fluent_name(desc, c) else {
            continue;
        };
        let Some(pred) = c.head.functor().and_then(|f| desc.symbols.try_name(f)) else {
            continue;
        };
        let kind = if pred == "holdsFor" {
            FluentKind::Static
        } else {
            FluentKind::Simple
        };
        // First definition wins; mixed definitions are already a
        // validation error counted elsewhere.
        kinds.entry(name.to_owned()).or_insert(kind);
    }
    kinds
}

/// Multiset of interval-construct functors per statically determined
/// fluent.
fn construct_profile(desc: &EventDescription) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for c in &desc.clauses {
        let Some(name) = head_fluent_name(desc, c) else {
            continue;
        };
        let Some(pred) = c.head.functor().and_then(|f| desc.symbols.try_name(f)) else {
            continue;
        };
        if pred != "holdsFor" {
            continue;
        }
        let mut constructs = Vec::new();
        for b in &c.body {
            if let Some(n) = b.functor().and_then(|f| desc.symbols.try_name(f)) {
                if matches!(n, "union_all" | "intersect_all" | "relative_complement_all") {
                    constructs.push(n.to_owned());
                }
            }
        }
        constructs.sort();
        out.entry(name.to_owned()).or_default().extend(constructs);
    }
    out
}

/// Classifies the errors of `generated` against the gold standard.
pub fn classify(generated: &GeneratedDescription, gold: &EventDescription) -> ErrorTaxonomy {
    let desc = generated.description();
    let syntax_errors = desc.parse_errors.len();

    let compiled = desc.compile();
    let (validation_errors, undefined_dependencies) = match &compiled {
        Ok(c) => {
            let defined: BTreeSet<String> = c
                .simple_by_fluent
                .keys()
                .chain(c.static_by_fluent.keys())
                .filter_map(|(f, _)| c.symbols.try_name(*f).map(str::to_owned))
                .collect();
            let mut undefined: Vec<String> = c
                .referenced_fluents()
                .into_iter()
                .filter_map(|(f, _)| c.symbols.try_name(f).map(str::to_owned))
                .filter(|n| !defined.contains(n) && n != "proximity")
                .collect();
            undefined.sort();
            undefined.dedup();
            (c.report.errors().count(), undefined)
        }
        Err(_) => (0, Vec::new()),
    };

    // Category 1: out-of-vocabulary names.
    let vocab = standard_vocabulary();
    let defined_here: BTreeSet<String> = fluent_kinds(&desc).into_keys().collect();
    let mut naming = BTreeSet::new();
    for c in &desc.clauses {
        let mut names = BTreeSet::new();
        collect(&c.head, &desc, &mut names);
        for b in &c.body {
            collect(b, &desc, &mut names);
        }
        for n in names {
            if !vocab.contains(&n) && !defined_here.contains(&n) {
                naming.insert(n);
            }
        }
    }

    // Category 2: kind mismatches vs gold.
    let gen_kinds = fluent_kinds(&desc);
    let gold_kinds = fluent_kinds(gold);
    let wrong_fluent_kind: Vec<String> = gen_kinds
        .iter()
        .filter(|(name, kind)| gold_kinds.get(*name).is_some_and(|g| g != *kind))
        .map(|(name, _)| name.clone())
        .collect();

    // Category 4: construct profiles equal only after a union/intersect
    // swap.
    let gen_cons = construct_profile(&desc);
    let gold_cons = construct_profile(gold);
    let mut operator_confusions = Vec::new();
    for (name, gold_profile) in &gold_cons {
        let Some(gen_profile) = gen_cons.get(name) else {
            continue;
        };
        if gen_profile == gold_profile {
            continue;
        }
        let mut swapped: Vec<String> = gen_profile
            .iter()
            .map(|c| match c.as_str() {
                "union_all" => "intersect_all".to_owned(),
                "intersect_all" => "union_all".to_owned(),
                other => other.to_owned(),
            })
            .collect();
        swapped.sort();
        let mut gold_sorted = gold_profile.clone();
        gold_sorted.sort();
        if swapped == gold_sorted {
            operator_confusions.push(name.clone());
        }
    }

    ErrorTaxonomy {
        label: generated.label(),
        syntax_errors,
        validation_errors,
        naming_divergences: naming.into_iter().collect(),
        wrong_fluent_kind,
        undefined_dependencies,
        operator_confusions,
    }
}

fn collect(t: &rtec::Term, desc: &EventDescription, out: &mut BTreeSet<String>) {
    match t {
        rtec::Term::Atom(s) => {
            if let Some(n) = desc.symbols.try_name(*s) {
                out.insert(n.to_owned());
            }
        }
        rtec::Term::Compound(f, args) => {
            if let Some(n) = desc.symbols.try_name(*f) {
                out.insert(n.to_owned());
            }
            for a in args {
                collect(a, desc, out);
            }
        }
        rtec::Term::List(items) => {
            for a in items {
                collect(a, desc, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmgen::{generate, MockLlm, Model};
    use maritime::thresholds::Thresholds;

    fn taxonomy_for(model: Model) -> ErrorTaxonomy {
        let gold = maritime::gold_event_description();
        let mut m = MockLlm::new(model);
        let g = generate(&mut m, model.best_scheme(), &Thresholds::default());
        classify(&g, &gold)
    }

    #[test]
    fn gpt4o_shows_wrong_kind_and_operator_confusion() {
        let t = taxonomy_for(Model::Gpt4o);
        assert!(
            t.wrong_fluent_kind.contains(&"movingSpeed".to_owned()),
            "{t:?}"
        );
        assert!(
            t.operator_confusions.contains(&"loitering".to_owned()),
            "{t:?}"
        );
        assert!(t
            .undefined_dependencies
            .contains(&"speedBelowService".to_owned()));
    }

    #[test]
    fn gemma_shows_syntax_errors_and_wrong_kind() {
        let t = taxonomy_for(Model::Gemma2);
        assert!(t.syntax_errors >= 1, "{t:?}");
        assert!(t.wrong_fluent_kind.contains(&"trawling".to_owned()));
    }

    #[test]
    fn o1_shows_only_naming_divergences() {
        let t = taxonomy_for(Model::O1);
        assert_eq!(t.syntax_errors, 0);
        assert!(t.wrong_fluent_kind.is_empty());
        assert!(t.operator_confusions.is_empty());
        assert!(t.naming_divergences.contains(&"trawlingArea".to_owned()));
        assert!(t.naming_divergences.contains(&"maxCoastalSpeed".to_owned()));
    }

    #[test]
    fn gpt4_shows_undefined_dependencies_and_mixed_kind() {
        let t = taxonomy_for(Model::Gpt4);
        assert!(
            t.undefined_dependencies
                .contains(&"pilotBoardingReady".to_owned()),
            "{t:?}"
        );
        // GPT-4 defines trawling both as a holdsFor rule and with
        // initiatedAt/terminatedAt rules: a validation error (the engine
        // keeps the simple definition). The rejected holdsFor rule also
        // hides its 'fishingOperation' reference from the dependency scan,
        // but the name still surfaces as a naming divergence.
        assert!(t.validation_errors >= 1, "{t:?}");
        assert!(
            t.naming_divergences
                .contains(&"fishingOperation".to_owned()),
            "{t:?}"
        );
    }
}
