//! Rendering experiment results as the rows/series the paper reports.

use crate::evaluation::ActivityScore;
use crate::figures::{Fig2a, Fig2b, Fig2c, ModelSeries};
use serde::Serialize;

/// The x-axis keys of Figure 2, plus the trailing `all` column.
pub const COLUMNS: [&str; 9] = ["h", "aM", "tr", "tu", "p", "l", "s", "d", "all"];

fn row(label: &str, scores: &[ActivityScore], mean: f64) -> String {
    let mut cells: Vec<String> = vec![format!("{label:<12}")];
    for key in &COLUMNS[..8] {
        let v = scores
            .iter()
            .find(|s| s.key == *key)
            .map(|s| s.value)
            .unwrap_or(0.0);
        cells.push(format!("{v:>6.3}"));
    }
    cells.push(format!("{mean:>6.3}"));
    cells.join(" ")
}

fn header(title: &str) -> String {
    let mut cells: Vec<String> = vec![format!("{:<12}", title)];
    for key in COLUMNS {
        cells.push(format!("{key:>6}"));
    }
    cells.join(" ")
}

/// Renders a series table (Figures 2a/2b).
pub fn series_table(title: &str, series: &[ModelSeries]) -> String {
    let mut out = vec![header(title)];
    for s in series {
        out.push(row(&s.label, &s.scores, s.mean));
    }
    out.join("\n")
}

/// Renders Figure 2a.
pub fn fig2a_table(f: &Fig2a) -> String {
    series_table("similarity", &f.series)
}

/// Renders Figure 2b.
pub fn fig2b_table(f: &Fig2b) -> String {
    series_table("similarity", &f.series)
}

/// Renders Figure 2c.
pub fn fig2c_table(f: &Fig2c) -> String {
    let mut out = vec![header("f1-score")];
    for (label, report) in &f.series {
        out.push(row(label, &report.f1, report.mean_f1()));
    }
    out.join("\n")
}

/// Serialisable snapshot of one figure, for machine-readable artefacts.
#[derive(Serialize)]
pub struct FigureJson<'a> {
    /// Figure id, e.g. `"2a"`.
    pub figure: &'a str,
    /// The series.
    pub series: Vec<SeriesJson>,
}

/// One serialised series.
#[derive(Serialize)]
pub struct SeriesJson {
    /// Label, e.g. `o1□`.
    pub label: String,
    /// `(activity key, value)` pairs plus the mean.
    pub values: Vec<(String, f64)>,
    /// The `all` value.
    pub mean: f64,
}

/// JSON artefact for Figures 2a/2b.
pub fn series_json(figure: &str, series: &[ModelSeries]) -> String {
    let s = FigureJson {
        figure,
        series: series
            .iter()
            .map(|s| SeriesJson {
                label: s.label.clone(),
                values: s.scores.iter().map(|x| (x.key.clone(), x.value)).collect(),
                mean: s.mean,
            })
            .collect(),
    };
    serde_json::to_string_pretty(&s).expect("figure serialises")
}

/// JSON artefact for Figure 2c.
pub fn fig2c_json(f: &Fig2c) -> String {
    let s = FigureJson {
        figure: "2c",
        series: f
            .series
            .iter()
            .map(|(label, report)| SeriesJson {
                label: label.clone(),
                values: report.f1.iter().map(|x| (x.key.clone(), x.value)).collect(),
                mean: report.mean_f1(),
            })
            .collect(),
    };
    serde_json::to_string_pretty(&s).expect("figure serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_series() -> ModelSeries {
        ModelSeries {
            label: "o1□".into(),
            scores: COLUMNS[..8]
                .iter()
                .map(|k| ActivityScore {
                    key: (*k).to_owned(),
                    value: 0.5,
                })
                .collect(),
            mean: 0.5,
        }
    }

    #[test]
    fn table_has_header_and_rows() {
        let t = series_table("similarity", &[dummy_series()]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("aM"));
        assert!(lines[1].starts_with("o1□"));
        assert!(lines[1].contains("0.500"));
    }

    #[test]
    fn json_round_trips() {
        let j = series_json("2a", &[dummy_series()]);
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["figure"], "2a");
        assert_eq!(v["series"][0]["label"], "o1□");
        assert_eq!(v["series"][0]["values"][0][0], "h");
    }
}
