//! Orchestration of the paper's three experiment figures.
//!
//! * [`fig2a`] — similarity of LLM-generated definitions per activity,
//!   best prompting scheme per model;
//! * [`fig2b`] — similarities after the minimal syntactic correction, for
//!   the three best descriptions;
//! * [`fig2c`] — predictive accuracy (f1) of the corrected descriptions
//!   when RTEC runs them over the maritime stream.

use crate::correction::{correct_description, CorrectionOutcome};
use crate::evaluation::{
    accuracy, activity_similarities, mean_similarity, AccuracyReport, ActivityScore,
};
use llmgen::{generate, GeneratedDescription, MockLlm, Model, PromptScheme};
use maritime::thresholds::Thresholds;
use maritime::Dataset;
use rtec::{Engine, EngineConfig};
use serde::Serialize;

/// The alias table a domain expert supplies during correction (the
/// paper's example: o1 names fishing areas 'trawlingArea').
pub const CORRECTION_ALIASES: &[(&str, &str)] = &[("trawlingArea", "fishing")];

/// One model's series in Figure 2a/2b.
#[derive(Clone, Debug, Serialize)]
pub struct ModelSeries {
    /// Label in the paper's notation (`o1□`, `GPT-4o▲`, ...).
    pub label: String,
    /// Per-activity similarity, Figure 2 order.
    pub scores: Vec<ActivityScore>,
    /// The `all` bar: the mean over the eight activities.
    pub mean: f64,
}

/// Figure 2a: similarity values of LLM-generated definitions.
#[derive(Clone, Debug)]
pub struct Fig2a {
    /// One series per model (its best prompting scheme).
    pub series: Vec<ModelSeries>,
    /// The underlying generated descriptions, aligned with `series`.
    pub descriptions: Vec<GeneratedDescription>,
}

/// Runs the generation + similarity experiment for all six models and
/// both prompting schemes, reporting the best scheme per model (as in
/// Figure 2a).
pub fn fig2a() -> Fig2a {
    let gold = maritime::gold_event_description();
    let thresholds = Thresholds::default();
    let mut series = Vec::new();
    let mut descriptions = Vec::new();
    for model in Model::ALL {
        let mut best: Option<(f64, ModelSeries, GeneratedDescription)> = None;
        for scheme in [PromptScheme::FewShot, PromptScheme::ChainOfThought] {
            let mut llm = MockLlm::new(model);
            let generated = generate(&mut llm, scheme, &thresholds);
            let scores = activity_similarities(&generated, &gold);
            let mean = mean_similarity(&scores);
            let s = ModelSeries {
                label: generated.label(),
                scores,
                mean,
            };
            if best.as_ref().is_none_or(|(m, _, _)| mean > *m) {
                best = Some((mean, s, generated));
            }
        }
        let (_, s, g) = best.expect("two schemes evaluated");
        series.push(s);
        descriptions.push(g);
    }
    Fig2a {
        series,
        descriptions,
    }
}

/// Figure 2b: similarities after minimal syntactic changes (top three
/// descriptions of Figure 2a).
#[derive(Clone, Debug)]
pub struct Fig2b {
    /// One series per corrected description.
    pub series: Vec<ModelSeries>,
    /// The corrections, aligned with `series`.
    pub outcomes: Vec<CorrectionOutcome>,
}

/// Corrects the three highest-similarity descriptions of Figure 2a and
/// re-scores them.
pub fn fig2b(fig2a: &Fig2a) -> Fig2b {
    let gold = maritime::gold_event_description();
    let mut order: Vec<usize> = (0..fig2a.series.len()).collect();
    order.sort_by(|&a, &b| {
        fig2a.series[b]
            .mean
            .partial_cmp(&fig2a.series[a].mean)
            .expect("similarities are finite")
    });
    let mut series = Vec::new();
    let mut outcomes = Vec::new();
    for &i in order.iter().take(3) {
        let outcome = correct_description(&fig2a.descriptions[i], CORRECTION_ALIASES);
        let scores = activity_similarities(&outcome.corrected, &gold);
        let mean = mean_similarity(&scores);
        series.push(ModelSeries {
            label: outcome.label.clone(),
            scores,
            mean,
        });
        outcomes.push(outcome);
    }
    Fig2b { series, outcomes }
}

/// Figure 2c: predictive accuracy of the corrected descriptions.
#[derive(Clone, Debug)]
pub struct Fig2c {
    /// `(label, per-activity accuracy)` per corrected description.
    pub series: Vec<(String, AccuracyReport)>,
}

/// Runs RTEC over the dataset's stream with the gold description and with
/// each corrected description, and compares the recognised time-points.
/// The per-description recognition runs execute in parallel (one thread
/// each, via crossbeam's scoped threads).
pub fn fig2c(fig2b: &Fig2b, dataset: &Dataset) -> Fig2c {
    let horizon = dataset.horizon() + 1;
    let gold_desc = dataset.gold_description();
    let gold_run = run_description(&gold_desc, dataset);

    let results: Vec<(String, AccuracyReport)> = crossbeam::thread::scope(|scope| {
        let gold_run = &gold_run;
        let handles: Vec<_> = fig2b
            .outcomes
            .iter()
            .map(|outcome| {
                scope.spawn(move |_| {
                    let desc = dataset.with_background(&outcome.corrected.full_text());
                    let run = run_description(&desc, dataset);
                    let report = match &run {
                        Some((out, sym)) => accuracy(
                            (out, sym),
                            (
                                &gold_run.as_ref().expect("gold compiles").0,
                                &gold_run.as_ref().expect("gold compiles").1,
                            ),
                            horizon,
                        ),
                        None => empty_report(),
                    };
                    (outcome.label.clone(), report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recognition thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    Fig2c { series: results }
}

fn run_description(
    desc: &rtec::EventDescription,
    dataset: &Dataset,
) -> Option<(rtec::engine::RecognitionOutput, rtec::SymbolTable)> {
    let compiled = desc.compile().ok()?;
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    dataset.stream.load_into(&mut engine);
    engine.run_to(dataset.horizon() + 1);
    let symbols = engine.symbols().clone();
    Some((engine.into_output(), symbols))
}

fn empty_report() -> AccuracyReport {
    let zeros = |k: &str| ActivityScore {
        key: k.to_owned(),
        value: 0.0,
    };
    let keys = ["h", "aM", "tr", "tu", "p", "l", "s", "d"];
    AccuracyReport {
        f1: keys.iter().map(|k| zeros(k)).collect(),
        precision: keys.iter().map(|k| zeros(k)).collect(),
        recall: keys.iter().map(|k| zeros(k)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime::BrestScenario;

    #[test]
    fn fig2a_best_schemes_match_the_paper() {
        let f = fig2a();
        let labels: Vec<&str> = f.series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "GPT-4□",
                "GPT-4o△",
                "o1□",
                "Llama-3□",
                "Mistral△",
                "Gemma-2△"
            ]
        );
    }

    #[test]
    fn fig2a_ordering_matches_the_paper() {
        let f = fig2a();
        let mean = |label: &str| {
            f.series
                .iter()
                .find(|s| s.label.starts_with(label))
                .unwrap()
                .mean
        };
        // Top three: o1, GPT-4o, Llama-3; bottom: Gemma-2.
        assert!(mean("o1") > mean("GPT-4□"));
        assert!(mean("GPT-4o") > mean("Mistral"));
        assert!(mean("Llama-3") > mean("Gemma-2"));
        assert!(mean("Gemma-2") < mean("Mistral"));
        // Gemma-2's trawling similarity is 0.
        let gemma = f
            .series
            .iter()
            .find(|s| s.label.starts_with("Gemma"))
            .unwrap();
        let tr = gemma.scores.iter().find(|s| s.key == "tr").unwrap();
        assert!(tr.value.abs() < 1e-9);
    }

    #[test]
    fn fig2b_corrects_the_top_three_and_improves_means() {
        let a = fig2a();
        let b = fig2b(&a);
        assert_eq!(b.series.len(), 3);
        let labels: Vec<&str> = b.series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"o1■"));
        assert!(labels.contains(&"GPT-4o▲"));
        assert!(labels.contains(&"Llama-3■"));
        // Correction may only help (it fixes names/syntax, never harms).
        for s in &b.series {
            let before = a
                .series
                .iter()
                .find(|x| x.label[..2] == s.label[..2])
                .unwrap();
            assert!(
                s.mean >= before.mean - 1e-9,
                "{}: {} -> {}",
                s.label,
                before.mean,
                s.mean
            );
        }
    }

    #[test]
    fn fig2c_reproduces_the_paper_shape() {
        let a = fig2a();
        let b = fig2b(&a);
        let dataset = Dataset::generate(&BrestScenario::small());
        let c = fig2c(&b, &dataset);
        assert_eq!(c.series.len(), 3);
        let report = |label: &str| {
            &c.series
                .iter()
                .find(|(l, _)| l.starts_with(label))
                .unwrap()
                .1
        };
        let f1 = |label: &str, key: &str| {
            report(label)
                .f1
                .iter()
                .find(|s| s.key == key)
                .unwrap()
                .value
        };
        // o1 beats the others on loitering (operator confusion kills it
        // for GPT-4o and Llama-3) — the paper's headline observation.
        assert!(f1("o1", "l") > 0.9, "o1 l = {}", f1("o1", "l"));
        assert!(f1("GPT-4o", "l") < 0.1, "GPT-4o l = {}", f1("GPT-4o", "l"));
        assert!(f1("Llama-3", "l") < 0.1);
        // o1 has the best mean f1.
        assert!(report("o1").mean_f1() > report("GPT-4o").mean_f1());
        assert!(report("o1").mean_f1() > report("Llama-3").mean_f1());
        // Most simple-fluent activities are comparably accurate for all
        // three (the paper: "comparably accurate definitions for most
        // simple FVPs").
        for label in ["o1", "GPT-4o", "Llama-3"] {
            assert!(f1(label, "h") > 0.9, "{label} h = {}", f1(label, "h"));
            assert!(f1(label, "aM") > 0.9, "{label} aM = {}", f1(label, "aM"));
        }
    }
}
