//! Minimal syntactic correction — the paper's `▲`/`■` step.
//!
//! "Unfortunately, these event descriptions cannot be used directly by
//! RTEC, as they include minor syntactic errors, such as incorrect names
//! for constants and predicates" (Section 5.2). This module automates the
//! *minimum required changes*: it repairs lexical damage (missing periods,
//! unbalanced parentheses, a mangled `:-`) and re-aligns out-of-vocabulary
//! names to the input schema and background knowledge by token/edit
//! similarity, optionally guided by an alias table recording the
//! judgement calls a human made (the paper's example: renaming the
//! constant `trawlingArea` to `fishing`).
//!
//! Structural errors — wrong fluent kind, undefined composite activities,
//! `union_all`/`intersect_all` confusion — are deliberately *not* fixed:
//! the paper's corrected descriptions keep them, which is exactly why
//! Figure 2c separates the models.

use llmgen::errors::{apply_mutations, render, Mutation};
use llmgen::prompts::input_event_catalogue;
use llmgen::GeneratedDescription;
use maritime::thresholds::Thresholds;
use rtec::{EventDescription, Term};
use rtec_lint::AnalysisReport;
use std::collections::BTreeSet;

/// Diagnostic counts from one `rtec-lint` run, used to measure how much
/// semantic damage the correction step removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Error-severity diagnostics.
    pub errors: usize,
    /// Warning-severity diagnostics.
    pub warnings: usize,
}

impl LintSummary {
    /// Counts the diagnostics of a report.
    pub fn of(report: &AnalysisReport) -> LintSummary {
        LintSummary {
            errors: report.errors().count(),
            warnings: report.warnings().count(),
        }
    }

    /// Total diagnostics.
    pub fn total(&self) -> usize {
        self.errors + self.warnings
    }
}

/// The result of correcting one generated description.
#[derive(Clone, Debug)]
pub struct CorrectionOutcome {
    /// The corrected description (same per-task structure).
    pub corrected: GeneratedDescription,
    /// The paper's notation for the corrected description, e.g. `o1■`.
    pub label: String,
    /// Human-readable change log.
    pub changes: Vec<String>,
    /// Number of tasks whose text needed lexical repair.
    pub syntax_repairs: usize,
    /// Number of distinct names re-aligned.
    pub renames: usize,
    /// Analyzer findings on the raw description.
    pub lint_before: LintSummary,
    /// Analyzer findings after correction.
    pub lint_after: LintSummary,
    /// Renames driven by the analyzer's `did you mean …?` suggestions
    /// (only consulted when the alias table and the lexical matcher both
    /// come up empty).
    pub lint_renames: usize,
    /// Flow-analysis findings (`RL1xxx`) that survive correction,
    /// rendered. Lexical repair cannot fix these — a statically-empty
    /// rule body or an unreachable fluent is semantic damage that needs
    /// regeneration, so they are surfaced for the repair-or-reject
    /// decision instead of being silently counted into `lint_after`.
    pub residual_flow: Vec<String>,
}

/// The text between the first pair of backticks, with any `/arity`
/// suffix stripped — how diagnostics spell names.
fn backticked_name(s: &str) -> Option<&str> {
    let start = s.find('`')? + 1;
    let end = s[start..].find('`')? + start;
    s[start..end].split('/').next()
}

/// Rename candidates harvested from the analyzer's undefined-reference
/// suggestions: `typo -> nearest defined name`.
fn lint_rename_candidates(report: &AnalysisReport) -> std::collections::BTreeMap<String, String> {
    let mut out = std::collections::BTreeMap::new();
    for d in &report.diagnostics {
        if d.code != rtec_lint::codes::UNDEFINED_FLUENT
            && d.code != rtec_lint::codes::UNDECLARED_EVENT
        {
            continue;
        }
        let (Some(from), Some(to)) = (
            backticked_name(&d.message),
            d.suggestion.as_deref().and_then(backticked_name),
        ) else {
            continue;
        };
        if from != to {
            out.entry(from.to_owned()).or_insert_with(|| to.to_owned());
        }
    }
    out
}

/// The domain vocabulary a corrected description may use: input events,
/// background predicates, their constants, threshold names and RTEC
/// keywords.
pub fn standard_vocabulary() -> BTreeSet<String> {
    let mut v: BTreeSet<String> = [
        // RTEC keywords.
        "initiatedAt",
        "terminatedAt",
        "holdsFor",
        "holdsAt",
        "happensAt",
        "union_all",
        "intersect_all",
        "relative_complement_all",
        "not",
        "abs",
        "min",
        "max",
        "=",
        "<",
        ">",
        "=<",
        ">=",
        "\\=",
        "+",
        "-",
        "*",
        "/",
        // Background predicates and the proximity input fluent.
        "areaType",
        "vesselType",
        "typeSpeed",
        "thresholds",
        "proximity",
        // Constants.
        "true",
        "false",
        "below",
        "normal",
        "above",
        "nearPorts",
        "farFromPorts",
        "fishing",
        "anchorage",
        "natura",
        "nearCoast",
        "tug",
        "pilotVessel",
        "sar",
        "cargo",
        "tanker",
        "passenger",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect();
    for (sig, _) in input_event_catalogue() {
        if let Some(name) = sig.split('(').next() {
            v.insert(name.to_owned());
        }
    }
    for (name, _, _) in Thresholds::default().catalogue() {
        v.insert(name.to_owned());
    }
    v
}

/// The names a *functor* (a name used with arguments) may be re-aligned
/// to: input events and background predicates.
pub fn functor_candidates() -> BTreeSet<String> {
    let mut v: BTreeSet<String> = [
        "areaType",
        "vesselType",
        "typeSpeed",
        "thresholds",
        "proximity",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect();
    for (sig, _) in input_event_catalogue() {
        if let Some(name) = sig.split('(').next() {
            v.insert(name.to_owned());
        }
    }
    v
}

/// The names a bare *constant* may be re-aligned to: threshold names,
/// area kinds, vessel types and fluent values.
pub fn constant_candidates() -> BTreeSet<String> {
    let mut v: BTreeSet<String> = [
        "below",
        "normal",
        "above",
        "nearPorts",
        "farFromPorts",
        "fishing",
        "anchorage",
        "natura",
        "nearCoast",
        "tug",
        "pilotVessel",
        "sar",
        "cargo",
        "tanker",
        "passenger",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect();
    for (name, _, _) in Thresholds::default().catalogue() {
        v.insert(name.to_owned());
    }
    v
}

/// Corrects a generated description. `aliases` records human decisions
/// for names the lexical matcher cannot resolve.
pub fn correct_description(
    generated: &GeneratedDescription,
    aliases: &[(&str, &str)],
) -> CorrectionOutcome {
    let vocab = standard_vocabulary();
    let functor_pool = functor_candidates();
    let constant_pool = constant_candidates();
    // Fluents defined anywhere in the description are legitimate names.
    let mut known = vocab.clone();
    let full = generated.description();
    for c in &full.clauses {
        if let Some(name) = maritime::gold::head_fluent_name(&full, c) {
            known.insert(name.to_owned());
        }
    }

    let full_report = rtec_lint::analyze(&full);
    let lint_before = LintSummary::of(&full_report);
    let lint_suggestions = lint_rename_candidates(&full_report);

    let mut changes = Vec::new();
    let mut syntax_repairs = 0;
    let mut renamed: BTreeSet<String> = BTreeSet::new();
    let mut lint_renames = 0;
    let mut per_task = Vec::with_capacity(generated.per_task.len());

    for (task, text) in &generated.per_task {
        // 1. Lexical repair.
        let repaired = repair_syntax(text);
        if repaired != *text {
            syntax_repairs += 1;
            changes.push(format!("{}: repaired syntax", task.key));
        }
        let desc = EventDescription::parse_lenient(&repaired);
        if !desc.parse_errors.is_empty() {
            // Rename mutations re-render from the *parsed* clauses, which
            // would silently delete any clause that is still broken after
            // repair. Keep the repaired text untouched instead; the
            // remaining damage stays visible to the similarity metric.
            changes.push(format!(
                "{}: {} clause(s) still unparseable after repair; left as-is",
                task.key,
                desc.parse_errors.len()
            ));
            per_task.push((task.clone(), repaired));
            continue;
        }

        // 2. Vocabulary alignment, role-aware: functors may only become
        // input events / background predicates, constants may only become
        // known domain constants.
        let mut mutations: Vec<Mutation> = Vec::new();
        for (name, role) in collect_names(&desc) {
            if known.contains(&name) {
                continue;
            }
            let (pool, threshold) = match role {
                NameRole::Functor => (&functor_pool, 0.45),
                NameRole::Constant => (&constant_pool, 0.4),
            };
            let mut via_lint = false;
            let target = aliases
                .iter()
                .find(|(from, _)| *from == name)
                .map(|(_, to)| (*to).to_owned())
                .or_else(|| best_match_in(&name, pool, threshold))
                .or_else(|| {
                    // Last resort: the analyzer's did-you-mean, which
                    // also covers fluents defined elsewhere in the
                    // description (outside the matcher's pools).
                    let to = lint_suggestions.get(&name).cloned()?;
                    via_lint = true;
                    Some(to)
                });
            if let Some(to) = target {
                let how = if via_lint {
                    " (analyzer suggestion)"
                } else {
                    ""
                };
                changes.push(format!("{}: renamed '{}' to '{}'{how}", task.key, name, to));
                renamed.insert(name.clone());
                lint_renames += usize::from(via_lint);
                mutations.push(Mutation::RenameSymbol { from: name, to });
            }
        }

        let new_text = if mutations.is_empty() {
            repaired
        } else {
            let mut symbols = desc.symbols.clone();
            let mutated = apply_mutations(desc.clauses.clone(), &mut symbols, &mutations);
            render(&mutated, &symbols)
        };
        per_task.push((task.clone(), new_text));
    }

    let corrected = GeneratedDescription {
        model_name: generated.model_name.clone(),
        scheme: generated.scheme,
        per_task,
        prompts_sent: generated.prompts_sent,
        retries: generated.retries,
    };
    let label = format!(
        "{}{}",
        corrected.model_name,
        corrected.scheme.filled_marker()
    );
    let after_report = rtec_lint::analyze(&corrected.description());
    let lint_after = LintSummary::of(&after_report);
    let residual_flow = after_report
        .diagnostics
        .iter()
        .filter(|d| d.code.starts_with("RL1"))
        .map(rtec_lint::Diagnostic::render)
        .collect();
    CorrectionOutcome {
        corrected,
        label,
        changes,
        syntax_repairs,
        renames: renamed.len(),
        lint_before,
        lint_after,
        lint_renames,
        residual_flow,
    }
}

/// Textual repair of the three lexical defect kinds the error model (and
/// real LLM output) produces.
pub fn repair_syntax(text: &str) -> String {
    let mut out = fix_neck(text);
    out = fix_missing_periods(&out);
    out = fix_unbalanced_parens(&out);
    out
}

/// `head(...) : body` -> `head(...) :- body`.
fn fix_neck(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == ':' {
            let next = bytes.get(i + 1).copied();
            if next != Some('-') {
                // A lone ':' after a ')' is a mangled neck.
                let prev_non_ws = out.chars().rev().find(|ch| !ch.is_whitespace());
                if prev_non_ws == Some(')') {
                    out.push_str(":-");
                    i += 1;
                    continue;
                }
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// A line ending in `)` followed by a line that starts a new clause at
/// column zero is missing its period. Returns the input untouched when
/// nothing needs fixing.
fn fix_missing_periods(text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::with_capacity(lines.len());
    let mut fixed = false;
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim_end();
        let next_starts_clause = lines.get(i + 1).is_some_and(|n| {
            n.starts_with("initiatedAt")
                || n.starts_with("terminatedAt")
                || n.starts_with("holdsFor")
        });
        let last_line = i + 1 == lines.len();
        if trimmed.ends_with(')') && (next_starts_clause || last_line) {
            out.push(format!("{trimmed}."));
            fixed = true;
        } else {
            out.push((*line).to_owned());
        }
    }
    if !fixed {
        return text.to_owned();
    }
    let mut joined = out.join("\n");
    if text.ends_with('\n') {
        joined.push('\n');
    }
    joined
}

/// Balances parentheses clause by clause (append missing `)` before the
/// final period). Returns the input untouched when every clause is
/// balanced (chunking would otherwise reflow the text).
fn fix_unbalanced_parens(text: &str) -> String {
    let chunks = rtec::parser::split_clause_chunks(text);
    if chunks
        .iter()
        .all(|c| c.matches('(').count() <= c.matches(')').count())
    {
        return text.to_owned();
    }
    chunks
        .into_iter()
        .map(|chunk| {
            let open = chunk.matches('(').count();
            let close = chunk.matches(')').count();
            if open > close {
                let body = chunk.trim_end_matches('.');
                format!("{}{}.", body, ")".repeat(open - close))
            } else {
                chunk
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// How a name is used: as a functor (with arguments) or as a bare
/// constant. A name used both ways is reported as a functor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NameRole {
    /// Used with arguments.
    Functor,
    /// Used as a bare atom.
    Constant,
}

/// All atom/functor names used in a description with their role
/// (variables and numbers excluded), sorted for determinism.
fn collect_names(desc: &EventDescription) -> Vec<(String, NameRole)> {
    let mut names: std::collections::BTreeMap<String, NameRole> = Default::default();
    for c in &desc.clauses {
        collect_term_names(&c.head, desc, &mut names);
        for b in &c.body {
            collect_term_names(b, desc, &mut names);
        }
    }
    names.into_iter().collect()
}

fn collect_term_names(
    t: &Term,
    desc: &EventDescription,
    out: &mut std::collections::BTreeMap<String, NameRole>,
) {
    match t {
        Term::Atom(s) => {
            if let Some(n) = desc.symbols.try_name(*s) {
                out.entry(n.to_owned()).or_insert(NameRole::Constant);
            }
        }
        Term::Compound(f, args) => {
            if let Some(n) = desc.symbols.try_name(*f) {
                out.insert(n.to_owned(), NameRole::Functor);
            }
            for a in args {
                collect_term_names(a, desc, out);
            }
        }
        Term::List(items) => {
            for a in items {
                collect_term_names(a, desc, out);
            }
        }
        _ => {}
    }
}

/// Splits an identifier into lowercase tokens at `_` and camelCase
/// boundaries.
pub fn name_tokens(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in name.chars() {
        if c == '_' {
            if !cur.is_empty() {
                tokens.push(cur.to_lowercase());
                cur = String::new();
            }
        } else if c.is_uppercase() && !cur.is_empty() {
            tokens.push(cur.to_lowercase());
            cur = c.to_string();
        } else {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        tokens.push(cur.to_lowercase());
    }
    tokens
}

/// Dice-style token similarity with partial credit for shared prefixes of
/// four or more characters.
pub fn token_score(a: &str, b: &str) -> f64 {
    let ta = name_tokens(a);
    let tb = name_tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut matched = 0.0;
    let mut used = vec![false; tb.len()];
    for x in &ta {
        // Exact token match first.
        if let Some(j) = tb.iter().enumerate().position(|(j, y)| !used[j] && y == x) {
            used[j] = true;
            matched += 1.0;
            continue;
        }
        // Shared prefix of length >= 4.
        if let Some(j) = tb
            .iter()
            .enumerate()
            .position(|(j, y)| !used[j] && common_prefix_len(x, y) >= 4)
        {
            used[j] = true;
            matched += 0.5;
        }
    }
    2.0 * matched / (ta.len() + tb.len()) as f64
}

fn common_prefix_len(a: &str, b: &str) -> usize {
    a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count()
}

/// Levenshtein distance over lowercase forms, used as the tie-breaker.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The best match for an out-of-vocabulary name within a role-specific
/// candidate pool, using the pool's score threshold (ties broken by edit
/// distance).
pub fn best_match_in(name: &str, pool: &BTreeSet<String>, threshold: f64) -> Option<String> {
    let mut best: Option<(f64, usize, &String)> = None;
    for cand in pool {
        let score = token_score(name, cand);
        if score < threshold {
            continue;
        }
        let dist = levenshtein(name, cand);
        let better = match &best {
            None => true,
            Some((bs, bd, _)) => score > *bs + 1e-9 || ((score - bs).abs() < 1e-9 && dist < *bd),
        };
        if better {
            best = Some((score, dist, cand));
        }
    }
    best.map(|(_, _, c)| c.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmgen::{generate, MockLlm, Model};

    #[test]
    fn tokenizer_splits_camel_and_snake() {
        assert_eq!(
            name_tokens("changeInHeading"),
            vec!["change", "in", "heading"]
        );
        assert_eq!(
            name_tokens("change_in_heading"),
            vec!["change", "in", "heading"]
        );
        assert_eq!(
            name_tokens("hcNearCoastMax"),
            vec!["hc", "near", "coast", "max"]
        );
    }

    #[test]
    fn matcher_resolves_the_calibrated_renames() {
        let functors = functor_candidates();
        let constants = constant_candidates();
        assert_eq!(
            best_match_in("changeInHeading", &functors, 0.45).as_deref(),
            Some("change_in_heading")
        );
        // 'towingMin' ties between tuggingMin and movingMin on token
        // score; the edit-distance tie-break picks movingMin — a
        // realistic near-miss by the automated assistant (the thresholds
        // differ by 0.5 kn, so recognition is barely affected).
        assert_eq!(
            best_match_in("towingMin", &constants, 0.4).as_deref(),
            Some("movingMin")
        );
        assert_eq!(
            best_match_in("towingMax", &constants, 0.4).as_deref(),
            Some("tuggingMax")
        );
        assert_eq!(
            best_match_in("maxCoastalSpeed", &constants, 0.4).as_deref(),
            Some("hcNearCoastMax")
        );
        assert_eq!(
            best_match_in("inArea", &functors, 0.45).as_deref(),
            Some("entersArea")
        );
        // Genuinely unknown helpers stay unknown: no functor candidate
        // reaches the threshold.
        assert_eq!(best_match_in("speedBelowService", &functors, 0.45), None);
        assert_eq!(best_match_in("speedWithinService", &functors, 0.45), None);
        assert_eq!(best_match_in("trawlingArea", &constants, 0.4), None);
    }

    #[test]
    fn repair_fixes_all_three_defects() {
        let broken = "initiatedAt(f(V)=true, T) :\n    happensAt(e(V), T)\n\
                      terminatedAt(f(V)=true, T) :- happensAt(g(V, T).";
        let fixed = repair_syntax(broken);
        let desc = EventDescription::parse_lenient(&fixed);
        assert!(
            desc.parse_errors.is_empty(),
            "still broken: {:?}\n{fixed}",
            desc.parse_errors
        );
        assert_eq!(desc.clauses.len(), 2);
    }

    #[test]
    fn o1_correction_fixes_renames_via_alias_and_matcher() {
        let mut m = MockLlm::new(Model::O1);
        let g = generate(&mut m, Model::O1.best_scheme(), &Thresholds::default());
        let outcome = correct_description(&g, &[("trawlingArea", "fishing")]);
        assert_eq!(outcome.label, "o1■");
        assert!(outcome.renames >= 2, "renames: {:?}", outcome.changes);
        let text = outcome.corrected.full_text();
        assert!(!text.contains("trawlingArea"));
        assert!(!text.contains("maxCoastalSpeed"));
        assert!(text.contains("hcNearCoastMax"));
    }

    #[test]
    fn correction_leaves_structural_errors_alone() {
        let mut m = MockLlm::new(Model::Gpt4o);
        let g = generate(&mut m, Model::Gpt4o.best_scheme(), &Thresholds::default());
        let outcome = correct_description(&g, &[]);
        // The loitering intersect bug must survive correction.
        let l = outcome.corrected.task_text("l").unwrap();
        assert!(l.contains("intersect_all([Il, Is]"), "{l}");
        // The undefined movingSpeed helpers must survive too.
        let ms = outcome.corrected.task_text("movingSpeed").unwrap();
        assert!(ms.contains("speedBelowService"), "{ms}");
    }

    #[test]
    fn corrected_descriptions_parse_cleanly_for_top3() {
        for model in [Model::O1, Model::Gpt4o, Model::Llama3] {
            let mut m = MockLlm::new(model);
            let g = generate(&mut m, model.best_scheme(), &Thresholds::default());
            let outcome = correct_description(&g, &[("trawlingArea", "fishing")]);
            let desc = outcome.corrected.description();
            assert!(
                desc.parse_errors.is_empty(),
                "{model:?}: {:?}",
                desc.parse_errors
            );
        }
    }

    #[test]
    fn mistral_missing_period_is_repaired_end_to_end() {
        // Mistral's profile injects a missing period into the tugging
        // rule; the raw description has a parse error, the corrected one
        // does not.
        let mut m = MockLlm::new(Model::Mistral);
        let g = generate(&mut m, Model::Mistral.best_scheme(), &Thresholds::default());
        assert!(!g.description().parse_errors.is_empty());
        let outcome = correct_description(&g, &[]);
        assert!(outcome.syntax_repairs >= 1, "{:?}", outcome.changes);
        assert!(
            outcome.corrected.description().parse_errors.is_empty(),
            "{:?}",
            outcome.corrected.description().parse_errors
        );
    }

    #[test]
    fn gemma_unbalanced_paren_is_repaired_end_to_end() {
        let mut m = MockLlm::new(Model::Gemma2);
        let g = generate(&mut m, Model::Gemma2.best_scheme(), &Thresholds::default());
        assert!(!g.description().parse_errors.is_empty());
        let outcome = correct_description(&g, &[]);
        assert!(
            outcome.corrected.description().parse_errors.is_empty(),
            "{:?}",
            outcome.corrected.description().parse_errors
        );
    }

    #[test]
    fn lint_suggestion_drives_rename_when_matcher_fails() {
        let mut m = MockLlm::new(Model::O1);
        let mut g = generate(&mut m, Model::O1.best_scheme(), &Thresholds::default());
        // A typo'd reference to a fluent the description itself defines:
        // `underWai` is outside every matcher pool (those only hold
        // input events, background predicates and constants), but the
        // analyzer's did-you-mean reaches defined fluents.
        g.per_task.last_mut().unwrap().1.push_str(
            "\ninitiatedAt(lintProbe(Vessel)=true, T) :-\n                 happensAt(gap_start(Vessel), T),\n                 holdsAt(underWai(Vessel)=true, T).\n",
        );
        let outcome = correct_description(&g, &[("trawlingArea", "fishing")]);
        assert!(outcome.lint_renames >= 1, "{:?}", outcome.changes);
        assert!(outcome
            .changes
            .iter()
            .any(|c| c.contains("'underWai' to 'underWay'") && c.contains("analyzer suggestion")));
        let text = outcome.corrected.full_text();
        assert!(!text.contains("underWai("), "{text}");
        assert!(text.contains("holdsAt(underWay(Vessel)=true, T)"));
    }

    #[test]
    fn lint_counts_are_recorded() {
        let mut m = MockLlm::new(Model::O1);
        let g = generate(&mut m, Model::O1.best_scheme(), &Thresholds::default());
        let outcome = correct_description(&g, &[("trawlingArea", "fishing")]);
        // O1's profile only injects renames, so the raw description has
        // lint findings and the corrected one has no more of them.
        assert!(outcome.lint_before.total() > 0);
        assert!(outcome.lint_after.total() <= outcome.lint_before.total());
        assert_eq!(outcome.lint_renames, 0, "{:?}", outcome.changes);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("towing", "tugging"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("", "abc"), 3);
    }
}
