//! # adgen-core — the end-to-end activity-definition-generation system
//!
//! Ties the substrates together into the paper's full pipeline
//! (*Generating Activity Definitions with Large Language Models*,
//! EDBT 2025):
//!
//! 1. [`llmgen`] generates an RTEC event description per model and
//!    prompting scheme;
//! 2. [`evaluation`] scores each generated description against the gold
//!    standard with the similarity metric of [`simdist`] (Figure 2a) and
//!    measures predictive accuracy by running [`rtec`] over the maritime
//!    stream of [`maritime`] (Figure 2c);
//! 3. [`correction`] performs the minimal syntactic repair of Section 5.2
//!    (the `▲`/`■` step, Figure 2b);
//! 4. [`taxonomy`] classifies the errors of a generated description into
//!    the paper's four qualitative categories;
//! 5. [`figures`] orchestrates everything into the three figure datasets;
//! 6. [`report`] renders them as the tables/series the paper plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod correction;
pub mod evaluation;
pub mod figures;
pub mod report;
pub mod taxonomy;

pub use correction::{correct_description, CorrectionOutcome};
pub use evaluation::{
    activity_similarities, mean_similarity, recognize, AccuracyReport, ActivityScore,
};
pub use figures::{fig2a, fig2b, fig2c, Fig2a, Fig2b, Fig2c};
