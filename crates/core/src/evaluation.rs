//! Scoring generated event descriptions: per-activity similarity
//! (Figure 2a/2b) and predictive accuracy on the stream (Figure 2c).

use llmgen::GeneratedDescription;
use maritime::gold::{activities, clauses_for_fluents};
use maritime::Dataset;
use rtec::engine::RecognitionOutput;
use rtec::{Engine, EngineConfig, EventDescription, IntervalList, SymbolTable, Timepoint};
use serde::Serialize;

/// A per-activity score (similarity or f1).
#[derive(Clone, Debug, Serialize)]
pub struct ActivityScore {
    /// The activity key (`h`, `aM`, `tr`, `tu`, `p`, `l`, `s`, `d`).
    pub key: String,
    /// The score in `[0, 1]`.
    pub value: f64,
}

/// Computes the similarity of each target activity's generated definition
/// against the gold standard (Definition 4.14 applied per activity, as in
/// Figure 2a).
pub fn activity_similarities(
    generated: &GeneratedDescription,
    gold: &EventDescription,
) -> Vec<ActivityScore> {
    activities()
        .iter()
        .map(|a| {
            let gold_clauses: Vec<rtec::ast::Clause> = clauses_for_fluents(gold, &[a.name])
                .into_iter()
                .cloned()
                .collect();
            let gold_side = EventDescription::from_clauses(gold.symbols.clone(), gold_clauses);
            let gen_side = generated
                .task_description(a.key)
                .unwrap_or_else(|| EventDescription::parse_lenient(""));
            let cmp = simdist::compare_descriptions(&gold_side, &gen_side);
            ActivityScore {
                key: a.key.to_owned(),
                value: cmp.similarity.clamp(0.0, 1.0),
            }
        })
        .collect()
}

/// The mean of a score list (the `all` bar of Figure 2).
pub fn mean_similarity(scores: &[ActivityScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(|s| s.value).sum::<f64>() / scores.len() as f64
}

/// Runs an event description over a dataset's stream and returns the
/// recognition output together with the engine's symbol table (needed to
/// resolve fluent names in the output).
pub fn recognize(
    desc: &EventDescription,
    dataset: &Dataset,
    window: Option<Timepoint>,
) -> (RecognitionOutput, SymbolTable) {
    let compiled = desc
        .compile()
        .expect("descriptions fed to recognition must stratify");
    let config = match window {
        Some(w) => EngineConfig::windowed(w),
        None => EngineConfig::default(),
    };
    let mut engine = Engine::new(&compiled, config);
    dataset.stream.load_into(&mut engine);
    engine.run_to(dataset.horizon() + 1);
    let symbols = engine.symbols().clone();
    (engine.into_output(), symbols)
}

/// Union of the maximal intervals of every recognised instance whose
/// fluent functor is *named* `name` (any arity — generated definitions
/// sometimes change an activity's arity).
pub fn union_by_name(
    output: &RecognitionOutput,
    symbols: &SymbolTable,
    name: &str,
) -> IntervalList {
    let lists: Vec<&IntervalList> = output
        .iter()
        .filter(|(fvp, _)| {
            fvp.fluent
                .functor()
                .and_then(|f| symbols.try_name(f))
                .is_some_and(|n| n == name)
        })
        .map(|(_, l)| l)
        .collect();
    IntervalList::union_all(&lists)
}

/// Predictive accuracy of one description against the gold recognition
/// output, per activity (Figure 2c).
///
/// Following the paper: for each activity, the time-points at which both
/// the generated and the hand-crafted definition recognise it are true
/// positives; points recognised only by the generated (hand-crafted)
/// definition are false positives (false negatives). Durations of the
/// interval algebra stand in for point counts (time-points are seconds).
#[derive(Clone, Debug, Serialize)]
pub struct AccuracyReport {
    /// Per-activity f1 scores, Figure 2 order.
    pub f1: Vec<ActivityScore>,
    /// Per-activity precision.
    pub precision: Vec<ActivityScore>,
    /// Per-activity recall.
    pub recall: Vec<ActivityScore>,
}

impl AccuracyReport {
    /// Mean f1 across activities.
    pub fn mean_f1(&self) -> f64 {
        mean_similarity(&self.f1)
    }
}

/// Compares two recognition outputs activity by activity.
pub fn accuracy(
    generated: (&RecognitionOutput, &SymbolTable),
    gold: (&RecognitionOutput, &SymbolTable),
    horizon: Timepoint,
) -> AccuracyReport {
    let mut f1 = Vec::new();
    let mut precision = Vec::new();
    let mut recall = Vec::new();
    for a in activities() {
        let gen_iv = union_by_name(generated.0, generated.1, a.name);
        let gold_iv = union_by_name(gold.0, gold.1, a.name);
        let tp = gen_iv.intersect(&gold_iv).duration_up_to(horizon) as f64;
        let fp = gen_iv.difference(&gold_iv).duration_up_to(horizon) as f64;
        let fneg = gold_iv.difference(&gen_iv).duration_up_to(horizon) as f64;
        let p = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let r = if tp + fneg > 0.0 {
            tp / (tp + fneg)
        } else {
            0.0
        };
        let f = if 2.0 * tp + fp + fneg > 0.0 {
            2.0 * tp / (2.0 * tp + fp + fneg)
        } else {
            0.0
        };
        f1.push(ActivityScore {
            key: a.key.to_owned(),
            value: f,
        });
        precision.push(ActivityScore {
            key: a.key.to_owned(),
            value: p,
        });
        recall.push(ActivityScore {
            key: a.key.to_owned(),
            value: r,
        });
    }
    AccuracyReport {
        f1,
        precision,
        recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmgen::{generate, MockLlm, Model};
    use maritime::thresholds::Thresholds;
    use maritime::BrestScenario;

    #[test]
    fn o1_similarities_are_high() {
        let gold = maritime::gold_event_description();
        let mut m = MockLlm::new(Model::O1);
        let g = generate(&mut m, Model::O1.best_scheme(), &Thresholds::default());
        let sims = activity_similarities(&g, &gold);
        assert_eq!(sims.len(), 8);
        let avg = mean_similarity(&sims);
        assert!(avg > 0.8, "o1 average similarity {avg}");
        // Unmutated activities are identical to gold.
        let am = sims.iter().find(|s| s.key == "aM").unwrap();
        assert!((am.value - 1.0).abs() < 1e-9, "aM={}", am.value);
    }

    #[test]
    fn gemma_trawling_similarity_is_zero() {
        let gold = maritime::gold_event_description();
        let mut m = MockLlm::new(Model::Gemma2);
        let g = generate(&mut m, Model::Gemma2.best_scheme(), &Thresholds::default());
        let sims = activity_similarities(&g, &gold);
        let tr = sims.iter().find(|s| s.key == "tr").unwrap();
        assert!(tr.value.abs() < 1e-9, "tr={}", tr.value);
    }

    #[test]
    fn gold_against_itself_has_perfect_accuracy() {
        let dataset = maritime::Dataset::generate(&BrestScenario::small());
        let gold = dataset.gold_description();
        let (out, sym) = recognize(&gold, &dataset, None);
        let report = accuracy((&out, &sym), (&out, &sym), dataset.horizon() + 1);
        for s in &report.f1 {
            assert!((s.value - 1.0).abs() < 1e-9, "{}={}", s.key, s.value);
        }
    }

    #[test]
    fn union_by_name_spans_arities() {
        let dataset = maritime::Dataset::generate(&BrestScenario::small());
        let gold = dataset.gold_description();
        let (out, sym) = recognize(&gold, &dataset, None);
        let tu = union_by_name(&out, &sym, "tugging");
        assert!(!tu.is_empty());
        let ghost = union_by_name(&out, &sym, "noSuchActivity");
        assert!(ghost.is_empty());
    }
}
