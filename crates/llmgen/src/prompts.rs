//! The prompt builders of Section 3 (prompts R, F*/F, E, T and G).

use crate::profiles::PromptScheme;
use crate::tasks::GenerationTask;
use maritime::thresholds::Thresholds;

/// Prompt R: the syntax of the RTEC language (based on the paper's
/// Definitions 2.2 and 2.4).
pub fn prompt_r() -> String {
    "You will write composite activity definitions in the language of RTEC, the Run-Time \
     Event Calculus. RTEC uses a linear time-line with non-negative integer time-points. \
     happensAt(E, T) signifies that event E occurs at time-point T. \
     initiatedAt(F=V, T) (respectively terminatedAt(F=V, T)) expresses that a time period \
     during which fluent F has value V continuously is initiated (terminated) at T. \
     holdsAt(F=V, T) states that F has value V at T, while holdsFor(F=V, I) expresses that \
     F=V holds continuously in the maximal intervals included in list I.\n\n\
     The body of a rule with initiatedAt(F=V, T) or terminatedAt(F=V, T) in its head starts \
     with a positive happensAt predicate, followed by a possibly empty set of positive or \
     negative happensAt and holdsAt predicates, evaluated at the same time-point T. \
     Negative predicates are prefixed with 'not', which expresses negation-by-failure. \
     Background knowledge predicates and arithmetic comparisons may also appear as \
     conditions.\n\n\
     The body of a rule with holdsFor(F=V, I) in its head starts with a holdsFor condition \
     over a fluent-value pair other than F=V, followed by further holdsFor conditions and \
     the interval manipulation constructs union_all, intersect_all and \
     relative_complement_all. union_all([I1, ..., In], J) computes the union of interval \
     lists, intersect_all([I1, ..., In], J) their intersection, and \
     relative_complement_all(I, [I1, ..., In], J) the sub-intervals of I covered by none of \
     I1, ..., In. Every rule ends with a period."
        .to_owned()
}

/// Prompt F (chain-of-thought) or F* (few-shot): the two ways of defining
/// a composite activity, with the `withinArea` and `underWay` worked
/// examples. The chain-of-thought variant includes the explanatory
/// "Answer" paragraphs; the few-shot variant presents the rules only.
pub fn prompt_f(scheme: PromptScheme) -> String {
    let mut s = String::new();
    s.push_str(
        "There are two ways in which a composite activity may be defined in the language of \
         RTEC. In the first case, a composite activity definition may be specified by means \
         of rules with initiatedAt(F=V,T) or terminatedAt(F=V,T) in their head. This is \
         called a simple fluent definition.\n\n",
    );
    s.push_str(
        "Example 1: Given a composite maritime activity description, provide the rules in \
         the language of RTEC. Composite Maritime Activity Description: 'withinArea'. This \
         activity starts when a vessel enters an area of interest. The activity ends when \
         the vessel leaves the area that it had entered. When there is a gap in signal \
         transmissions, we can no longer assume that the vessel remains in the same area.\n\n",
    );
    if scheme == PromptScheme::ChainOfThought {
        s.push_str(
            "Answer: The activity 'withinArea' is expressed as a simple fluent. This \
             activity starts when a vessel enters an area of interest. We use an \
             'initiatedAt' rule to express this initiation condition. The output is a \
             boolean fluent named 'withinArea' with two arguments, i.e., 'Vessel' and \
             'AreaType'. We use one input event named 'entersArea' with two arguments \
             'Vessel' and 'Area' and one background predicate named 'areaType' with two \
             arguments 'Area' and 'AreaType'. This rule in the language of RTEC is the \
             following:\n",
        );
    }
    s.push_str(
        "initiatedAt(withinArea(Vessel, AreaType)=true, T) :-\n\
         \x20   happensAt(entersArea(Vessel, AreaId), T),\n\
         \x20   areaType(AreaId, AreaType).\n\n",
    );
    if scheme == PromptScheme::ChainOfThought {
        s.push_str(
            "The activity 'withinArea' ends when a vessel leaves the area that it had \
             entered. We use a 'terminatedAt' rule to describe this termination condition:\n",
        );
    }
    s.push_str(
        "terminatedAt(withinArea(Vessel, AreaType)=true, T) :-\n\
         \x20   happensAt(leavesArea(Vessel, AreaId), T),\n\
         \x20   areaType(AreaId, AreaType).\n\n",
    );
    if scheme == PromptScheme::ChainOfThought {
        s.push_str(
            "The activity 'withinArea' ends when a communication gap starts. We use a \
             'terminatedAt' rule to express this termination condition:\n",
        );
    }
    s.push_str(
        "terminatedAt(withinArea(Vessel, AreaType)=true, T) :-\n\
         \x20   happensAt(gap_start(Vessel), T).\n\n",
    );
    s.push_str(
        "A composite activity definition may also be specified by means of one rule with \
         holdsFor(F=V, I) in its head. This is called a statically determined fluent \
         definition.\n\n\
         Example 2: Given a composite maritime activity description, provide the rules in \
         the language of RTEC. Composite Maritime Activity Description: 'underWay'. This \
         activity lasts as long as a vessel is not stopped.\n\n",
    );
    if scheme == PromptScheme::ChainOfThought {
        s.push_str(
            "Answer: The activity 'underWay' is expressed as a statically determined \
             fluent. Rules with 'holdsFor' in the head specify the conditions in which a \
             fluent holds. We express 'underWay' as the disjunction of the three values of \
             'movingSpeed', i.e. 'below', 'normal' and 'above'. Disjunction in 'holdsFor' \
             rules is expressed by means of 'union_all'. This rule is expressed in the \
             language of RTEC as follows:\n",
        );
    }
    s.push_str(
        "holdsFor(underWay(Vessel)=true, I) :-\n\
         \x20   holdsFor(movingSpeed(Vessel)=below, I1),\n\
         \x20   holdsFor(movingSpeed(Vessel)=normal, I2),\n\
         \x20   holdsFor(movingSpeed(Vessel)=above, I3),\n\
         \x20   union_all([I1, I2, I3], I).",
    );
    s
}

/// The input-event catalogue shown in prompt E: `(signature, meaning)`.
pub fn input_event_catalogue() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "velocity(Vessel, Speed, Heading, CourseOverGround)",
            "'Vessel' reported its speed (knots), heading and course over ground (degrees).",
        ),
        (
            "change_in_speed_start(Vessel)",
            "'Vessel' started changing its speed.",
        ),
        (
            "change_in_speed_end(Vessel)",
            "'Vessel' stopped changing its speed.",
        ),
        ("change_in_heading(Vessel)", "'Vessel' changed its heading."),
        ("stop_start(Vessel)", "'Vessel' became idle."),
        (
            "stop_end(Vessel)",
            "'Vessel' started moving after being idle.",
        ),
        (
            "slow_motion_start(Vessel)",
            "'Vessel' started sailing at low speed.",
        ),
        (
            "slow_motion_end(Vessel)",
            "'Vessel' stopped sailing at low speed.",
        ),
        (
            "gap_start(Vessel)",
            "We stopped receiving position messages from 'Vessel'.",
        ),
        (
            "gap_end(Vessel)",
            "We resumed receiving position messages from 'Vessel'.",
        ),
        ("entersArea(Vessel, Area)", "'Vessel' entered area 'Area'."),
        ("leavesArea(Vessel, Area)", "'Vessel' left area 'Area'."),
    ]
}

/// Prompt E: the items of the input stream.
pub fn prompt_e() -> String {
    let mut s = String::from("You may use the following input events:\n\n");
    for (i, (sig, meaning)) in input_event_catalogue().iter().enumerate() {
        s.push_str(&format!(
            "Input Event {}: {sig}\nMeaning: {meaning}\n\n",
            i + 1
        ));
    }
    s.push_str(
        "You may also use the input fluent proximity(Vessel1, Vessel2)=true, whose maximal \
         intervals are provided with the stream: the two vessels are close to each other.\n\n\
         You may use the following background predicates: areaType(Area, AreaType), where \
         AreaType is one of fishing, anchorage, natura, nearCoast, nearPorts; \
         vesselType(Vessel, Type), where Type is one of fishing, tug, pilotVessel, sar, \
         cargo, tanker, passenger; and typeSpeed(Type, Min, Max), the service speed range \
         of a vessel type.",
    );
    s
}

/// Prompt T: the threshold values of the maritime domain.
pub fn prompt_t(thresholds: &Thresholds) -> String {
    let mut s = String::from(
        "You may use a predicate named 'thresholds' with two arguments. The first argument \
         refers to the threshold type and the second one to the threshold value. Threshold \
         values can be used to perform mathematical operations and comparisons.\n\n",
    );
    for (i, (name, value, meaning)) in thresholds.catalogue().iter().enumerate() {
        s.push_str(&format!(
            "Threshold {}: thresholds({name}, {value})\nMeaning: {meaning}\n\n",
            i + 1
        ));
    }
    s
}

/// Prompt G: one activity-generation request.
pub fn prompt_g(task: &GenerationTask) -> String {
    format!(
        "Given a composite maritime activity description, provide the rules in RTEC \
         formalization. You may use any of the aforementioned input events and fluents, \
         and threshold values. You may use any of the output fluents that you have already \
         learned.\n\n\
         Maritime Composite Activity Description - {}: {}",
        task.fluent, task.description
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::generation_tasks;

    #[test]
    fn chain_of_thought_is_longer_than_few_shot() {
        let cot = prompt_f(PromptScheme::ChainOfThought);
        let fs = prompt_f(PromptScheme::FewShot);
        assert!(cot.len() > fs.len());
        assert!(cot.contains("Answer:"));
        assert!(!fs.contains("Answer:"));
        // Both carry the example rules.
        for p in [&cot, &fs] {
            assert!(p.contains("initiatedAt(withinArea(Vessel, AreaType)=true, T)"));
            assert!(p.contains("union_all([I1, I2, I3], I)"));
        }
    }

    #[test]
    fn example_rules_in_prompt_f_parse() {
        // The rule text shown to the model must itself be valid RTEC.
        let fs = prompt_f(PromptScheme::FewShot);
        let mut rules = String::new();
        for chunk in fs.split("\n\n") {
            let c = chunk.trim();
            if c.starts_with("initiatedAt")
                || c.starts_with("terminatedAt")
                || c.starts_with("holdsFor")
            {
                rules.push_str(c);
                rules.push('\n');
            }
        }
        let desc = rtec::EventDescription::parse(&rules).unwrap();
        assert_eq!(desc.clauses.len(), 4);
    }

    #[test]
    fn prompt_e_lists_all_events() {
        let e = prompt_e();
        for (sig, _) in input_event_catalogue() {
            assert!(e.contains(sig), "missing {sig}");
        }
    }

    #[test]
    fn prompt_t_lists_all_thresholds() {
        let t = prompt_t(&Thresholds::default());
        assert!(t.contains("thresholds(hcNearCoastMax, 5)"));
        assert!(t.contains("adriftAngThr"));
    }

    #[test]
    fn prompt_g_embeds_task() {
        let tasks = generation_tasks();
        let g = prompt_g(&tasks[12]);
        assert!(g.contains("highSpeedNearCoast"));
        assert!(g.contains("coastal area"));
    }
}
