//! The end-to-end generation pipeline (Figure 1 of the paper).
//!
//! The pipeline replays the paper's prompt sequence against any
//! [`LanguageModel`]: RTEC syntax (R), fluent kinds with few-shot or
//! chain-of-thought examples (F*/F), input events and fluents (E),
//! thresholds (T), and then one generation prompt (G) per composite
//! activity, lower-level activities first. Each G reply is passed through
//! [`extract_rules`] (models wrap their rules in prose and code fences)
//! and parsed leniently, preserving per-task provenance for the
//! per-activity similarity scores of Figure 2a.

use crate::profiles::PromptScheme;
use crate::prompts;
use crate::provider::{LanguageModel, ModelError};
use crate::tasks::{generation_tasks, GenerationTask};
use maritime::thresholds::Thresholds;
use rtec::EventDescription;

/// The result of one generation session.
#[derive(Clone, Debug)]
pub struct GeneratedDescription {
    /// The model's display name.
    pub model_name: String,
    /// The prompting scheme used.
    pub scheme: PromptScheme,
    /// `(task, extracted rules text)` per generation prompt, in order.
    pub per_task: Vec<(GenerationTask, String)>,
    /// Number of prompts sent.
    pub prompts_sent: usize,
    /// Transient model failures absorbed during the session (reported by
    /// [`LanguageModel::retries`], e.g. via
    /// [`crate::provider::RetryingModel`]). Zero for the simulated models.
    pub retries: u64,
}

impl GeneratedDescription {
    /// The complete generated event description text (all tasks).
    pub fn full_text(&self) -> String {
        self.per_task
            .iter()
            .map(|(t, src)| format!("% --- {} ---\n{src}", t.key))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses the full description leniently.
    pub fn description(&self) -> EventDescription {
        EventDescription::parse_lenient(&self.full_text())
    }

    /// The extracted rules of one task, if present.
    pub fn task_text(&self, key: &str) -> Option<&str> {
        self.per_task
            .iter()
            .find(|(t, _)| t.key == key)
            .map(|(_, s)| s.as_str())
    }

    /// Parses one task's rules leniently.
    pub fn task_description(&self, key: &str) -> Option<EventDescription> {
        self.task_text(key).map(EventDescription::parse_lenient)
    }

    /// The paper's notation for this description, e.g. `o1□`.
    pub fn label(&self) -> String {
        format!("{}{}", self.model_name, self.scheme.marker())
    }
}

/// Runs the full prompt sequence of Section 3 against `model`.
///
/// Infallible convenience over [`try_generate`]: the simulated models
/// never fail, so a model error here is a programming mistake and
/// panics. Fallible providers (HTTP APIs behind
/// [`crate::provider::RetryingModel`]) should go through
/// [`try_generate`] instead.
pub fn generate(
    model: &mut dyn LanguageModel,
    scheme: PromptScheme,
    thresholds: &Thresholds,
) -> GeneratedDescription {
    try_generate(model, scheme, thresholds).unwrap_or_else(|e| panic!("generation failed: {e}"))
}

/// Runs the full prompt sequence of Section 3 against `model`,
/// surfacing model failures (after the model's own retry handling) as
/// values. The run report records how many transient failures were
/// absorbed along the way ([`GeneratedDescription::retries`]).
pub fn try_generate(
    model: &mut dyn LanguageModel,
    scheme: PromptScheme,
    thresholds: &Thresholds,
) -> Result<GeneratedDescription, ModelError> {
    model.reset();
    let retries_before = model.retries();
    let mut prompts_sent = 0;
    let mut send = |m: &mut dyn LanguageModel, p: String| -> Result<String, ModelError> {
        prompts_sent += 1;
        m.try_complete(&p)
    };

    send(model, prompts::prompt_r())?;
    send(model, prompts::prompt_f(scheme))?;
    send(model, prompts::prompt_e())?;
    send(model, prompts::prompt_t(thresholds))?;

    let mut per_task = Vec::new();
    for task in generation_tasks() {
        let reply = send(model, prompts::prompt_g(&task))?;
        let rules = extract_rules(&reply);
        per_task.push((task, rules));
    }

    Ok(GeneratedDescription {
        model_name: model.name(),
        scheme,
        per_task,
        prompts_sent,
        retries: model.retries().saturating_sub(retries_before),
    })
}

/// Extracts RTEC rule text from a chatty model reply.
///
/// Fenced code blocks win when present; otherwise a line-oriented
/// heuristic keeps clause-shaped lines (starting with `initiatedAt`,
/// `terminatedAt` or `holdsFor`) together with their continuation lines
/// until the clause-terminating period.
pub fn extract_rules(text: &str) -> String {
    if text.contains("```") {
        let mut out = String::new();
        for (i, chunk) in text.split("```").enumerate() {
            if i % 2 == 1 {
                // Strip an optional language tag on the first line.
                let chunk = match chunk.split_once('\n') {
                    Some((first, rest))
                        if !first.trim().is_empty()
                            && first.trim().chars().all(|c| c.is_ascii_alphanumeric()) =>
                    {
                        rest
                    }
                    _ => chunk,
                };
                out.push_str(chunk.trim());
                out.push('\n');
            }
        }
        return out;
    }

    let mut out = String::new();
    let mut in_clause = false;
    for line in text.lines() {
        let t = line.trim_start();
        let starts_clause = t.starts_with("initiatedAt")
            || t.starts_with("terminatedAt")
            || t.starts_with("holdsFor");
        if starts_clause || (in_clause && !t.is_empty()) {
            out.push_str(line);
            out.push('\n');
            in_clause = !t.trim_end().ends_with('.');
        } else if t.is_empty() {
            in_clause = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockLlm;
    use crate::profiles::Model;

    fn run(model: Model, scheme: PromptScheme) -> GeneratedDescription {
        let mut m = MockLlm::new(model);
        generate(&mut m, scheme, &Thresholds::default())
    }

    #[test]
    fn pipeline_sends_all_prompts() {
        let g = run(Model::O1, PromptScheme::FewShot);
        // 4 teaching prompts + 20 generation prompts.
        assert_eq!(g.prompts_sent, 24);
        assert_eq!(g.per_task.len(), 20);
    }

    #[test]
    fn generated_description_parses() {
        let g = run(Model::O1, PromptScheme::FewShot);
        let desc = g.description();
        assert!(
            desc.clauses.len() > 30,
            "only {} clauses",
            desc.clauses.len()
        );
    }

    #[test]
    fn per_task_texts_are_nonempty() {
        let g = run(Model::Gpt4o, PromptScheme::ChainOfThought);
        for (task, text) in &g.per_task {
            assert!(!text.trim().is_empty(), "empty rules for {}", task.key);
        }
    }

    #[test]
    fn syntax_errors_survive_into_text_and_are_reported() {
        // Mistral injects a missing period into tugging (few-shot is not
        // its best scheme, but the mutation is scheme-independent).
        let g = run(Model::Mistral, PromptScheme::ChainOfThought);
        let desc = g.description();
        assert!(
            !desc.parse_errors.is_empty(),
            "expected at least one parse error"
        );
    }

    #[test]
    fn extract_rules_from_fences() {
        let text = "Here you go:\n```prolog\nfoo(a).\nbar(b).\n```\nEnjoy!";
        let r = extract_rules(text);
        assert!(r.contains("foo(a)."));
        assert!(r.contains("bar(b)."));
        assert!(!r.contains("Enjoy"));
    }

    #[test]
    fn extract_rules_heuristic_without_fences() {
        let text = "The rules are:\n\
            initiatedAt(f(V)=true, T) :-\n\
            \x20   happensAt(e(V), T).\n\
            \n\
            Some trailing prose that must not be kept.";
        let r = extract_rules(text);
        assert!(r.contains("initiatedAt"));
        assert!(r.contains("happensAt"));
        assert!(!r.contains("prose"));
    }

    #[test]
    fn labels_use_paper_markers() {
        let g = run(Model::Llama3, PromptScheme::FewShot);
        assert_eq!(g.label(), "Llama-3□");
    }

    #[test]
    fn retries_are_recorded_in_the_run_report() {
        use crate::provider::{FlakyModel, RetryPolicy, RetryingModel};
        // 5 transient failures spread across the 24-prompt session: the
        // decorator absorbs them all and the report pins the count.
        let flaky = FlakyModel::new(MockLlm::new(Model::O1), 5);
        let mut m = RetryingModel::with_policy(
            flaky,
            RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::default()
            },
        );
        let g = try_generate(&mut m, PromptScheme::FewShot, &Thresholds::default()).unwrap();
        assert_eq!(g.retries, 5);
        assert_eq!(g.prompts_sent, 24);
        // The flake-free run of the same model is byte-identical.
        let clean = run(Model::O1, PromptScheme::FewShot);
        assert_eq!(clean.retries, 0);
        assert_eq!(g.full_text(), clean.full_text());
    }

    #[test]
    fn try_generate_surfaces_exhausted_retries() {
        use crate::provider::{FlakyModel, ModelError, RetryPolicy, RetryingModel};
        let flaky = FlakyModel::new(MockLlm::new(Model::O1), 100);
        let mut m = RetryingModel::with_policy(
            flaky,
            RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
        );
        let err = try_generate(&mut m, PromptScheme::FewShot, &Thresholds::default()).unwrap_err();
        assert!(matches!(err, ModelError::Transient(_)), "{err}");
    }

    #[test]
    fn determinism_same_output_across_runs() {
        let a = run(Model::Gemma2, PromptScheme::ChainOfThought);
        let b = run(Model::Gemma2, PromptScheme::ChainOfThought);
        assert_eq!(a.full_text(), b.full_text());
    }
}
