//! The error model: transformations that turn gold-standard rules into
//! the kinds of flawed output LLMs produce.
//!
//! The paper's qualitative assessment (Section 5.2) groups the errors of
//! LLM-generated event descriptions into four categories: (1) naming
//! divergences for events, activities and background knowledge; (2) using
//! the wrong kind of fluent (simple vs statically determined); (3)
//! conditions referencing activities that are defined nowhere; and (4)
//! confusing interval operations (e.g. `intersect_all` for `union_all`).
//! On top of these come plain syntactic mistakes. [`Mutation`] expresses
//! all of them as deterministic rewrites.

use rtec::ast::Clause;
use rtec::parser::{parse_program, parse_term};
use rtec::{Symbol, SymbolTable, Term};

/// A syntactic defect injected at render time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyntaxErrorKind {
    /// The final period of the clause is missing.
    MissingPeriod,
    /// A closing parenthesis is dropped.
    UnbalancedParen,
    /// The `:-` operator is misspelt.
    BadNeck,
}

/// One deterministic rewrite of a task's rules. Mutations are applied in
/// order; rule indices refer to the clause list as it stands when the
/// mutation is applied.
#[derive(Clone, Debug)]
pub enum Mutation {
    /// Category 1: rename a functor or constant everywhere in the task's
    /// rules (e.g. `entersArea` -> `inArea`, `fishing` -> `trawlingArea`).
    RenameSymbol {
        /// Name as in the gold standard.
        from: String,
        /// Name the model uses instead.
        to: String,
    },
    /// Reverse the arguments of every binary occurrence of a predicate
    /// (the paper's rule (7) error).
    SwapArgs {
        /// The affected functor.
        functor: String,
    },
    /// Drop the rule at `index` (a missing initiation/termination).
    DropRule {
        /// 0-based index into the task's clause list.
        index: usize,
    },
    /// Append a (typically redundant) condition to the body of one rule.
    AddCondition {
        /// 0-based index of the rule to extend.
        rule_index: usize,
        /// The literal, in concrete syntax.
        literal: String,
    },
    /// Remove the `literal_index`-th body condition of one rule.
    RemoveCondition {
        /// 0-based index of the rule.
        rule_index: usize,
        /// 0-based index of the body literal.
        literal_index: usize,
    },
    /// Categories 2 and 3: replace the task's entire definition with
    /// different source text (wrong fluent kind, undefined dependencies,
    /// structurally different conditions).
    ReplaceDefinition {
        /// The replacement rules, in concrete syntax.
        src: String,
    },
    /// Swap `union_all` and `intersect_all` in every rule of the task
    /// (category 4).
    ConfuseUnionIntersect,
    /// Inject a syntactic defect into the rendering of one rule.
    InjectSyntaxError {
        /// 0-based index of the rule.
        rule_index: usize,
        /// The defect.
        kind: SyntaxErrorKind,
    },
}

/// The outcome of applying a profile to a task's gold rules.
#[derive(Clone, Debug)]
pub struct MutatedRules {
    /// The transformed clauses.
    pub clauses: Vec<Clause>,
    /// Render-time syntax defects, as `(rule index, kind)`.
    pub syntax_errors: Vec<(usize, SyntaxErrorKind)>,
}

/// Applies `mutations` to `clauses` (interning any new names into
/// `symbols`).
pub fn apply_mutations(
    mut clauses: Vec<Clause>,
    symbols: &mut SymbolTable,
    mutations: &[Mutation],
) -> MutatedRules {
    let mut syntax_errors = Vec::new();
    for m in mutations {
        match m {
            Mutation::RenameSymbol { from, to } => {
                if let Some(from_sym) = symbols.get(from) {
                    let to_sym = symbols.intern(to);
                    for c in &mut clauses {
                        c.head = rename(&c.head, from_sym, to_sym);
                        for b in &mut c.body {
                            *b = rename(b, from_sym, to_sym);
                        }
                    }
                }
            }
            Mutation::SwapArgs { functor } => {
                if let Some(f) = symbols.get(functor) {
                    for c in &mut clauses {
                        c.head = swap_args(&c.head, f);
                        for b in &mut c.body {
                            *b = swap_args(b, f);
                        }
                    }
                }
            }
            Mutation::DropRule { index } => {
                if *index < clauses.len() {
                    clauses.remove(*index);
                }
            }
            Mutation::AddCondition {
                rule_index,
                literal,
            } => {
                if let Some(c) = clauses.get_mut(*rule_index) {
                    let lit = parse_term(literal, symbols).expect("profile literal must parse");
                    c.body.push(lit);
                }
            }
            Mutation::RemoveCondition {
                rule_index,
                literal_index,
            } => {
                if let Some(c) = clauses.get_mut(*rule_index) {
                    if *literal_index < c.body.len() {
                        c.body.remove(*literal_index);
                    }
                }
            }
            Mutation::ReplaceDefinition { src } => {
                clauses = parse_program(src, symbols).expect("profile replacement must parse");
            }
            Mutation::ConfuseUnionIntersect => {
                let union = symbols.intern("union_all");
                let intersect = symbols.intern("intersect_all");
                for c in &mut clauses {
                    for b in &mut c.body {
                        *b = swap_functors(b, union, intersect);
                    }
                }
            }
            Mutation::InjectSyntaxError { rule_index, kind } => {
                syntax_errors.push((*rule_index, *kind));
            }
        }
    }
    MutatedRules {
        clauses,
        syntax_errors,
    }
}

/// Renders mutated clauses to concrete syntax, applying the recorded
/// syntax defects.
pub fn render(mutated: &MutatedRules, symbols: &SymbolTable) -> String {
    let mut out = Vec::with_capacity(mutated.clauses.len());
    for (i, c) in mutated.clauses.iter().enumerate() {
        let mut text = c.display(symbols);
        for (idx, kind) in &mutated.syntax_errors {
            if *idx != i {
                continue;
            }
            text = match kind {
                SyntaxErrorKind::MissingPeriod => text.trim_end_matches('.').to_owned(),
                SyntaxErrorKind::UnbalancedParen => match text.rfind(')') {
                    Some(p) => {
                        let mut t = text.clone();
                        t.remove(p);
                        t
                    }
                    None => text,
                },
                SyntaxErrorKind::BadNeck => text.replacen(":-", ":", 1),
            };
        }
        out.push(text);
    }
    out.join("\n")
}

fn rename(t: &Term, from: Symbol, to: Symbol) -> Term {
    match t {
        Term::Atom(s) if *s == from => Term::Atom(to),
        Term::Var(s) if *s == from => Term::Var(to),
        Term::Compound(f, args) => {
            let nf = if *f == from { to } else { *f };
            Term::Compound(nf, args.iter().map(|a| rename(a, from, to)).collect())
        }
        Term::List(items) => Term::List(items.iter().map(|a| rename(a, from, to)).collect()),
        _ => t.clone(),
    }
}

fn swap_args(t: &Term, functor: Symbol) -> Term {
    match t {
        Term::Compound(f, args) => {
            let mut new_args: Vec<Term> = args.iter().map(|a| swap_args(a, functor)).collect();
            if *f == functor && new_args.len() == 2 {
                new_args.swap(0, 1);
            }
            Term::Compound(*f, new_args)
        }
        Term::List(items) => Term::List(items.iter().map(|a| swap_args(a, functor)).collect()),
        _ => t.clone(),
    }
}

fn swap_functors(t: &Term, a: Symbol, b: Symbol) -> Term {
    match t {
        Term::Compound(f, args) => {
            let nf = if *f == a {
                b
            } else if *f == b {
                a
            } else {
                *f
            };
            Term::Compound(nf, args.iter().map(|x| swap_functors(x, a, b)).collect())
        }
        Term::List(items) => Term::List(items.iter().map(|x| swap_functors(x, a, b)).collect()),
        _ => t.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::EventDescription;

    fn setup(src: &str) -> (Vec<Clause>, SymbolTable) {
        let desc = EventDescription::parse(src).unwrap();
        (desc.clauses.clone(), desc.symbols.clone())
    }

    const SRC: &str = "initiatedAt(withinArea(V, AreaType)=true, T) :- \
        happensAt(entersArea(V, A), T), areaType(A, AreaType).\n\
        terminatedAt(withinArea(V, AreaType)=true, T) :- happensAt(gap_start(V), T).";

    #[test]
    fn rename_symbol_rewrites_functors() {
        let (clauses, mut sym) = setup(SRC);
        let m = apply_mutations(
            clauses,
            &mut sym,
            &[Mutation::RenameSymbol {
                from: "entersArea".into(),
                to: "inArea".into(),
            }],
        );
        let text = render(&m, &sym);
        assert!(text.contains("inArea(V, A)"));
        assert!(!text.contains("entersArea"));
    }

    #[test]
    fn swap_args_reverses_binary_predicate() {
        let (clauses, mut sym) = setup(SRC);
        let m = apply_mutations(
            clauses,
            &mut sym,
            &[Mutation::SwapArgs {
                functor: "areaType".into(),
            }],
        );
        let text = render(&m, &sym);
        assert!(text.contains("areaType(AreaType, A)"));
    }

    #[test]
    fn drop_and_add_condition() {
        let (clauses, mut sym) = setup(SRC);
        let m = apply_mutations(
            clauses,
            &mut sym,
            &[
                Mutation::AddCondition {
                    rule_index: 0,
                    literal: "holdsAt(underWay(V)=true, T)".into(),
                },
                Mutation::DropRule { index: 1 },
            ],
        );
        assert_eq!(m.clauses.len(), 1);
        assert_eq!(m.clauses[0].body.len(), 3);
    }

    #[test]
    fn confuse_union_intersect_swaps_both_ways() {
        let (clauses, mut sym) = setup(
            "holdsFor(x(V)=true, I) :- holdsFor(a(V)=true, I1), \
             holdsFor(b(V)=true, I2), union_all([I1, I2], I3), \
             intersect_all([I3], I).",
        );
        let m = apply_mutations(clauses, &mut sym, &[Mutation::ConfuseUnionIntersect]);
        let text = render(&m, &sym);
        assert!(text.contains("intersect_all([I1, I2], I3)"));
        assert!(text.contains("union_all([I3], I)"));
    }

    #[test]
    fn syntax_errors_break_rendering() {
        let (clauses, mut sym) = setup(SRC);
        let m = apply_mutations(
            clauses,
            &mut sym,
            &[Mutation::InjectSyntaxError {
                rule_index: 0,
                kind: SyntaxErrorKind::MissingPeriod,
            }],
        );
        let text = render(&m, &sym);
        // Lenient parsing drops the broken clause but keeps the other.
        let desc = EventDescription::parse_lenient(&text);
        assert!(desc.clauses.len() < 2 || !desc.parse_errors.is_empty());
    }

    #[test]
    fn replace_definition_swaps_everything() {
        let (clauses, mut sym) = setup(SRC);
        let m = apply_mutations(
            clauses,
            &mut sym,
            &[Mutation::ReplaceDefinition {
                src: "holdsFor(withinArea(V, K)=true, I) :- \
                      holdsFor(phantom(V)=true, I1), union_all([I1], I)."
                    .into(),
            }],
        );
        assert_eq!(m.clauses.len(), 1);
        let text = render(&m, &sym);
        assert!(text.contains("phantom"));
    }

    #[test]
    fn rename_unknown_symbol_is_noop() {
        let (clauses, mut sym) = setup(SRC);
        let before = clauses.clone();
        let m = apply_mutations(
            clauses,
            &mut sym,
            &[Mutation::RenameSymbol {
                from: "nonexistent".into(),
                to: "whatever".into(),
            }],
        );
        assert_eq!(m.clauses, before);
    }
}
