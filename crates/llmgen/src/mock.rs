//! Deterministic simulated language models.
//!
//! A [`MockLlm`] follows the same conversational protocol as a real model
//! behind the OpenAI/Groq APIs: it acknowledges the teaching prompts (R,
//! F*/F, E, T), detects which prompting scheme it is being taught with
//! from the F prompt's content, and answers each G prompt with an activity
//! definition — the gold rules passed through the model's error profile
//! ([`crate::profiles`]), wrapped in model-typical prose and code fences.
//! Everything downstream (extraction, lenient parsing, validation,
//! similarity scoring, correction, recognition) therefore exercises the
//! same code paths as it would with live API output.

use crate::errors::{apply_mutations, render};
use crate::profiles::{profile, Model, PromptScheme};
use crate::provider::LanguageModel;
use crate::tasks::{generation_tasks, GenerationTask};
use maritime::gold::{clauses_for_fluents, gold_event_description};
use rtec::EventDescription;

/// A deterministic simulated LLM.
pub struct MockLlm {
    model: Model,
    scheme: PromptScheme,
    gold: EventDescription,
    tasks: Vec<GenerationTask>,
    prompts_seen: usize,
}

impl MockLlm {
    /// Creates the simulated model. The prompting scheme defaults to
    /// few-shot until an F prompt reveals which one the session uses.
    pub fn new(model: Model) -> MockLlm {
        MockLlm {
            model,
            scheme: PromptScheme::FewShot,
            gold: gold_event_description(),
            tasks: generation_tasks(),
            prompts_seen: 0,
        }
    }

    /// The underlying model id.
    pub fn model(&self) -> Model {
        self.model
    }

    fn answer_generation(&self, task: &GenerationTask) -> String {
        let clauses: Vec<_> = clauses_for_fluents(&self.gold, &[&task.fluent])
            .into_iter()
            .cloned()
            .collect();
        let mut symbols = self.gold.symbols.clone();
        let profile = profile(self.model, self.scheme);
        let empty = Vec::new();
        let mutations = profile.get(&task.key).unwrap_or(&empty);
        let mutated = apply_mutations(clauses, &mut symbols, mutations);
        let rules = render(&mutated, &symbols);
        self.wrap(task, &rules)
    }

    /// Wraps raw rules in model-typical prose so the pipeline's extraction
    /// step has something realistic to strip.
    fn wrap(&self, task: &GenerationTask, rules: &str) -> String {
        match self.model {
            Model::O1 => format!(
                "The activity '{}' is formalised in RTEC as follows.\n\n{rules}\n",
                task.fluent
            ),
            Model::Gpt4o | Model::Gpt4 => format!(
                "Here is the RTEC formalisation of '{}'. We express the initiation and \
                 termination conditions (or the interval combination) as discussed.\n\n\
                 ```prolog\n{rules}\n```\n\nLet me know if you need further refinements.",
                task.fluent
            ),
            Model::Llama3 => format!(
                "Sure! Here are the rules for '{}':\n\n```\n{rules}\n```",
                task.fluent
            ),
            Model::Mistral => format!(
                "The composite activity '{}' can be defined as:\n\n{rules}",
                task.fluent
            ),
            Model::Gemma2 => format!(
                "Let's define '{}'.\n\n```prolog\n{rules}\n```\n\
                 This captures the described behaviour.",
                task.fluent
            ),
        }
    }
}

impl LanguageModel for MockLlm {
    fn name(&self) -> String {
        self.model.display_name().to_owned()
    }

    fn complete(&mut self, prompt: &str) -> String {
        self.prompts_seen += 1;
        // Prompt F reveals the scheme: the chain-of-thought variant
        // contains the worked "Answer:" explanations.
        if prompt.contains("two ways in which a composite activity may be defined") {
            self.scheme = if prompt.contains("Answer:") {
                PromptScheme::ChainOfThought
            } else {
                PromptScheme::FewShot
            };
            return "Understood: composite activities are defined either as simple fluents \
                    or as statically determined fluents."
                .to_owned();
        }
        // Prompt G carries the activity marker.
        if let Some(rest) = prompt
            .split("Maritime Composite Activity Description - ")
            .nth(1)
        {
            let fluent = rest.split(':').next().unwrap_or("").trim().to_owned();
            if let Some(task) = self.tasks.iter().find(|t| t.fluent == fluent) {
                let task = task.clone();
                return self.answer_generation(&task);
            }
            return format!("I do not know the activity '{fluent}'.");
        }
        "Understood.".to_owned()
    }

    fn reset(&mut self) {
        self.scheme = PromptScheme::FewShot;
        self.prompts_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts;

    #[test]
    fn detects_scheme_from_prompt_f() {
        let mut m = MockLlm::new(Model::O1);
        m.complete(&prompts::prompt_f(PromptScheme::ChainOfThought));
        assert_eq!(m.scheme, PromptScheme::ChainOfThought);
        m.complete(&prompts::prompt_f(PromptScheme::FewShot));
        assert_eq!(m.scheme, PromptScheme::FewShot);
    }

    #[test]
    fn answers_generation_prompt_with_rules() {
        let mut m = MockLlm::new(Model::O1);
        let tasks = generation_tasks();
        let g = prompts::prompt_g(&tasks[1]); // withinArea
        let reply = m.complete(&g);
        assert!(reply.contains("initiatedAt(withinArea"));
    }

    #[test]
    fn o1_renames_fishing_constant_in_trawl_speed() {
        let mut m = MockLlm::new(Model::O1);
        let tasks = generation_tasks();
        let trawl_speed = tasks.iter().find(|t| t.key == "trawlSpeed").unwrap();
        let reply = m.complete(&prompts::prompt_g(trawl_speed));
        assert!(reply.contains("trawlingArea"), "{reply}");
    }

    #[test]
    fn gemma_produces_simple_fluent_trawling() {
        let mut m = MockLlm::new(Model::Gemma2);
        let tasks = generation_tasks();
        let tr = tasks.iter().find(|t| t.key == "tr").unwrap();
        let reply = m.complete(&prompts::prompt_g(tr));
        assert!(reply.contains("initiatedAt(trawling"));
        assert!(!reply.contains("holdsFor(trawling"));
    }

    #[test]
    fn unknown_activity_is_declined() {
        let mut m = MockLlm::new(Model::Mistral);
        let reply =
            m.complete("... Maritime Composite Activity Description - teleporting: beam up.");
        assert!(reply.contains("do not know"));
    }
}
