//! The language-model abstraction.
//!
//! The generation pipeline talks to any model through [`LanguageModel`]:
//! a stateful chat where each prompt of Section 3 (R, F*/F, E, T, G...) is
//! sent in order and the reply to each G prompt is expected to contain an
//! activity definition. Production deployments would implement this trait
//! over the OpenAI/Groq HTTP APIs; this repository ships deterministic
//! simulated models ([`crate::mock`]).

/// A conversational language model.
pub trait LanguageModel {
    /// A short identifier, e.g. `"o1"` or `"GPT-4o"`.
    fn name(&self) -> String;

    /// Sends one prompt and returns the model's reply. Implementations are
    /// stateful: earlier prompts of the session are context for later ones
    /// (the pipeline always replays prompts in the paper's order).
    fn complete(&mut self, prompt: &str) -> String;

    /// Resets the conversation state.
    fn reset(&mut self);
}

/// A trivial model for tests: echoes a canned reply for every prompt.
#[derive(Debug, Clone)]
pub struct CannedModel {
    /// The reply returned for every prompt.
    pub reply: String,
    /// Number of prompts received.
    pub prompts_seen: usize,
}

impl CannedModel {
    /// Creates a canned model.
    pub fn new(reply: impl Into<String>) -> CannedModel {
        CannedModel {
            reply: reply.into(),
            prompts_seen: 0,
        }
    }
}

impl LanguageModel for CannedModel {
    fn name(&self) -> String {
        "canned".to_owned()
    }

    fn complete(&mut self, _prompt: &str) -> String {
        self.prompts_seen += 1;
        self.reply.clone()
    }

    fn reset(&mut self) {
        self.prompts_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_model_counts_prompts() {
        let mut m = CannedModel::new("ok");
        assert_eq!(m.complete("a"), "ok");
        assert_eq!(m.complete("b"), "ok");
        assert_eq!(m.prompts_seen, 2);
        m.reset();
        assert_eq!(m.prompts_seen, 0);
    }
}
