//! The language-model abstraction.
//!
//! The generation pipeline talks to any model through [`LanguageModel`]:
//! a stateful chat where each prompt of Section 3 (R, F*/F, E, T, G...) is
//! sent in order and the reply to each G prompt is expected to contain an
//! activity definition. Production deployments would implement this trait
//! over the OpenAI/Groq HTTP APIs; this repository ships deterministic
//! simulated models ([`crate::mock`]).
//!
//! Real APIs fail: rate limits, connection resets, slow responses. The
//! fallible path is [`LanguageModel::try_complete`] plus the
//! [`RetryingModel`] decorator, which absorbs [`ModelError::Transient`]
//! and timeout failures with bounded, deterministically-jittered
//! exponential backoff. [`FlakyModel`] injects failures for tests.

use std::fmt;

/// Why a model call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// Transient failure worth retrying: rate limit, reset connection,
    /// 5xx from the API gateway.
    Transient(String),
    /// The per-call time budget was exceeded (reported by the clock hook
    /// of [`RetryingModel`]; retried like a transient failure).
    Timeout {
        /// Observed duration of the call, milliseconds.
        elapsed_ms: u64,
        /// The configured budget, milliseconds.
        budget_ms: u64,
    },
    /// Terminal failure: invalid credentials, unknown model, content
    /// refusal. Retrying cannot help and the decorator gives up at once.
    Fatal(String),
}

impl ModelError {
    /// Whether a retry might succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ModelError::Fatal(_))
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Transient(m) => write!(f, "transient: {m}"),
            ModelError::Timeout {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "timeout: call took {elapsed_ms}ms (budget {budget_ms}ms)"
            ),
            ModelError::Fatal(m) => write!(f, "fatal: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A conversational language model.
pub trait LanguageModel {
    /// A short identifier, e.g. `"o1"` or `"GPT-4o"`.
    fn name(&self) -> String;

    /// Sends one prompt and returns the model's reply. Implementations are
    /// stateful: earlier prompts of the session are context for later ones
    /// (the pipeline always replays prompts in the paper's order).
    fn complete(&mut self, prompt: &str) -> String;

    /// Resets the conversation state.
    fn reset(&mut self);

    /// Fallible variant of [`complete`](LanguageModel::complete).
    ///
    /// The default forwards to the infallible path (the simulated models
    /// never fail); HTTP-backed providers and fault-injecting mocks
    /// override this, and the pipeline calls it so failures surface as
    /// values instead of panics.
    fn try_complete(&mut self, prompt: &str) -> Result<String, ModelError> {
        Ok(self.complete(prompt))
    }

    /// Transient failures absorbed so far on behalf of the caller
    /// (by [`RetryingModel`] or a provider's internal retry loop).
    /// Recorded in the generation run report.
    fn retries(&self) -> u64 {
        0
    }
}

/// A trivial model for tests: echoes a canned reply for every prompt.
#[derive(Debug, Clone)]
pub struct CannedModel {
    /// The reply returned for every prompt.
    pub reply: String,
    /// Number of prompts received.
    pub prompts_seen: usize,
}

impl CannedModel {
    /// Creates a canned model.
    pub fn new(reply: impl Into<String>) -> CannedModel {
        CannedModel {
            reply: reply.into(),
            prompts_seen: 0,
        }
    }
}

impl LanguageModel for CannedModel {
    fn name(&self) -> String {
        "canned".to_owned()
    }

    fn complete(&mut self, _prompt: &str) -> String {
        self.prompts_seen += 1;
        self.reply.clone()
    }

    fn reset(&mut self) {
        self.prompts_seen = 0;
    }
}

/// Retry behaviour of [`RetryingModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per call, including the first (so `3` = one call plus up
    /// to two retries). Must be at least 1.
    pub max_attempts: u32,
    /// Backoff cap before the first retry, milliseconds; doubles per
    /// further retry.
    pub base_backoff_ms: u64,
    /// Upper bound on any single backoff, milliseconds.
    pub max_backoff_ms: u64,
    /// Seed of the deterministic backoff jitter. Two decorators with the
    /// same seed produce the same backoff schedule.
    pub seed: u64,
    /// Per-call time budget, milliseconds. `None` disables the timeout
    /// check (also the effective behaviour under the default zero clock).
    pub timeout_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 5_000,
            seed: 0x5eed_1e77,
            timeout_ms: None,
        }
    }
}

/// Decorator that retries transient failures of an inner model.
///
/// Backoff is exponential with deterministic jitter drawn from a seeded
/// xorshift generator, so a run report (and a test) can pin the exact
/// schedule. Side effects are injectable: the *sleeper* receives each
/// backoff in milliseconds (default: no-op, so tests never sleep) and
/// the *clock* supplies monotonic milliseconds for the per-call timeout
/// check (default: constant zero, so timeouts never fire unless a real
/// clock is plugged in).
pub struct RetryingModel<M> {
    inner: M,
    policy: RetryPolicy,
    rng: u64,
    retries: u64,
    backoffs: Vec<u64>,
    sleeper: Box<dyn FnMut(u64) + Send>,
    clock: Box<dyn FnMut() -> u64 + Send>,
}

impl<M: LanguageModel> RetryingModel<M> {
    /// Wraps `inner` with the default policy.
    pub fn new(inner: M) -> RetryingModel<M> {
        RetryingModel::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy.
    pub fn with_policy(inner: M, policy: RetryPolicy) -> RetryingModel<M> {
        RetryingModel {
            inner,
            policy,
            rng: policy.seed.max(1),
            retries: 0,
            backoffs: Vec::new(),
            sleeper: Box::new(|_ms| {}),
            clock: Box::new(|| 0),
        }
    }

    /// Installs the sleeper called with each backoff (milliseconds).
    /// Deployments pass `std::thread::sleep`; tests capture the schedule.
    pub fn with_sleeper(mut self, sleeper: impl FnMut(u64) + Send + 'static) -> RetryingModel<M> {
        self.sleeper = Box::new(sleeper);
        self
    }

    /// Installs the monotonic-milliseconds clock consulted around every
    /// attempt for the `timeout_ms` budget.
    pub fn with_clock(mut self, clock: impl FnMut() -> u64 + Send + 'static) -> RetryingModel<M> {
        self.clock = Box::new(clock);
        self
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Every backoff issued so far, in milliseconds, oldest first.
    pub fn backoffs(&self) -> &[u64] {
        &self.backoffs
    }

    /// Deterministic jittered exponential backoff for retry number
    /// `retry` (1-based): uniform in `[cap/2, cap]` where `cap` doubles
    /// per retry from `base_backoff_ms` up to `max_backoff_ms`.
    fn next_backoff(&mut self, retry: u32) -> u64 {
        // xorshift64: cheap, seedable, good enough for jitter.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let cap = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << (retry - 1).min(20))
            .min(self.policy.max_backoff_ms)
            .max(1);
        cap / 2 + self.rng % (cap - cap / 2 + 1)
    }
}

impl<M: LanguageModel> LanguageModel for RetryingModel<M> {
    fn name(&self) -> String {
        self.inner.name()
    }

    /// Infallible path; panics when the bounded retries are exhausted or
    /// the inner model fails terminally. Callers that must not panic use
    /// [`try_complete`](LanguageModel::try_complete).
    fn complete(&mut self, prompt: &str) -> String {
        let name = self.name();
        self.try_complete(prompt)
            .unwrap_or_else(|e| panic!("model '{name}' failed after bounded retries: {e}"))
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn try_complete(&mut self, prompt: &str) -> Result<String, ModelError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last = None;
        for attempt in 1..=attempts {
            let started = (self.clock)();
            let result = self.inner.try_complete(prompt);
            let elapsed = (self.clock)().saturating_sub(started);
            let result = match (result, self.policy.timeout_ms) {
                (Ok(_), Some(budget)) if elapsed > budget => Err(ModelError::Timeout {
                    elapsed_ms: elapsed,
                    budget_ms: budget,
                }),
                (other, _) => other,
            };
            match result {
                Ok(reply) => return Ok(reply),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) => {
                    last = Some(e);
                    if attempt < attempts {
                        self.retries += 1;
                        let backoff = self.next_backoff(attempt);
                        self.backoffs.push(backoff);
                        (self.sleeper)(backoff);
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| ModelError::Transient("no attempts made".into())))
    }

    fn retries(&self) -> u64 {
        self.retries + self.inner.retries()
    }
}

/// Fault-injecting decorator for tests: the first `n` calls fail with
/// [`ModelError::Transient`], every later call reaches the inner model.
/// [`reset`](LanguageModel::reset) re-arms the failures.
#[derive(Debug, Clone)]
pub struct FlakyModel<M> {
    inner: M,
    initial_failures: u32,
    remaining_failures: u32,
    /// Calls received (failing and succeeding alike).
    pub calls: u64,
    /// Failures injected so far.
    pub failures_emitted: u64,
}

impl<M: LanguageModel> FlakyModel<M> {
    /// Wraps `inner`; the first `failures` calls fail.
    pub fn new(inner: M, failures: u32) -> FlakyModel<M> {
        FlakyModel {
            inner,
            initial_failures: failures,
            remaining_failures: failures,
            calls: 0,
            failures_emitted: 0,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: LanguageModel> LanguageModel for FlakyModel<M> {
    fn name(&self) -> String {
        self.inner.name()
    }

    /// Infallible path; panics while failures remain. Pair with
    /// [`RetryingModel`] (or call
    /// [`try_complete`](LanguageModel::try_complete)) instead.
    fn complete(&mut self, prompt: &str) -> String {
        let name = self.name();
        self.try_complete(prompt)
            .unwrap_or_else(|e| panic!("FlakyModel '{name}' still failing: {e}"))
    }

    fn reset(&mut self) {
        self.remaining_failures = self.initial_failures;
        self.calls = 0;
        self.failures_emitted = 0;
        self.inner.reset();
    }

    fn try_complete(&mut self, prompt: &str) -> Result<String, ModelError> {
        self.calls += 1;
        if self.remaining_failures > 0 {
            self.remaining_failures -= 1;
            self.failures_emitted += 1;
            return Err(ModelError::Transient(format!(
                "injected failure {} of {}",
                self.failures_emitted, self.initial_failures
            )));
        }
        self.inner.try_complete(prompt)
    }

    fn retries(&self) -> u64 {
        self.inner.retries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn canned_model_counts_prompts() {
        let mut m = CannedModel::new("ok");
        assert_eq!(m.complete("a"), "ok");
        assert_eq!(m.complete("b"), "ok");
        assert_eq!(m.prompts_seen, 2);
        m.reset();
        assert_eq!(m.prompts_seen, 0);
    }

    #[test]
    fn try_complete_defaults_to_infallible_path() {
        let mut m = CannedModel::new("ok");
        assert_eq!(m.try_complete("a").unwrap(), "ok");
        assert_eq!(m.retries(), 0);
    }

    #[test]
    fn flaky_fails_n_times_then_succeeds() {
        let mut m = FlakyModel::new(CannedModel::new("ok"), 2);
        assert!(matches!(m.try_complete("a"), Err(ModelError::Transient(_))));
        assert!(m.try_complete("a").is_err());
        assert_eq!(m.try_complete("a").unwrap(), "ok");
        assert_eq!(m.calls, 3);
        assert_eq!(m.failures_emitted, 2);
        // reset() re-arms the injected failures.
        m.reset();
        assert!(m.try_complete("a").is_err());
    }

    #[test]
    fn retrying_absorbs_transient_failures() {
        let flaky = FlakyModel::new(CannedModel::new("ok"), 2);
        let mut m = RetryingModel::new(flaky);
        assert_eq!(m.try_complete("a").unwrap(), "ok");
        assert_eq!(m.retries(), 2);
        assert_eq!(m.backoffs().len(), 2);
        // Within a bounded-exponential envelope: first retry in
        // [base/2, base], second in [base, 2*base].
        assert!((50..=100).contains(&m.backoffs()[0]), "{:?}", m.backoffs());
        assert!((100..=200).contains(&m.backoffs()[1]), "{:?}", m.backoffs());
    }

    #[test]
    fn retrying_gives_up_after_bounded_attempts() {
        let flaky = FlakyModel::new(CannedModel::new("ok"), 10);
        let mut m = RetryingModel::with_policy(
            flaky,
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        );
        assert!(m.try_complete("a").is_err());
        assert_eq!(m.retries(), 2, "attempts - 1 retries");
        assert_eq!(m.inner().calls, 3);
    }

    #[test]
    fn retrying_backoff_schedule_is_deterministic() {
        let schedule = |seed: u64| {
            let flaky = FlakyModel::new(CannedModel::new("ok"), 3);
            let mut m = RetryingModel::with_policy(
                flaky,
                RetryPolicy {
                    max_attempts: 4,
                    seed,
                    ..RetryPolicy::default()
                },
            );
            m.try_complete("a").unwrap();
            m.backoffs().to_vec()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "seed drives the jitter");
    }

    #[test]
    fn retrying_sleeper_sees_every_backoff() {
        let slept = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&slept);
        let flaky = FlakyModel::new(CannedModel::new("ok"), 2);
        let mut m = RetryingModel::new(flaky).with_sleeper(move |ms| {
            seen.fetch_add(ms, Ordering::Relaxed);
        });
        m.try_complete("a").unwrap();
        assert_eq!(
            slept.load(Ordering::Relaxed),
            m.backoffs().iter().sum::<u64>()
        );
    }

    #[test]
    fn retrying_timeout_hook_converts_slow_replies() {
        // A clock advancing 500ms per reading: every attempt appears to
        // take 500ms against a 100ms budget, so the call exhausts its
        // attempts with Timeout errors.
        let t = Arc::new(AtomicU64::new(0));
        let tick = Arc::clone(&t);
        let mut m = RetryingModel::with_policy(
            CannedModel::new("ok"),
            RetryPolicy {
                max_attempts: 2,
                timeout_ms: Some(100),
                ..RetryPolicy::default()
            },
        )
        .with_clock(move || tick.fetch_add(500, Ordering::Relaxed));
        match m.try_complete("a") {
            Err(ModelError::Timeout {
                elapsed_ms,
                budget_ms,
            }) => {
                assert_eq!(elapsed_ms, 500);
                assert_eq!(budget_ms, 100);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(m.retries(), 1);
    }

    #[test]
    fn retrying_does_not_retry_fatal_errors() {
        struct Doomed;
        impl LanguageModel for Doomed {
            fn name(&self) -> String {
                "doomed".into()
            }
            fn complete(&mut self, _p: &str) -> String {
                unreachable!()
            }
            fn reset(&mut self) {}
            fn try_complete(&mut self, _p: &str) -> Result<String, ModelError> {
                Err(ModelError::Fatal("bad credentials".into()))
            }
        }
        let mut m = RetryingModel::new(Doomed);
        assert_eq!(
            m.try_complete("a"),
            Err(ModelError::Fatal("bad credentials".into()))
        );
        assert_eq!(m.retries(), 0, "fatal errors are not retried");
    }

    #[test]
    fn error_display_is_reason_coded() {
        assert_eq!(
            ModelError::Transient("429".into()).to_string(),
            "transient: 429"
        );
        assert!(ModelError::Timeout {
            elapsed_ms: 7,
            budget_ms: 5
        }
        .to_string()
        .contains("budget 5ms"));
        assert!(!ModelError::Fatal("x".into()).is_retryable());
    }
}
