//! Per-model error profiles.
//!
//! Each simulated model applies a fixed, deterministic set of
//! [`Mutation`]s to the gold rules of each generation task. The profiles
//! are calibrated against the paper's Figure 2 and its qualitative error
//! assessment (Section 5.2):
//!
//! * **o1 (few-shot best)** — near-gold output; constant naming
//!   divergences (`trawlingArea` for `fishing`, as in the paper's
//!   correction example) and one redundant condition in `trawling`;
//! * **GPT-4o (chain-of-thought best)** — good output, but `movingSpeed`
//!   expressed as a statically determined fluent over undefined helpers
//!   (wrong fluent kind, the paper's explicit example), `loitering` with
//!   `intersect_all` in place of `union_all` (operator confusion, again
//!   the paper's example), and a weakened pilot-boarding definition;
//! * **Llama-3 (few-shot best)** — operator confusion in `loitering`, a
//!   dropped termination in `drifting`, a weaker `pilotOps`, naming
//!   divergences;
//! * **GPT-4 (few-shot best)** — mediocre: a `trawling` definition whose
//!   conditions match none of the gold ones, missing branches, undefined
//!   dependencies;
//! * **Mistral (chain-of-thought best)** — mediocre-to-poor: mismatched
//!   `trawling`, syntax errors, argument swaps;
//! * **Gemma-2 (chain-of-thought best)** — poor: `trawling` expressed as
//!   a *simple* fluent (similarity exactly 0 against the statically
//!   determined gold definition, as reported), syntax errors, undefined
//!   dependencies.
//!
//! The non-preferred prompting scheme of each model receives the same
//! profile plus additional degradation, so the best-scheme selection of
//! Figure 2a reproduces the paper's markers.

use crate::errors::{Mutation, SyntaxErrorKind};
use std::collections::HashMap;

/// The six models of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// OpenAI GPT-4.
    Gpt4,
    /// OpenAI GPT-4o.
    Gpt4o,
    /// OpenAI o1.
    O1,
    /// Meta Llama-3 (via Groq).
    Llama3,
    /// Mistral (via Groq).
    Mistral,
    /// Google Gemma-2 (via Groq).
    Gemma2,
}

impl Model {
    /// All models, in the paper's legend order.
    pub const ALL: [Model; 6] = [
        Model::Gpt4,
        Model::Gpt4o,
        Model::O1,
        Model::Llama3,
        Model::Mistral,
        Model::Gemma2,
    ];

    /// Display name as in the paper.
    pub fn display_name(self) -> &'static str {
        match self {
            Model::Gpt4 => "GPT-4",
            Model::Gpt4o => "GPT-4o",
            Model::O1 => "o1",
            Model::Llama3 => "Llama-3",
            Model::Mistral => "Mistral",
            Model::Gemma2 => "Gemma-2",
        }
    }

    /// The prompting scheme that works best for this model (the marker
    /// reported in Figure 2a).
    pub fn best_scheme(self) -> PromptScheme {
        match self {
            Model::Gpt4 => PromptScheme::FewShot,
            Model::Gpt4o => PromptScheme::ChainOfThought,
            Model::O1 => PromptScheme::FewShot,
            Model::Llama3 => PromptScheme::FewShot,
            Model::Mistral => PromptScheme::ChainOfThought,
            Model::Gemma2 => PromptScheme::ChainOfThought,
        }
    }
}

/// The two prompting schemes of Section 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PromptScheme {
    /// Prompt F*: examples without explanations.
    FewShot,
    /// Prompt F: examples with step-by-step explanations.
    ChainOfThought,
}

impl PromptScheme {
    /// The paper's marker: `□` for few-shot, `△` for chain-of-thought.
    pub fn marker(self) -> &'static str {
        match self {
            PromptScheme::FewShot => "\u{25a1}",
            PromptScheme::ChainOfThought => "\u{25b3}",
        }
    }

    /// The filled marker used after syntactic correction (`■`/`▲`).
    pub fn filled_marker(self) -> &'static str {
        match self {
            PromptScheme::FewShot => "\u{25a0}",
            PromptScheme::ChainOfThought => "\u{25b2}",
        }
    }
}

/// The error profile of one `(model, scheme)` pair: mutations per task
/// key.
pub type Profile = HashMap<String, Vec<Mutation>>;

fn rename(from: &str, to: &str) -> Mutation {
    Mutation::RenameSymbol {
        from: from.into(),
        to: to.into(),
    }
}

fn replace(src: &str) -> Mutation {
    Mutation::ReplaceDefinition { src: src.into() }
}

/// Builds the profile for a model/scheme pair.
pub fn profile(model: Model, scheme: PromptScheme) -> Profile {
    let mut p: Profile = HashMap::new();
    let mut add = |key: &str, ms: Vec<Mutation>| {
        p.entry(key.to_owned()).or_default().extend(ms);
    };

    match model {
        Model::O1 => {
            // Constant naming divergence, fixed during correction
            // (the paper's example: rename 'trawlingArea' to 'fishing').
            add("trawlSpeed", vec![rename("fishing", "trawlingArea")]);
            add("trawlingMovement", vec![rename("fishing", "trawlingArea")]);
            // Threshold naming divergence.
            add("h", vec![rename("hcNearCoastMax", "maxCoastalSpeed")]);
            // Redundant (but semantically harmless) conditions.
            add(
                "tr",
                vec![Mutation::AddCondition {
                    rule_index: 0,
                    literal: "holdsFor(underWay(Vessel)=true, Iu)".into(),
                }],
            );
            add(
                "s",
                vec![Mutation::AddCondition {
                    rule_index: 0,
                    literal: "holdsFor(underWay(Vessel)=true, Iu)".into(),
                }],
            );
            add(
                "d",
                vec![Mutation::AddCondition {
                    rule_index: 0,
                    literal: "holdsAt(underWay(Vessel)=true, T)".into(),
                }],
            );
        }
        Model::Gpt4o => {
            // Wrong fluent kind for movingSpeed (paper, Section 5.2):
            // statically determined over undefined helper fluents.
            add(
                "movingSpeed",
                vec![replace(
                    "holdsFor(movingSpeed(Vessel)=below, I) :- \
                       holdsFor(speedBelowService(Vessel)=true, I1), union_all([I1], I).\n\
                     holdsFor(movingSpeed(Vessel)=normal, I) :- \
                       holdsFor(speedWithinService(Vessel)=true, I1), union_all([I1], I).\n\
                     holdsFor(movingSpeed(Vessel)=above, I) :- \
                       holdsFor(speedAboveService(Vessel)=true, I1), union_all([I1], I).",
                )],
            );
            // Operator confusion in loitering (paper, Section 5.2):
            // conjunction of mutually exclusive activities.
            add("l", vec![Mutation::ConfuseUnionIntersect]);
            // Weakened pilot boarding: the boarded vessel must be at low
            // speed (its stopped periods are ignored).
            add(
                "p",
                vec![replace(
                    "holdsFor(pilotOps(Vessel1, Vessel2)=true, I) :- \
                       holdsFor(proximity(Vessel1, Vessel2)=true, Ip), \
                       vesselType(Vessel1, pilotVessel), \
                       holdsFor(lowSpeed(Vessel1)=true, Il1), \
                       holdsFor(stopped(Vessel1)=farFromPorts, Is1), \
                       union_all([Il1, Is1], Ia), \
                       holdsFor(lowSpeed(Vessel2)=true, Il2), \
                       intersect_all([Ip, Ia, Il2], I).",
                )],
            );
            // One redundant condition in trawling (as the paper notes for
            // the high-similarity trawling definitions).
            add(
                "tr",
                vec![Mutation::AddCondition {
                    rule_index: 0,
                    literal: "holdsFor(underWay(Vessel)=true, Iu)".into(),
                }],
            );
            // A redundant condition in anchoredOrMoored.
            add(
                "aM",
                vec![Mutation::AddCondition {
                    rule_index: 0,
                    literal: "holdsFor(underWay(Vessel)=true, Iu)".into(),
                }],
            );
            // Naming divergences, fixed during correction.
            add("withinArea", vec![rename("entersArea", "inArea")]);
            add("h", vec![rename("hcNearCoastMax", "coastMaxSpeed")]);
            add(
                "tuggingSpeed",
                vec![
                    rename("tuggingMin", "towingMin"),
                    rename("tuggingMax", "towingMax"),
                ],
            );
        }
        Model::Llama3 => {
            add("l", vec![Mutation::ConfuseUnionIntersect]);
            // Dropped velocity-based termination: drifting over-extends.
            add("d", vec![Mutation::DropRule { index: 1 }]);
            // Pilot boarding against the wrong stopped value: the boarded
            // vessel is required to be stopped near a port.
            add(
                "p",
                vec![replace(
                    "holdsFor(pilotOps(Vessel1, Vessel2)=true, I) :- \
                       holdsFor(proximity(Vessel1, Vessel2)=true, Ip), \
                       vesselType(Vessel1, pilotVessel), \
                       holdsFor(lowSpeed(Vessel1)=true, Il1), \
                       holdsFor(stopped(Vessel1)=farFromPorts, Is1), \
                       union_all([Il1, Is1], Ia), \
                       holdsFor(lowSpeed(Vessel2)=true, Il2), \
                       holdsFor(stopped(Vessel2)=nearPorts, Is2), \
                       union_all([Il2, Is2], Ib), \
                       intersect_all([Ip, Ia, Ib], I).",
                )],
            );
            // A redundant condition in trawling.
            add(
                "tr",
                vec![Mutation::AddCondition {
                    rule_index: 0,
                    literal: "holdsFor(underWay(Vessel)=true, Iu)".into(),
                }],
            );
            // Event naming divergence, fixed during correction.
            add(
                "trawlingMovement",
                vec![rename("change_in_heading", "changeInHeading")],
            );
            add(
                "sarMovement",
                vec![rename("change_in_heading", "changeInHeading")],
            );
        }
        Model::Gpt4 => {
            // Trawling with a different head arity, conditions matching
            // none of the gold ones, and two spurious simple-fluent rules
            // on top of the holdsFor definition (mixed fluent kind).
            add(
                "tr",
                vec![replace(
                    "holdsFor(trawling(Vessel, AreaId)=true, I) :- \
                       holdsFor(withinArea(Vessel, fishing)=true, Iw), \
                       holdsFor(changingSpeed(Vessel)=true, Ic), \
                       holdsFor(fishingOperation(Vessel)=true, If), \
                       holdsFor(underWay(Vessel)=true, Iu), \
                       intersect_all([Iw, Ic, If, Iu], I).\n\
                     initiatedAt(trawling(Vessel, AreaId)=true, T) :- \
                       happensAt(entersArea(Vessel, AreaId), T), \
                       areaType(AreaId, fishing).\n\
                     terminatedAt(trawling(Vessel, AreaId)=true, T) :- \
                       happensAt(leavesArea(Vessel, AreaId), T).",
                )],
            );
            // anchoredOrMoored without the moored-near-port branch.
            add(
                "aM",
                vec![replace(
                    "holdsFor(anchoredOrMoored(Vessel)=true, I) :- \
                       holdsFor(stopped(Vessel)=farFromPorts, Isf), \
                       holdsFor(withinArea(Vessel, anchorage)=true, Ia), \
                       intersect_all([Isf, Ia], I).",
                )],
            );
            // Undefined dependency in pilot boarding.
            add(
                "p",
                vec![replace(
                    "holdsFor(pilotOps(Vessel1, Vessel2)=true, I) :- \
                       holdsFor(proximity(Vessel1, Vessel2)=true, Ip), \
                       holdsFor(pilotBoardingReady(Vessel2)=true, Ir), \
                       intersect_all([Ip, Ir], I).",
                )],
            );
            // Naming divergences and a dropped termination.
            add(
                "h",
                vec![
                    rename("hcNearCoastMax", "coastalSpeedLimit"),
                    Mutation::DropRule { index: 2 },
                ],
            );
            // A two-rule search-and-rescue definition over an undefined
            // helper.
            add(
                "s",
                vec![replace(
                    "holdsFor(sar(Vessel)=true, I) :- \
                       holdsFor(searchPattern(Vessel)=true, Isp), \
                       union_all([Isp], I).\n\
                     initiatedAt(searchPattern(Vessel)=true, T) :- \
                       happensAt(change_in_heading(Vessel), T).",
                )],
            );
            add("d", vec![rename("adriftAngThr", "driftAngle")]);
            add(
                "tu",
                vec![
                    rename("proximity", "closeTo"),
                    Mutation::AddCondition {
                        rule_index: 0,
                        literal: "holdsFor(underWay(Vessel1)=true, Iu)".into(),
                    },
                ],
            );
            add(
                "l",
                vec![Mutation::AddCondition {
                    rule_index: 0,
                    literal: "holdsFor(changingSpeed(Vessel)=true, Ix)".into(),
                }],
            );
        }
        Model::Mistral => {
            add(
                "tr",
                vec![replace(
                    "holdsFor(trawling(Vessel, Area)=true, I) :- \
                       holdsFor(fishingMovement(Vessel, Area)=true, If), \
                       holdsFor(slowSailing(Vessel)=true, Isl), \
                       intersect_all([If, Isl], I).\n\
                     initiatedAt(fishingMode(Vessel)=true, T) :- \
                       happensAt(change_in_speed_start(Vessel), T).",
                )],
            );
            add(
                "tu",
                vec![
                    rename("tuggingSpeed", "towSpeed"),
                    Mutation::InjectSyntaxError {
                        rule_index: 0,
                        kind: SyntaxErrorKind::MissingPeriod,
                    },
                ],
            );
            add(
                "sarSpeed",
                vec![
                    Mutation::SwapArgs {
                        functor: "thresholds".into(),
                    },
                    Mutation::DropRule { index: 1 },
                ],
            );
            add(
                "s",
                vec![replace(
                    "holdsFor(sar(Vessel)=true, I) :- \
                       holdsFor(rescueOperation(Vessel)=true, Ir), \
                       union_all([Ir], I).\n\
                     initiatedAt(rescuePhase(Vessel)=true, T) :- \
                       happensAt(stop_end(Vessel), T).",
                )],
            );
            add(
                "d",
                vec![replace(
                    "initiatedAt(drifting(Vessel)=true, T) :- \
                       happensAt(velocity(Vessel, Speed, Heading, Cog), T), \
                       Heading \\= Cog.\n\
                     terminatedAt(drifting(Vessel)=true, T) :- \
                       happensAt(stop_start(Vessel), T).",
                )],
            );
            add("aM", vec![Mutation::ConfuseUnionIntersect]);
            add("l", vec![rename("lowSpeed", "slowSpeed")]);
            add(
                "h",
                vec![
                    rename("velocity", "speedReport"),
                    Mutation::DropRule { index: 3 },
                ],
            );
            add(
                "p",
                vec![Mutation::RemoveCondition {
                    rule_index: 0,
                    literal_index: 1,
                }],
            );
        }
        Model::Gemma2 => {
            // Wrong fluent kind for trawling: similarity 0 against the
            // statically determined gold definition (paper, Section 5.2).
            add(
                "tr",
                vec![replace(
                    "initiatedAt(trawling(Vessel)=true, T) :- \
                       happensAt(change_in_heading(Vessel), T), \
                       holdsAt(withinArea(Vessel, fishing)=true, T).\n\
                     terminatedAt(trawling(Vessel)=true, T) :- \
                       happensAt(leavesArea(Vessel, AreaId), T).\n\
                     terminatedAt(trawling(Vessel)=true, T) :- \
                       happensAt(gap_start(Vessel), T).",
                )],
            );
            add(
                "aM",
                vec![replace(
                    "holdsFor(anchoredOrMoored(Vessel)=true, I) :- \
                       holdsFor(atAnchor(Vessel)=true, Ia), \
                       holdsFor(moored(Vessel)=true, Im), \
                       union_all([Ia, Im], I).",
                )],
            );
            // A crude two-condition tugging definition over an undefined
            // helper.
            add(
                "tu",
                vec![replace(
                    "holdsFor(tugging(Vessel1, Vessel2)=true, I) :- \
                       holdsFor(closeTogether(Vessel1, Vessel2)=true, Ic), \
                       union_all([Ic], I).",
                )],
            );
            // The syntax error lands in the helper speed fluent.
            add(
                "tuggingSpeed",
                vec![Mutation::InjectSyntaxError {
                    rule_index: 0,
                    kind: SyntaxErrorKind::UnbalancedParen,
                }],
            );
            add(
                "s",
                vec![
                    rename("sarSpeed", "rescueSpeed"),
                    rename("sarMovement", "rescueMovement"),
                    Mutation::InjectSyntaxError {
                        rule_index: 0,
                        kind: SyntaxErrorKind::BadNeck,
                    },
                ],
            );
            add(
                "h",
                vec![
                    Mutation::DropRule { index: 3 },
                    Mutation::DropRule { index: 1 },
                ],
            );
            add(
                "l",
                vec![Mutation::ConfuseUnionIntersect, rename("stopped", "idle")],
            );
            add(
                "d",
                vec![replace(
                    "holdsFor(drifting(Vessel)=true, I) :- \
                       holdsFor(adrift(Vessel)=true, Ia), \
                       union_all([Ia], I).",
                )],
            );
            add(
                "p",
                vec![replace(
                    "holdsFor(pilotOps(Vessel1, Vessel2)=true, I) :- \
                       holdsFor(boarding(Vessel1, Vessel2)=true, Ib), \
                       union_all([Ib], I).",
                )],
            );
        }
    }

    // The non-preferred scheme degrades further: extra dropped rules and
    // naming drift across several tasks.
    if scheme != model.best_scheme() {
        add("withinArea", vec![rename("areaType", "typeOfArea")]);
        add("stopped", vec![Mutation::DropRule { index: 2 }]);
        add("h", vec![Mutation::DropRule { index: 1 }]);
        add("aM", vec![Mutation::ConfuseUnionIntersect]);
        add("s", vec![Mutation::DropRule { index: 0 }]);
        add("d", vec![rename("velocity", "kinematics")]);
        add(
            "tr",
            vec![Mutation::AddCondition {
                rule_index: 0,
                literal: "holdsFor(changingSpeed(Vessel)=true, Ix)".into(),
            }],
        );
    }

    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_has_a_profile() {
        for m in Model::ALL {
            for s in [PromptScheme::FewShot, PromptScheme::ChainOfThought] {
                let p = profile(m, s);
                assert!(!p.is_empty(), "{m:?}/{s:?}");
            }
        }
    }

    #[test]
    fn non_preferred_scheme_is_strictly_more_mutated() {
        for m in Model::ALL {
            let best = profile(m, m.best_scheme());
            let other_scheme = if m.best_scheme() == PromptScheme::FewShot {
                PromptScheme::ChainOfThought
            } else {
                PromptScheme::FewShot
            };
            let other = profile(m, other_scheme);
            let count = |p: &Profile| p.values().map(Vec::len).sum::<usize>();
            assert!(count(&other) > count(&best), "{m:?}");
        }
    }

    #[test]
    fn markers_match_paper_notation() {
        assert_eq!(PromptScheme::FewShot.marker(), "□");
        assert_eq!(PromptScheme::ChainOfThought.marker(), "△");
        assert_eq!(PromptScheme::FewShot.filled_marker(), "■");
        assert_eq!(PromptScheme::ChainOfThought.filled_marker(), "▲");
    }

    #[test]
    fn best_schemes_match_figure_2a() {
        assert_eq!(Model::Gpt4.best_scheme(), PromptScheme::FewShot);
        assert_eq!(Model::Gpt4o.best_scheme(), PromptScheme::ChainOfThought);
        assert_eq!(Model::O1.best_scheme(), PromptScheme::FewShot);
        assert_eq!(Model::Llama3.best_scheme(), PromptScheme::FewShot);
        assert_eq!(Model::Mistral.best_scheme(), PromptScheme::ChainOfThought);
        assert_eq!(Model::Gemma2.best_scheme(), PromptScheme::ChainOfThought);
    }
}
