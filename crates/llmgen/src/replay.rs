//! Recording and replaying generation sessions.
//!
//! Live LLM calls are slow, non-deterministic and cost money; a standard
//! production pattern is to record each prompting session and re-run the
//! downstream pipeline (extraction, scoring, correction, recognition)
//! from the transcript. [`RecordingModel`] wraps any [`LanguageModel`]
//! and captures the prompt/reply pairs; [`ReplayModel`] plays a saved
//! transcript back as a model.

use crate::provider::LanguageModel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::Path;

/// A recorded prompting session.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct Transcript {
    /// The recorded model's name.
    pub model: String,
    /// `(prompt, reply)` pairs in session order.
    pub turns: Vec<(String, String)>,
}

impl Transcript {
    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("transcript serialises")
    }

    /// Deserialises from JSON.
    pub fn from_json(s: &str) -> Result<Transcript, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the transcript to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a transcript from a file.
    pub fn load(path: &Path) -> std::io::Result<Transcript> {
        let s = std::fs::read_to_string(path)?;
        Transcript::from_json(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Wraps a model and records every prompt/reply pair.
pub struct RecordingModel<M> {
    inner: M,
    transcript: Transcript,
}

impl<M: LanguageModel> RecordingModel<M> {
    /// Starts recording `inner`.
    pub fn new(inner: M) -> RecordingModel<M> {
        let model = inner.name();
        RecordingModel {
            inner,
            transcript: Transcript {
                model,
                turns: Vec::new(),
            },
        }
    }

    /// The transcript recorded so far.
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// Stops recording, returning the inner model and the transcript.
    pub fn finish(self) -> (M, Transcript) {
        (self.inner, self.transcript)
    }
}

impl<M: LanguageModel> LanguageModel for RecordingModel<M> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn complete(&mut self, prompt: &str) -> String {
        let reply = self.inner.complete(prompt);
        self.transcript
            .turns
            .push((prompt.to_owned(), reply.clone()));
        reply
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.transcript.turns.clear();
    }
}

/// Replays a transcript as a model: each prompt is answered with the next
/// recorded reply. Prompts are not required to match the recorded ones
/// (the pipeline may evolve); an exhausted transcript answers with an
/// empty string.
pub struct ReplayModel {
    name: String,
    all: Vec<String>,
    remaining: VecDeque<String>,
}

impl ReplayModel {
    /// Builds a replaying model from a transcript.
    pub fn new(transcript: &Transcript) -> ReplayModel {
        let all: Vec<String> = transcript.turns.iter().map(|(_, r)| r.clone()).collect();
        ReplayModel {
            name: transcript.model.clone(),
            remaining: all.clone().into(),
            all,
        }
    }
}

impl LanguageModel for ReplayModel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn complete(&mut self, _prompt: &str) -> String {
        self.remaining.pop_front().unwrap_or_default()
    }

    fn reset(&mut self) {
        self.remaining = self.all.clone().into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockLlm;
    use crate::pipeline::generate;
    use crate::profiles::Model;
    use maritime::thresholds::Thresholds;

    #[test]
    fn record_then_replay_reproduces_the_description() {
        let mut recorder = RecordingModel::new(MockLlm::new(Model::O1));
        let live = generate(
            &mut recorder,
            Model::O1.best_scheme(),
            &Thresholds::default(),
        );
        let (_, transcript) = recorder.finish();
        assert_eq!(transcript.turns.len(), live.prompts_sent);

        let mut replay = ReplayModel::new(&transcript);
        let replayed = generate(&mut replay, Model::O1.best_scheme(), &Thresholds::default());
        assert_eq!(live.full_text(), replayed.full_text());
    }

    #[test]
    fn transcript_json_round_trips() {
        let t = Transcript {
            model: "o1".into(),
            turns: vec![("p1".into(), "r1".into()), ("p2".into(), "r2".into())],
        };
        let j = t.to_json();
        let back = Transcript::from_json(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn transcript_file_round_trips() {
        let t = Transcript {
            model: "GPT-4o".into(),
            turns: vec![("prompt".into(), "reply with\nnewlines".into())],
        };
        let dir = std::env::temp_dir().join("adgen_transcript_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        t.save(&path).unwrap();
        let back = Transcript::load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exhausted_replay_returns_empty() {
        let t = Transcript {
            model: "x".into(),
            turns: vec![("p".into(), "r".into())],
        };
        let mut m = ReplayModel::new(&t);
        assert_eq!(m.complete("p"), "r");
        assert_eq!(m.complete("q"), "");
        m.reset();
        assert_eq!(m.complete("p"), "r");
    }

    #[test]
    fn recorder_reset_clears_turns() {
        let mut r = RecordingModel::new(MockLlm::new(Model::Mistral));
        r.complete("hello");
        assert_eq!(r.transcript().turns.len(), 1);
        r.reset();
        assert!(r.transcript().turns.is_empty());
    }
}
