//! The sequence of generation tasks: one prompt G per composite activity,
//! ordered bottom-up so that later definitions may reuse earlier ones
//! (Section 3.3 — "we instruct the LLM to take into consideration any of
//! the activities that has been formalised so far").

use maritime::gold::{activities, Activity};

/// One generation request: a natural-language activity description the
/// model must formalise in RTEC.
#[derive(Clone, Debug)]
pub struct GenerationTask {
    /// Stable key: the paper's activity keys (`h`, `aM`, ...) for the
    /// eight targets, the fluent name for lower-level helpers.
    pub key: String,
    /// The main fluent the task defines.
    pub fluent: String,
    /// Natural-language description (the text of prompt G).
    pub description: String,
    /// Whether this is one of the eight activities of Figure 2.
    pub is_target: bool,
}

fn helper(fluent: &str, description: &str) -> GenerationTask {
    GenerationTask {
        key: fluent.to_owned(),
        fluent: fluent.to_owned(),
        description: description.to_owned(),
        is_target: false,
    }
}

fn target(a: &Activity) -> GenerationTask {
    GenerationTask {
        key: a.key.to_owned(),
        fluent: a.name.to_owned(),
        description: a.description.to_owned(),
        is_target: true,
    }
}

/// The full task sequence: lower-level fluents first (communication gap,
/// area membership, stop/low-speed/speed-change states, moving speed,
/// under way, and the per-activity helper speeds/movements), then the
/// eight target activities in Figure 2 order.
pub fn generation_tasks() -> Vec<GenerationTask> {
    let mut tasks = vec![
        helper(
            "gap",
            "Communication gap: a communication gap starts when we stop receiving messages \
             from a vessel. We would like to distinguish the cases where a communication gap \
             starts (i) near some port and (ii) far from all ports. A communication gap ends \
             when we resume receiving messages from a vessel.",
        ),
        helper(
            "withinArea",
            "Within area: this activity starts when a vessel enters an area of interest. The \
             activity ends when the vessel leaves the area that it had entered. When there is \
             a gap in signal transmissions, we can no longer assume that the vessel remains \
             in the same area.",
        ),
        helper(
            "stopped",
            "Stopped: a vessel is stopped from the moment it becomes idle, distinguishing \
             whether it stopped near some port or far from all ports. The activity ends when \
             the vessel starts moving again or when there is a communication gap.",
        ),
        helper(
            "lowSpeed",
            "Low speed: a vessel sails at low speed from the moment its slow motion starts \
             until its slow motion ends or there is a communication gap.",
        ),
        helper(
            "changingSpeed",
            "Changing speed: a vessel is changing its speed from the moment a change in \
             speed starts until the change in speed ends or there is a communication gap.",
        ),
        helper(
            "movingSpeed",
            "Moving speed: while a vessel is moving, i.e. sailing at or above the minimum \
             moving speed, classify its speed as below, normal or above the service speed \
             range of its vessel type. The classification ends when the vessel's speed drops \
             below the minimum moving speed or there is a communication gap.",
        ),
        helper(
            "underWay",
            "Under way: this activity lasts as long as a vessel is moving, i.e. sailing at \
             any moving speed — below, normal or above its service speed.",
        ),
        helper(
            "trawlSpeed",
            "Trawling speed: a fishing vessel sails at trawling speed while its speed lies \
             between the trawling speed thresholds and it is within a fishing area. The \
             activity ends when the speed leaves the range or there is a communication gap.",
        ),
        helper(
            "trawlingMovement",
            "Trawling movement: a vessel exhibits trawling movement from its first change of \
             heading within a fishing area; the activity ends when the vessel leaves the \
             fishing area or there is a communication gap.",
        ),
        helper(
            "tuggingSpeed",
            "Towing speed: a vessel sails at towing speed while its speed lies between the \
             tugging speed thresholds. The activity ends when the speed leaves the range or \
             there is a communication gap.",
        ),
        helper(
            "sarSpeed",
            "Search-and-rescue speed: a search-and-rescue vessel sails at search-and-rescue \
             speed while its speed is at or above the minimum search-and-rescue speed. The \
             activity ends when the speed drops below the threshold or there is a \
             communication gap.",
        ),
        helper(
            "sarMovement",
            "Search-and-rescue movement: a search-and-rescue vessel exhibits \
             search-and-rescue movement from its first change of heading; the activity ends \
             when the vessel stops or there is a communication gap.",
        ),
    ];
    tasks.extend(activities().iter().map(target));
    tasks
}

/// The eight target tasks only, in Figure 2 order.
pub fn target_tasks() -> Vec<GenerationTask> {
    generation_tasks()
        .into_iter()
        .filter(|t| t.is_target)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_tasks_targets_last() {
        let tasks = generation_tasks();
        assert_eq!(tasks.len(), 20);
        assert!(tasks[..12].iter().all(|t| !t.is_target));
        assert!(tasks[12..].iter().all(|t| t.is_target));
    }

    #[test]
    fn target_keys_match_figure_2() {
        let keys: Vec<String> = target_tasks().iter().map(|t| t.key.clone()).collect();
        assert_eq!(keys, vec!["h", "aM", "tr", "tu", "p", "l", "s", "d"]);
    }

    #[test]
    fn every_task_fluent_exists_in_gold() {
        let gold = maritime::gold::gold_event_description();
        for t in generation_tasks() {
            assert!(
                gold.symbols.get(&t.fluent).is_some(),
                "fluent {} missing from gold",
                t.fluent
            );
        }
    }
}
