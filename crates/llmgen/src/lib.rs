//! # llmgen — LLM prompting pipeline for activity-definition generation
//!
//! Implements Section 3 of *Generating Activity Definitions with Large
//! Language Models* (EDBT 2025): a staged prompting approach that teaches a
//! language model the RTEC language (prompt R), the two kinds of fluent
//! definitions via few-shot or chain-of-thought examples (prompts F*/F),
//! the input events (prompt E) and domain thresholds (prompt T), and then
//! requests one composite activity definition per generation prompt
//! (prompt G), building a hierarchical event description bottom-up.
//!
//! ## Simulated models
//!
//! The paper evaluates GPT-4, GPT-4o, o1, Llama-3, Mistral and Gemma-2
//! through the OpenAI and Groq APIs. Those APIs are unavailable here, so
//! [`mock`] provides deterministic simulated models behind the same
//! [`provider::LanguageModel`] trait: each model answers the G prompts
//! with the gold-standard rules transformed by a per-model *error profile*
//! ([`profiles`]) drawn from the paper's qualitative error taxonomy
//! (Section 5.2) — naming divergences, wrong fluent kind, undefined
//! dependencies, `union_all`/`intersect_all` confusion, dropped and
//! redundant conditions, argument swaps and outright syntax errors. A
//! real HTTP-backed provider can be dropped in without touching the
//! pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod errors;
pub mod mock;
pub mod pipeline;
pub mod profiles;
pub mod prompts;
pub mod provider;
pub mod replay;
pub mod tasks;

pub use mock::MockLlm;
pub use pipeline::{extract_rules, generate, try_generate, GeneratedDescription};
pub use profiles::{Model, PromptScheme};
pub use provider::{FlakyModel, LanguageModel, ModelError, RetryPolicy, RetryingModel};
pub use replay::{RecordingModel, ReplayModel, Transcript};
pub use tasks::{generation_tasks, GenerationTask};
