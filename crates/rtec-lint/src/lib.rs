//! # rtec-lint — whole-description semantic analysis for RTEC
//!
//! `rtec::validate` checks each clause in isolation against the rule
//! syntax of the paper's Definitions 2.2 and 2.4. This crate analyzes a
//! parsed [`EventDescription`] *as a whole*: it builds the fluent/event
//! dependency graph and reports structured [`Diagnostic`]s — each with a
//! stable code (`RL0xxx`), a [`Severity`], the source position of the
//! offending clause, a human-readable message, and (where a fix is
//! obvious) a suggestion.
//!
//! The analysis set targets exactly the error classes that the paper
//! observes in LLM-generated event descriptions (§5.2): undefined
//! activities and out-of-schema references, renamed or re-ordered
//! arguments, wrong fluent kind, dropped conditions that leave
//! variables unbound, and dead or duplicated rules. The full catalogue
//! with triggering examples lives in `docs/LINTS.md`.
//!
//! ## Diagnostic codes
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | [`SYNTAX_ERROR`](codes::SYNTAX_ERROR) | error | the source failed to parse |
//! | [`INVALID_CLAUSE`](codes::INVALID_CLAUSE) | per issue | a clause violates Definition 2.2/2.4 (from `rtec::validate`) |
//! | [`UNDEFINED_FLUENT`](codes::UNDEFINED_FLUENT) | warning / error¹ | a fluent is referenced but never defined or declared |
//! | [`UNDECLARED_EVENT`](codes::UNDECLARED_EVENT) | error¹ | an event is used but not declared as an input |
//! | [`ARITY_MISMATCH`](codes::ARITY_MISMATCH) | warning | one name is used with different arities |
//! | [`KIND_CONFLICT`](codes::KIND_CONFLICT) | error / warning² | one name is defined as both a simple and a static fluent, or used as both an event and a fluent |
//! | [`DEPENDENCY_CYCLE`](codes::DEPENDENCY_CYCLE) | error | the fluent dependency graph is cyclic (stratification impossible) |
//! | [`UNSAFE_VARIABLE`](codes::UNSAFE_VARIABLE) | error / warning³ | a head or comparison variable is never bound by a positive body literal |
//! | [`SINGLETON_VARIABLE`](codes::SINGLETON_VARIABLE) | warning | a variable occurs exactly once in its clause |
//! | [`DEAD_RULE`](codes::DEAD_RULE) | warning | a rule can never fire (fluent never initiated, or body references an undefined fluent) |
//! | [`DUPLICATE_CLAUSE`](codes::DUPLICATE_CLAUSE) | warning | a clause duplicates or is subsumed by an earlier one |
//! | [`UNUSED_DECLARATION`](codes::UNUSED_DECLARATION) | warning | a declared input event/fluent is never referenced |
//! | [`EMPTY_RULE`](codes::EMPTY_RULE) | warning | flow analysis proved the rule body can never be satisfied |
//! | [`UNREACHABLE_FLUENT`](codes::UNREACHABLE_FLUENT) | warning | every rule deriving the fluent is statically empty |
//! | [`NON_TERMINATING_FLUENT`](codes::NON_TERMINATING_FLUENT) | warning | once initiated, the fluent can never terminate |
//!
//! ¹ undefined references are errors when the description carries
//! `inputEvent`/`inputFluent` declarations (the schema is then closed),
//! warnings otherwise. ² the simple-vs-static conflict is an error (the
//! engine rejects such definitions); event/fluent cross-use is a
//! warning. ³ unbound head and comparison variables are errors;
//! unbound variables inside negated literals are warnings.
//!
//! ## Example
//!
//! ```
//! use rtec::prelude::*;
//! use rtec_lint::{analyze, codes};
//!
//! let desc = EventDescription::parse_lenient(
//!     "initiatedAt(moving(V)=true, T) :- happensAt(startMoving(V), T), holdsAt(engine(V)=on, T).",
//! );
//! let report = analyze(&desc);
//! // `engine` is referenced but never defined: RL0101.
//! assert!(report.diagnostics.iter().any(|d| d.code == codes::UNDEFINED_FLUENT));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rtec::description::EventDescription;
use rtec::error::{Pos, RtecError, Severity};
use rtec::validate::{validate, SysSymbols};
use serde_json::Value;
use std::collections::BTreeMap;

mod checks;
mod flow;
mod model;

pub use model::DescriptionModel;

/// Stable diagnostic codes. Codes are grouped by hundreds: `RL00xx`
/// syntax/validation, `RL01xx` name resolution, `RL02xx` signature
/// consistency, `RL03xx` dependency structure, `RL04xx` variable
/// safety, `RL05xx` redundancy.
pub mod codes {
    /// The source failed to lex or parse.
    pub const SYNTAX_ERROR: &str = "RL0001";
    /// A clause violates the rule syntax of Definition 2.2/2.4
    /// (forwarded from `rtec::validate`).
    pub const INVALID_CLAUSE: &str = "RL0002";
    /// A fluent is referenced (`holdsAt`/`holdsFor`) but never defined
    /// by a rule and never declared as an input fluent.
    pub const UNDEFINED_FLUENT: &str = "RL0101";
    /// An event is used (`happensAt`) but not declared as an input
    /// event (only checked when declarations are present).
    pub const UNDECLARED_EVENT: &str = "RL0102";
    /// One predicate name is used with more than one arity.
    pub const ARITY_MISMATCH: &str = "RL0201";
    /// One name is defined as both a simple and a statically-determined
    /// fluent, or used as both an event and a fluent.
    pub const KIND_CONFLICT: &str = "RL0202";
    /// The fluent dependency graph contains a cycle, so no bottom-up
    /// evaluation order (stratification) exists.
    pub const DEPENDENCY_CYCLE: &str = "RL0301";
    /// A variable in the head or in a negated/comparison literal is
    /// never bound by a positive body literal.
    pub const UNSAFE_VARIABLE: &str = "RL0401";
    /// A variable occurs exactly once in its clause (likely a typo);
    /// prefix with `_` to mark it intentional.
    pub const SINGLETON_VARIABLE: &str = "RL0402";
    /// The rule can never fire: it terminates a fluent that is never
    /// initiated, or its body references a fluent that is neither
    /// defined nor declared.
    pub const DEAD_RULE: &str = "RL0501";
    /// A clause is an exact duplicate of, or is subsumed by, an
    /// earlier clause.
    pub const DUPLICATE_CLAUSE: &str = "RL0502";
    /// A declared input event or fluent is never referenced by any
    /// rule.
    pub const UNUSED_DECLARATION: &str = "RL0503";
    /// The rule body is statically empty: the whole-program abstract
    /// interpreter (`rtec-analysis`) proved it has no solution on any
    /// stream — contradictory comparisons, a fluent value outside the
    /// derivable set, or interval algebra that always yields an empty
    /// list.
    pub const EMPTY_RULE: &str = "RL1001";
    /// A defined fluent can never hold: every initiation / holdsFor
    /// rule is statically empty (flow analysis, transitive through
    /// dependent fluents).
    pub const UNREACHABLE_FLUENT: &str = "RL1002";
    /// A simple fluent can hold but can never terminate once initiated:
    /// no satisfiable `terminatedAt` rule and a single initiation
    /// value, so its intervals only ever end at the forget horizon.
    pub const NON_TERMINATING_FLUENT: &str = "RL1003";
}

/// One structured finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (one of [`codes`]).
    pub code: &'static str,
    /// Error (the description should be rejected) or warning
    /// (suspicious but runnable).
    pub severity: Severity,
    /// Index of the offending clause in `EventDescription::clauses`,
    /// when the finding is anchored to one.
    pub clause: Option<usize>,
    /// Source position of the offending clause (or token, for syntax
    /// errors).
    pub pos: Option<Pos>,
    /// Human-readable message.
    pub message: String,
    /// A suggested fix, when one is obvious (e.g. "did you mean …?").
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Renders one human-readable line, e.g.
    /// `error[RL0101] (clause 3, line 7:1): undefined fluent ...`.
    pub fn render(&self) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut out = format!("{sev}[{}]", self.code);
        match (self.clause, self.pos) {
            (Some(c), Some(p)) => out.push_str(&format!(" (clause {c}, line {p})")),
            (Some(c), None) => out.push_str(&format!(" (clause {c})")),
            (None, Some(p)) => out.push_str(&format!(" (line {p})")),
            (None, None) => {}
        }
        out.push_str(&format!(": {}", self.message));
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("\n    help: {s}"));
        }
        out
    }

    /// Serialises the diagnostic as a stable JSON object with keys
    /// `code`, `severity`, `clause`, `line`, `col`, `message`,
    /// `suggestion` (absent fields are `null`).
    pub fn to_json(&self) -> Value {
        let opt = |v: Option<i64>| v.map(Value::from).unwrap_or(Value::Null);
        let mut fields = BTreeMap::new();
        fields.insert("code".to_string(), Value::from(self.code));
        fields.insert(
            "severity".to_string(),
            Value::from(match self.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            }),
        );
        fields.insert("clause".to_string(), opt(self.clause.map(|c| c as i64)));
        fields.insert("line".to_string(), opt(self.pos.map(|p| i64::from(p.line))));
        fields.insert("col".to_string(), opt(self.pos.map(|p| i64::from(p.col))));
        fields.insert("message".to_string(), Value::from(self.message.clone()));
        fields.insert(
            "suggestion".to_string(),
            self.suggestion
                .clone()
                .map(Value::from)
                .unwrap_or(Value::Null),
        );
        Value::Object(fields)
    }
}

/// The result of analysing one event description.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// All findings, ordered by clause index, then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any error-severity diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the description is completely clean (no errors, no
    /// warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Error-severity diagnostics from the *semantic* passes — i.e.
    /// excluding [`codes::SYNTAX_ERROR`] and [`codes::INVALID_CLAUSE`],
    /// which the parser and per-clause validator already own (the
    /// service maps parse failures to `bad_request` and tolerates
    /// invalid clauses by setting them aside, so only semantic errors
    /// should trigger `invalid_description` rejection).
    pub fn semantic_errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.errors()
            .filter(|d| d.code != codes::SYNTAX_ERROR && d.code != codes::INVALID_CLAUSE)
    }

    /// Whether any semantic (non-syntax, non-validation) error was
    /// reported. This is the predicate `rtec-service` gates session
    /// `open` on.
    pub fn has_semantic_errors(&self) -> bool {
        self.semantic_errors().next().is_some()
    }

    /// The distinct codes that fired, in code order.
    pub fn codes_fired(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Serialises the report as a stable JSON array of diagnostic
    /// objects (see [`Diagnostic::to_json`]).
    pub fn to_json(&self) -> Value {
        Value::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect())
    }

    /// Renders all findings as human-readable lines.
    pub fn render(&self) -> String {
        self.diagnostics
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Analyses a lenient-parsed source string: shorthand for
/// [`EventDescription::parse_lenient`] followed by [`analyze`].
pub fn analyze_source(src: &str) -> AnalysisReport {
    analyze(&EventDescription::parse_lenient(src))
}

/// Runs every analysis pass over `desc` and returns the collected
/// diagnostics, ordered by clause index then code.
pub fn analyze(desc: &EventDescription) -> AnalysisReport {
    let mut diagnostics = Vec::new();

    // RL0001: syntax errors recorded by the lenient parser.
    for err in &desc.parse_errors {
        let pos = match err {
            RtecError::Lex { pos, .. } | RtecError::Parse { pos, .. } => Some(*pos),
            _ => None,
        };
        diagnostics.push(Diagnostic {
            code: codes::SYNTAX_ERROR,
            severity: Severity::Error,
            clause: None,
            pos,
            message: err.to_string(),
            suggestion: None,
        });
    }

    // Per-clause validation (Definitions 2.2/2.4), forwarded as RL0002.
    let mut symbols = desc.symbols.clone();
    let sys = SysSymbols::intern(&mut symbols);
    let validated = validate(&desc.clauses, &mut symbols);
    for issue in &validated.report.issues {
        diagnostics.push(Diagnostic {
            code: codes::INVALID_CLAUSE,
            severity: issue.severity,
            clause: Some(issue.clause),
            pos: desc.clauses.get(issue.clause).map(|c| c.pos),
            message: issue.message.clone(),
            suggestion: None,
        });
    }

    // Whole-description semantic passes over the validated rule set.
    let model = DescriptionModel::build(desc, &validated, &sys, &mut symbols);
    // Whole-program flow analysis (rtec-analysis): absent when the
    // description does not compile to an evaluation plan.
    let flow = flow::compute(desc);
    let flow_never_holds = flow.as_ref().map(|a| flow::never_holding(a, &model));
    checks::undefined_references(&model, &mut diagnostics);
    checks::arity_consistency(&model, &mut diagnostics);
    checks::kind_conflicts(&model, &mut diagnostics);
    checks::dependency_cycles(&model, &mut diagnostics);
    checks::variable_safety(&model, &mut diagnostics);
    checks::singleton_variables(&model, &mut diagnostics);
    checks::dead_rules(&model, flow_never_holds.as_ref(), &mut diagnostics);
    checks::duplicate_clauses(&model, &mut diagnostics);
    checks::unused_declarations(&model, &mut diagnostics);
    if let Some(analysis) = &flow {
        flow::flow_lints(analysis, &model, &mut diagnostics);
    }

    diagnostics.sort_by(|a, b| (a.clause, a.code, &a.message).cmp(&(b.clause, b.code, &b.message)));
    AnalysisReport { diagnostics }
}

/// Levenshtein edit distance, used for "did you mean …?" suggestions.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests;
