use crate::{analyze_source, codes, AnalysisReport};
use rtec::error::Severity;

fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
    report.codes_fired()
}

fn has(report: &AnalysisReport, code: &str) -> bool {
    report.diagnostics.iter().any(|d| d.code == code)
}

#[test]
fn clean_description_is_clean() {
    let report = analyze_source(
        "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).\n\
         terminatedAt(on(X)=true, T) :- happensAt(down(X), T).",
    );
    assert!(report.is_clean(), "unexpected: {}", report.render());
}

#[test]
fn syntax_errors_become_rl0001() {
    let report = analyze_source("initiatedAt(on(X)=true, T) :- happensAt(up(X), T");
    assert!(has(&report, codes::SYNTAX_ERROR));
    assert!(report.has_errors());
    // Syntax errors are owned by the parser, not the semantic gate.
    assert!(!report.has_semantic_errors());
    let d = &report.diagnostics[0];
    assert!(d.pos.is_some(), "syntax errors carry a position");
}

#[test]
fn validation_issues_become_rl0002() {
    // Non-ground fact: a per-clause validation error.
    let report = analyze_source("areaType(X, fishing).");
    assert!(has(&report, codes::INVALID_CLAUSE));
    assert!(!report.has_semantic_errors());
}

#[test]
fn undefined_fluent_is_warning_without_declarations() {
    let report = analyze_source(
        "initiatedAt(moving(V)=true, T) :- happensAt(go(V), T), holdsAt(engine(V)=on, T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNDEFINED_FLUENT)
        .expect("RL0101 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("engine/1"), "{}", d.message);
    assert!(!report.has_semantic_errors());
}

#[test]
fn undefined_fluent_is_error_with_declarations_and_suggests_fix() {
    let report = analyze_source(
        "inputEvent(go/1).\n\
         initiatedAt(moving(V)=true, T) :- happensAt(go(V), T), holdsAt(enginee(V)=on, T).\n\
         initiatedAt(engine(V)=on, T) :- happensAt(go(V), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNDEFINED_FLUENT)
        .expect("RL0101 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(report.has_semantic_errors());
    let suggestion = d.suggestion.as_deref().expect("suggestion present");
    assert!(suggestion.contains("engine/1"), "{suggestion}");
}

#[test]
fn undeclared_event_is_error_only_with_declarations() {
    let src = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).";
    assert!(!has(&analyze_source(src), codes::UNDECLARED_EVENT));

    let with_decls = format!("inputEvent(upp/1).\n{src}");
    let report = analyze_source(&with_decls);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNDECLARED_EVENT)
        .expect("RL0102 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.suggestion.as_deref().unwrap_or("").contains("upp/1"));
}

#[test]
fn arity_mismatch_is_reported_per_namespace() {
    let report = analyze_source(
        "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).\n\
         terminatedAt(on(X, Y)=true, T) :- happensAt(down(X), T), q(Y).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::ARITY_MISMATCH)
        .expect("RL0201 fires");
    assert!(
        d.message.contains("on/1") && d.message.contains("on/2"),
        "{}",
        d.message
    );
    // Atom constants do not clash with same-named functors.
    let report = analyze_source(
        "initiatedAt(mode(X)=sar, T) :- happensAt(up(X), T), holdsAt(sar(X)=true, T).\n\
         initiatedAt(sar(X)=true, T) :- happensAt(sarStart(X), T).",
    );
    assert!(!has(&report, codes::ARITY_MISMATCH), "{}", report.render());
}

#[test]
fn simple_static_kind_conflict_is_error() {
    let report = analyze_source(
        "initiatedAt(f(X)=true, T) :- happensAt(e(X), T).\n\
         holdsFor(f(X)=true, I) :- holdsFor(g(X)=true, I).\n\
         initiatedAt(g(X)=true, T) :- happensAt(e(X), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::KIND_CONFLICT)
        .expect("RL0202 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("f/1"), "{}", d.message);
    assert!(report.has_semantic_errors());
}

#[test]
fn event_fluent_cross_use_is_warning() {
    let report = analyze_source(
        "initiatedAt(f(X)=true, T) :- happensAt(g(X), T), holdsAt(g(X)=true, T).\n\
         initiatedAt(g(X)=true, T) :- happensAt(e(X), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::KIND_CONFLICT)
        .expect("RL0202 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("g/1"), "{}", d.message);
}

#[test]
fn dependency_cycle_is_error_with_path() {
    let report = analyze_source(
        "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).\n\
         initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DEPENDENCY_CYCLE)
        .expect("RL0301 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("a/1") && d.message.contains("b/1"),
        "{}",
        d.message
    );
    assert!(report.has_semantic_errors());
}

#[test]
fn self_cycle_is_detected() {
    let report =
        analyze_source("initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=false, T).");
    assert!(has(&report, codes::DEPENDENCY_CYCLE), "{}", report.render());
}

#[test]
fn unbound_head_variable_is_error() {
    let report = analyze_source("initiatedAt(speed(V)=Level, T) :- happensAt(go(V), T).");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNSAFE_VARIABLE)
        .expect("RL0401 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("Level"), "{}", d.message);
}

#[test]
fn terminated_head_variables_are_exempt() {
    // The gold maritime description terminates `stopped(V)=_Value` with a
    // free value variable: the engine matches it against whatever holds.
    let report = analyze_source(
        "initiatedAt(stopped(V)=true, T) :- happensAt(stop_start(V), T).\n\
         terminatedAt(stopped(V)=Value, T) :- happensAt(gap_start(V), T), q(Value).",
    );
    assert!(!has(&report, codes::UNSAFE_VARIABLE), "{}", report.render());
}

#[test]
fn unbound_comparison_variable_is_error() {
    let report = analyze_source("initiatedAt(fast(V)=true, T) :- happensAt(go(V), T), Speed > 5.");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNSAFE_VARIABLE)
        .expect("RL0401 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("Speed"), "{}", d.message);
}

#[test]
fn eq_comparison_binds_its_variable() {
    let report = analyze_source(
        "initiatedAt(fast(V)=true, T) :- happensAt(velocity(V, Speed), T), \
         Margin = Speed + 2, Margin > 5.",
    );
    assert!(!has(&report, codes::UNSAFE_VARIABLE), "{}", report.render());
}

#[test]
fn unbound_variable_in_negated_literal_is_warning() {
    let report = analyze_source(
        "initiatedAt(idle(V)=true, T) :- happensAt(stop(V), T), \
         not happensAt(move(V, Speed), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNSAFE_VARIABLE)
        .expect("RL0401 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("Speed"), "{}", d.message);
    // Underscore-prefixed wildcards are intentional and exempt (they also
    // silence the singleton warning).
    let report = analyze_source(
        "initiatedAt(idle(V)=true, T) :- happensAt(stop(V), T), \
         not happensAt(move(V, _Speed), T).",
    );
    assert!(!has(&report, codes::UNSAFE_VARIABLE), "{}", report.render());
}

#[test]
fn singleton_variable_is_warning_with_rename_suggestion() {
    let report = analyze_source("initiatedAt(on(X)=true, T) :- happensAt(up(X, Mode), T).");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::SINGLETON_VARIABLE)
        .expect("RL0402 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("Mode"), "{}", d.message);
    assert!(d.suggestion.as_deref().unwrap_or("").contains("_Mode"));
    // Underscore prefix silences it.
    let report = analyze_source("initiatedAt(on(X)=true, T) :- happensAt(up(X, _Mode), T).");
    assert!(
        !has(&report, codes::SINGLETON_VARIABLE),
        "{}",
        report.render()
    );
}

#[test]
fn terminated_never_initiated_is_dead_rule() {
    let report = analyze_source("terminatedAt(on(X)=true, T) :- happensAt(down(X), T).");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DEAD_RULE)
        .expect("RL0501 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("never initiated"), "{}", d.message);
}

#[test]
fn termination_value_never_produced_is_dead_rule() {
    let report = analyze_source(
        "initiatedAt(mode(X)=fast, T) :- happensAt(speedUp(X), T).\n\
         terminatedAt(mode(X)=slow, T) :- happensAt(stop(X), T).",
    );
    assert!(has(&report, codes::DEAD_RULE), "{}", report.render());
    // A variable termination value matches any initiation: not dead.
    let report = analyze_source(
        "initiatedAt(mode(X)=fast, T) :- happensAt(speedUp(X), T).\n\
         terminatedAt(mode(X)=_Value, T) :- happensAt(stop(X), T).",
    );
    assert!(!has(&report, codes::DEAD_RULE), "{}", report.render());
}

#[test]
fn rule_requiring_never_holding_fluent_is_dead() {
    let report = analyze_source(
        "terminatedAt(ghost(X)=true, T) :- happensAt(down(X), T).\n\
         initiatedAt(watch(X)=true, T) :- happensAt(up(X), T), holdsAt(ghost(X)=true, T).",
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::DEAD_RULE && d.message.contains("can never fire")),
        "{}",
        report.render()
    );
}

#[test]
fn duplicate_and_subsumed_clauses_are_warnings() {
    // Exact duplicate modulo variable names.
    let report = analyze_source(
        "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).\n\
         initiatedAt(on(V)=true, T2) :- happensAt(up(V), T2).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DUPLICATE_CLAUSE)
        .expect("RL0502 fires");
    assert!(d.message.contains("duplicate"), "{}", d.message);
    assert_eq!(d.clause, Some(1));

    // Subsumption: the longer body is redundant.
    let report = analyze_source(
        "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).\n\
         initiatedAt(on(X)=true, T) :- happensAt(up(X), T), holdsAt(other(X)=false, T).\n\
         initiatedAt(other(X)=true, T) :- happensAt(up(X), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DUPLICATE_CLAUSE)
        .expect("RL0502 fires");
    assert!(d.message.contains("subsumed"), "{}", d.message);
}

#[test]
fn unused_declaration_is_warning_anchored_at_declaration() {
    let report = analyze_source(
        "inputEvent(up/1).\ninputEvent(down/1).\n\
         initiatedAt(on(X)=true, T) :- happensAt(up(X), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNUSED_DECLARATION)
        .expect("RL0503 fires");
    assert!(d.message.contains("down/1"), "{}", d.message);
    assert_eq!(d.clause, Some(1));
}

#[test]
fn json_rendering_is_stable_and_complete() {
    let report = analyze_source(
        "initiatedAt(moving(V)=true, T) :- happensAt(go(V), T), holdsAt(engine(V)=on, T).",
    );
    let json = report.to_json();
    let arr = match &json {
        serde_json::Value::Array(a) => a,
        other => panic!("expected array, got {other:?}"),
    };
    assert_eq!(arr.len(), report.diagnostics.len());
    for item in arr {
        for key in [
            "code",
            "severity",
            "clause",
            "line",
            "col",
            "message",
            "suggestion",
        ] {
            assert!(item.get(key).is_some(), "missing key {key} in {item:?}");
        }
    }
    let line = serde_json::to_string(&json).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&line).unwrap();
    assert_eq!(parsed, json);
}

#[test]
fn report_ordering_is_deterministic() {
    let src = "terminatedAt(a(X)=true, T) :- happensAt(down(X), T), holdsAt(nope(X)=true, T).\n\
               initiatedAt(b(Y)=true, T) :- happensAt(up(Y, Z), T).";
    let a = analyze_source(src);
    let b = analyze_source(src);
    assert_eq!(a.diagnostics, b.diagnostics);
    let clauses: Vec<Option<usize>> = a.diagnostics.iter().map(|d| d.clause).collect();
    let mut sorted = clauses.clone();
    sorted.sort();
    assert_eq!(clauses, sorted);
    assert!(codes_of(&a).len() >= 2);
}
