use crate::{analyze_source, codes, AnalysisReport};
use rtec::error::Severity;

fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
    report.codes_fired()
}

fn has(report: &AnalysisReport, code: &str) -> bool {
    report.diagnostics.iter().any(|d| d.code == code)
}

#[test]
fn clean_description_is_clean() {
    let report = analyze_source(
        "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).\n\
         terminatedAt(on(X)=true, T) :- happensAt(down(X), T).",
    );
    assert!(report.is_clean(), "unexpected: {}", report.render());
}

#[test]
fn syntax_errors_become_rl0001() {
    let report = analyze_source("initiatedAt(on(X)=true, T) :- happensAt(up(X), T");
    assert!(has(&report, codes::SYNTAX_ERROR));
    assert!(report.has_errors());
    // Syntax errors are owned by the parser, not the semantic gate.
    assert!(!report.has_semantic_errors());
    let d = &report.diagnostics[0];
    assert!(d.pos.is_some(), "syntax errors carry a position");
}

#[test]
fn validation_issues_become_rl0002() {
    // Non-ground fact: a per-clause validation error.
    let report = analyze_source("areaType(X, fishing).");
    assert!(has(&report, codes::INVALID_CLAUSE));
    assert!(!report.has_semantic_errors());
}

#[test]
fn undefined_fluent_is_warning_without_declarations() {
    let report = analyze_source(
        "initiatedAt(moving(V)=true, T) :- happensAt(go(V), T), holdsAt(engine(V)=on, T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNDEFINED_FLUENT)
        .expect("RL0101 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("engine/1"), "{}", d.message);
    assert!(!report.has_semantic_errors());
}

#[test]
fn undefined_fluent_is_error_with_declarations_and_suggests_fix() {
    let report = analyze_source(
        "inputEvent(go/1).\n\
         initiatedAt(moving(V)=true, T) :- happensAt(go(V), T), holdsAt(enginee(V)=on, T).\n\
         initiatedAt(engine(V)=on, T) :- happensAt(go(V), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNDEFINED_FLUENT)
        .expect("RL0101 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(report.has_semantic_errors());
    let suggestion = d.suggestion.as_deref().expect("suggestion present");
    assert!(suggestion.contains("engine/1"), "{suggestion}");
}

#[test]
fn undeclared_event_is_error_only_with_declarations() {
    let src = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).";
    assert!(!has(&analyze_source(src), codes::UNDECLARED_EVENT));

    let with_decls = format!("inputEvent(upp/1).\n{src}");
    let report = analyze_source(&with_decls);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNDECLARED_EVENT)
        .expect("RL0102 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.suggestion.as_deref().unwrap_or("").contains("upp/1"));
}

#[test]
fn arity_mismatch_is_reported_per_namespace() {
    let report = analyze_source(
        "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).\n\
         terminatedAt(on(X, Y)=true, T) :- happensAt(down(X), T), q(Y).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::ARITY_MISMATCH)
        .expect("RL0201 fires");
    assert!(
        d.message.contains("on/1") && d.message.contains("on/2"),
        "{}",
        d.message
    );
    // Atom constants do not clash with same-named functors.
    let report = analyze_source(
        "initiatedAt(mode(X)=sar, T) :- happensAt(up(X), T), holdsAt(sar(X)=true, T).\n\
         initiatedAt(sar(X)=true, T) :- happensAt(sarStart(X), T).",
    );
    assert!(!has(&report, codes::ARITY_MISMATCH), "{}", report.render());
}

#[test]
fn simple_static_kind_conflict_is_error() {
    let report = analyze_source(
        "initiatedAt(f(X)=true, T) :- happensAt(e(X), T).\n\
         holdsFor(f(X)=true, I) :- holdsFor(g(X)=true, I).\n\
         initiatedAt(g(X)=true, T) :- happensAt(e(X), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::KIND_CONFLICT)
        .expect("RL0202 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("f/1"), "{}", d.message);
    assert!(report.has_semantic_errors());
}

#[test]
fn event_fluent_cross_use_is_warning() {
    let report = analyze_source(
        "initiatedAt(f(X)=true, T) :- happensAt(g(X), T), holdsAt(g(X)=true, T).\n\
         initiatedAt(g(X)=true, T) :- happensAt(e(X), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::KIND_CONFLICT)
        .expect("RL0202 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("g/1"), "{}", d.message);
}

#[test]
fn dependency_cycle_is_error_with_path() {
    let report = analyze_source(
        "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).\n\
         initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DEPENDENCY_CYCLE)
        .expect("RL0301 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("a/1") && d.message.contains("b/1"),
        "{}",
        d.message
    );
    assert!(report.has_semantic_errors());
}

#[test]
fn self_cycle_is_detected() {
    let report =
        analyze_source("initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=false, T).");
    assert!(has(&report, codes::DEPENDENCY_CYCLE), "{}", report.render());
}

#[test]
fn unbound_head_variable_is_error() {
    let report = analyze_source("initiatedAt(speed(V)=Level, T) :- happensAt(go(V), T).");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNSAFE_VARIABLE)
        .expect("RL0401 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("Level"), "{}", d.message);
}

#[test]
fn terminated_head_variables_are_exempt() {
    // The gold maritime description terminates `stopped(V)=_Value` with a
    // free value variable: the engine matches it against whatever holds.
    let report = analyze_source(
        "initiatedAt(stopped(V)=true, T) :- happensAt(stop_start(V), T).\n\
         terminatedAt(stopped(V)=Value, T) :- happensAt(gap_start(V), T), q(Value).",
    );
    assert!(!has(&report, codes::UNSAFE_VARIABLE), "{}", report.render());
}

#[test]
fn unbound_comparison_variable_is_error() {
    let report = analyze_source("initiatedAt(fast(V)=true, T) :- happensAt(go(V), T), Speed > 5.");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNSAFE_VARIABLE)
        .expect("RL0401 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("Speed"), "{}", d.message);
}

#[test]
fn eq_comparison_binds_its_variable() {
    let report = analyze_source(
        "initiatedAt(fast(V)=true, T) :- happensAt(velocity(V, Speed), T), \
         Margin = Speed + 2, Margin > 5.",
    );
    assert!(!has(&report, codes::UNSAFE_VARIABLE), "{}", report.render());
}

#[test]
fn unbound_variable_in_negated_literal_is_warning() {
    let report = analyze_source(
        "initiatedAt(idle(V)=true, T) :- happensAt(stop(V), T), \
         not happensAt(move(V, Speed), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNSAFE_VARIABLE)
        .expect("RL0401 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("Speed"), "{}", d.message);
    // Underscore-prefixed wildcards are intentional and exempt (they also
    // silence the singleton warning).
    let report = analyze_source(
        "initiatedAt(idle(V)=true, T) :- happensAt(stop(V), T), \
         not happensAt(move(V, _Speed), T).",
    );
    assert!(!has(&report, codes::UNSAFE_VARIABLE), "{}", report.render());
}

#[test]
fn singleton_variable_is_warning_with_rename_suggestion() {
    let report = analyze_source("initiatedAt(on(X)=true, T) :- happensAt(up(X, Mode), T).");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::SINGLETON_VARIABLE)
        .expect("RL0402 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("Mode"), "{}", d.message);
    assert!(d.suggestion.as_deref().unwrap_or("").contains("_Mode"));
    // Underscore prefix silences it.
    let report = analyze_source("initiatedAt(on(X)=true, T) :- happensAt(up(X, _Mode), T).");
    assert!(
        !has(&report, codes::SINGLETON_VARIABLE),
        "{}",
        report.render()
    );
}

#[test]
fn terminated_never_initiated_is_dead_rule() {
    let report = analyze_source("terminatedAt(on(X)=true, T) :- happensAt(down(X), T).");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DEAD_RULE)
        .expect("RL0501 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("never initiated"), "{}", d.message);
}

#[test]
fn termination_value_never_produced_is_dead_rule() {
    let report = analyze_source(
        "initiatedAt(mode(X)=fast, T) :- happensAt(speedUp(X), T).\n\
         terminatedAt(mode(X)=slow, T) :- happensAt(stop(X), T).",
    );
    assert!(has(&report, codes::DEAD_RULE), "{}", report.render());
    // A variable termination value matches any initiation: not dead.
    let report = analyze_source(
        "initiatedAt(mode(X)=fast, T) :- happensAt(speedUp(X), T).\n\
         terminatedAt(mode(X)=_Value, T) :- happensAt(stop(X), T).",
    );
    assert!(!has(&report, codes::DEAD_RULE), "{}", report.render());
}

#[test]
fn rule_requiring_never_holding_fluent_is_dead() {
    let report = analyze_source(
        "terminatedAt(ghost(X)=true, T) :- happensAt(down(X), T).\n\
         initiatedAt(watch(X)=true, T) :- happensAt(up(X), T), holdsAt(ghost(X)=true, T).",
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::DEAD_RULE && d.message.contains("can never fire")),
        "{}",
        report.render()
    );
}

#[test]
fn duplicate_and_subsumed_clauses_are_warnings() {
    // Exact duplicate modulo variable names.
    let report = analyze_source(
        "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).\n\
         initiatedAt(on(V)=true, T2) :- happensAt(up(V), T2).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DUPLICATE_CLAUSE)
        .expect("RL0502 fires");
    assert!(d.message.contains("duplicate"), "{}", d.message);
    assert_eq!(d.clause, Some(1));

    // Subsumption: the longer body is redundant.
    let report = analyze_source(
        "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).\n\
         initiatedAt(on(X)=true, T) :- happensAt(up(X), T), holdsAt(other(X)=false, T).\n\
         initiatedAt(other(X)=true, T) :- happensAt(up(X), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DUPLICATE_CLAUSE)
        .expect("RL0502 fires");
    assert!(d.message.contains("subsumed"), "{}", d.message);
}

#[test]
fn unused_declaration_is_warning_anchored_at_declaration() {
    let report = analyze_source(
        "inputEvent(up/1).\ninputEvent(down/1).\n\
         initiatedAt(on(X)=true, T) :- happensAt(up(X), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNUSED_DECLARATION)
        .expect("RL0503 fires");
    assert!(d.message.contains("down/1"), "{}", d.message);
    assert_eq!(d.clause, Some(1));
}

#[test]
fn json_rendering_is_stable_and_complete() {
    let report = analyze_source(
        "initiatedAt(moving(V)=true, T) :- happensAt(go(V), T), holdsAt(engine(V)=on, T).",
    );
    let json = report.to_json();
    let arr = match &json {
        serde_json::Value::Array(a) => a,
        other => panic!("expected array, got {other:?}"),
    };
    assert_eq!(arr.len(), report.diagnostics.len());
    for item in arr {
        for key in [
            "code",
            "severity",
            "clause",
            "line",
            "col",
            "message",
            "suggestion",
        ] {
            assert!(item.get(key).is_some(), "missing key {key} in {item:?}");
        }
    }
    let line = serde_json::to_string(&json).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&line).unwrap();
    assert_eq!(parsed, json);
}

#[test]
fn report_ordering_is_deterministic() {
    let src = "terminatedAt(a(X)=true, T) :- happensAt(down(X), T), holdsAt(nope(X)=true, T).\n\
               initiatedAt(b(Y)=true, T) :- happensAt(up(Y, Z), T).";
    let a = analyze_source(src);
    let b = analyze_source(src);
    assert_eq!(a.diagnostics, b.diagnostics);
    let clauses: Vec<Option<usize>> = a.diagnostics.iter().map(|d| d.clause).collect();
    let mut sorted = clauses.clone();
    sorted.sort();
    assert_eq!(clauses, sorted);
    assert!(codes_of(&a).len() >= 2);
}

// ---------------------------------------------------------------------
// RL1xxx: flow analysis
// ---------------------------------------------------------------------

#[test]
fn contradictory_comparison_fires_rl1001() {
    let report = analyze_source(
        "initiatedAt(hot(V)=true, T) :- happensAt(reading(V, C), T), C > 10, C < 5.\n\
         terminatedAt(hot(V)=true, T) :- happensAt(cool(V), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::EMPTY_RULE)
        .expect("RL1001 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.clause, Some(0));
    assert!(d.message.contains("statically empty"), "{}", d.message);
    // No clause-local RL0xxx pass sees this.
    assert!(!has(&report, codes::DEAD_RULE));
}

#[test]
fn disjoint_fluent_value_fires_rl1001() {
    let report = analyze_source(
        "initiatedAt(gear(V)=on, T) :- happensAt(lower(V), T).\n\
         terminatedAt(gear(V)=on, T) :- happensAt(raise(V), T).\n\
         initiatedAt(trawl(V)=true, T) :- happensAt(go(V), T), holdsAt(gear(V)=off, T).\n\
         terminatedAt(trawl(V)=true, T) :- happensAt(stop(V), T).",
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::EMPTY_RULE)
        .expect("RL1001 fires");
    assert_eq!(d.clause, Some(2));
    assert!(d.message.contains("gear/1"), "{}", d.message);
}

#[test]
fn transitively_empty_fluent_fires_rl1002_and_rl0501() {
    // `base` has only an empty initiation, so it can never hold;
    // `upper`'s only initiation requires `base`, so it can never hold
    // either — a chain invisible to any clause-local check. RL0501
    // (flow-driven) fires on the requiring rule, RL1002 on both
    // fluents, and the terminatedAt rules do NOT count as derivations.
    let report = analyze_source(
        "initiatedAt(base(V)=true, T) :- happensAt(e(V), T), 1 > 2.\n\
         terminatedAt(base(V)=true, T) :- happensAt(g(V), T).\n\
         initiatedAt(upper(V)=true, T) :- happensAt(e(V), T), holdsAt(base(V)=true, T).\n\
         terminatedAt(upper(V)=true, T) :- happensAt(g(V), T).",
    );
    let rl1002: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == codes::UNREACHABLE_FLUENT)
        .collect();
    assert_eq!(rl1002.len(), 2, "{}", report.render());
    assert!(rl1002.iter().any(|d| d.message.contains("base/1")));
    assert!(rl1002.iter().any(|d| d.message.contains("upper/1")));
    // The flow-driven RL0501: clause 2 requires a fluent that has
    // derivations but can never hold. The local heuristic alone would
    // miss this (base HAS an initiatedAt rule).
    let rl0501 = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DEAD_RULE)
        .expect("flow-driven RL0501 fires");
    assert_eq!(rl0501.clause, Some(2));
    assert!(
        rl0501.message.contains("can never hold"),
        "{}",
        rl0501.message
    );
}

#[test]
fn rl0501_keeps_historical_wording_for_termination_only_fluents() {
    let report = analyze_source(
        "terminatedAt(ghost(V)=true, T) :- happensAt(e(V), T).\n\
         initiatedAt(f(V)=true, T) :- happensAt(e(V), T), holdsAt(ghost(V)=true, T).\n\
         terminatedAt(f(V)=true, T) :- happensAt(g(V), T).",
    );
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == codes::DEAD_RULE)
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("which is never initiated") && m.contains("ghost/1")),
        "{msgs:?}"
    );
    // The termination-only fluent itself is RL0501 territory, not
    // RL1002 (`f`, whose real initiation is poisoned, still gets one).
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.code == codes::UNREACHABLE_FLUENT && d.message.contains("ghost/1")));
}

#[test]
fn non_terminating_fluent_fires_rl1003() {
    let report = analyze_source("initiatedAt(leak(V)=true, T) :- happensAt(burst(V), T).");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::NON_TERMINATING_FLUENT)
        .expect("RL1003 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("leak/1"), "{}", d.message);
    assert!(d.suggestion.is_some());
    // A cross-value initiation is a termination channel: no finding.
    let cross = analyze_source(
        "initiatedAt(st(V)=lo, T) :- happensAt(a(V), T).\n\
         initiatedAt(st(V)=hi, T) :- happensAt(b(V), T).",
    );
    assert!(
        !has(&cross, codes::NON_TERMINATING_FLUENT),
        "{}",
        cross.render()
    );
    // An empty terminatedAt rule does not count as a termination
    // channel: the flow pass sees through it.
    let empty_term = analyze_source(
        "initiatedAt(leak(V)=true, T) :- happensAt(burst(V), T).\n\
         terminatedAt(leak(V)=true, T) :- happensAt(fix(V, C), T), C > 3, C < 1.",
    );
    assert!(
        has(&empty_term, codes::NON_TERMINATING_FLUENT),
        "{}",
        empty_term.render()
    );
}

#[test]
fn flow_pass_skips_uncompilable_descriptions() {
    // A dependency cycle prevents plan compilation: RL0301 fires, the
    // RL1xxx passes stay silent, and dead_rules falls back to its local
    // heuristic without panicking.
    let report = analyze_source(
        "initiatedAt(a(V)=true, T) :- happensAt(e(V), T), holdsAt(b(V)=true, T).\n\
         initiatedAt(b(V)=true, T) :- happensAt(e(V), T), holdsAt(a(V)=true, T).",
    );
    assert!(has(&report, codes::DEPENDENCY_CYCLE));
    assert!(!has(&report, codes::EMPTY_RULE));
    assert!(!has(&report, codes::UNREACHABLE_FLUENT));
}
