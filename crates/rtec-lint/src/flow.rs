//! `RL1xxx` flow diagnostics: findings derived from `rtec-analysis`'s
//! whole-program abstract interpretation of the evaluation plan.
//!
//! Where the `RL0xxx` passes reason about one clause (or one dependency
//! edge) at a time, the flow pass propagates value domains and
//! reachability through the entire stratified program, so it catches
//! rules that are individually well-formed but *jointly* dead — a
//! contradiction only visible after narrowing against background facts,
//! a fluent value no upstream rule can produce, or emptiness that flows
//! transitively through a chain of dependent fluents.
//!
//! Routing: the analysis classifies each empty rule with an
//! [`EmptyReason`]; reasons that duplicate an existing `RL0xxx` finding
//! are routed there instead of double-reporting —
//! [`EmptyReason::NeverHolds`] feeds `RL0501` (see
//! [`checks::dead_rules`](crate::checks::dead_rules)) and
//! [`EmptyReason::UnreachableTrigger`] is already `RL0102`.

use crate::checks::diag;
use crate::model::DescriptionModel;
use crate::{codes, Diagnostic};
use rtec::ast::FluentKey;
use rtec::description::EventDescription;
use rtec::error::Severity;
use rtec_analysis::{Analysis, EmptyReason, RuleKind};
use std::collections::BTreeSet;

/// Runs the whole-program flow analysis. `None` when the description
/// does not compile to a plan (e.g. a dependency cycle — `RL0301`
/// already reports that), in which case the `RL1xxx` passes are
/// skipped and `dead_rules` falls back to its local heuristic.
pub fn compute(desc: &EventDescription) -> Option<Analysis> {
    desc.compile().ok().map(|c| rtec_analysis::analyze(&c))
}

/// The defined fluents that can never hold under lint semantics —
/// consumed by `dead_rules` part (b) so that `RL0501` also fires for
/// rules that are only reachable through statically-empty fluents.
pub fn never_holding(analysis: &Analysis, model: &DescriptionModel<'_>) -> BTreeSet<FluentKey> {
    analysis
        .never_holding()
        .filter(|f| !model.input_fluents.contains(&f.key))
        .map(|f| f.key)
        .collect()
}

/// RL1001 / RL1002 / RL1003.
pub fn flow_lints(analysis: &Analysis, model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    // RL1001: statically-empty rule bodies. Only reasons with no
    // dedicated RL0xxx code are reported here.
    for r in &analysis.rules {
        let Some(reason) = &r.empty else { continue };
        if matches!(
            reason,
            EmptyReason::Contradiction(_)
                | EmptyReason::DisjointValue { .. }
                | EmptyReason::EmptyAlgebra { .. }
        ) {
            out.push(diag(
                model,
                codes::EMPTY_RULE,
                Severity::Warning,
                Some(r.clause),
                format!("rule body is statically empty: {}", reason.describe()),
                Some(
                    "this rule can never fire on any input stream; fix the condition or remove it"
                        .into(),
                ),
            ));
        }
    }

    for f in &analysis.fluents {
        if model.input_fluents.contains(&f.key) {
            continue;
        }
        let anchor = f.clauses.first().copied();
        if !f.can_hold {
            // Only meaningful when something actually tries to derive
            // the fluent; a fluent with nothing but terminatedAt rules
            // is RL0501's "never initiated" finding.
            let has_derivation = analysis
                .rules
                .iter()
                .any(|r| r.head == f.key && r.kind != RuleKind::Terminated);
            if has_derivation {
                out.push(diag(
                    model,
                    codes::UNREACHABLE_FLUENT,
                    Severity::Warning,
                    anchor,
                    format!(
                        "fluent `{}` can never hold: every rule deriving it is statically empty",
                        f.name
                    ),
                    None,
                ));
            }
        } else if f.can_terminate == Some(false) {
            out.push(diag(
                model,
                codes::NON_TERMINATING_FLUENT,
                Severity::Warning,
                anchor,
                format!(
                    "fluent `{}` can never terminate once initiated: no satisfiable \
                     terminatedAt rule and a single initiation value, so its intervals \
                     only ever close at the forget horizon",
                    f.name
                ),
                Some("add a terminatedAt rule (or a second initiation value) for it".into()),
            ));
        }
    }
}
