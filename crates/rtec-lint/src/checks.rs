//! The individual analysis passes. Each takes the prebuilt
//! [`DescriptionModel`] and appends [`Diagnostic`]s; `analyze` sorts
//! the combined list afterwards.

use crate::model::DescriptionModel;
use crate::{codes, Diagnostic};
use rtec::ast::{BodyLiteral, CmpOp, FluentKey, SimpleKind, StaticLiteral};
use rtec::error::Severity;
use rtec::semantics::FluentGraph;
use rtec::symbol::Symbol;
use rtec::term::Term;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) fn diag(
    model: &DescriptionModel<'_>,
    code: &'static str,
    severity: Severity,
    clause: Option<usize>,
    message: String,
    suggestion: Option<String>,
) -> Diagnostic {
    Diagnostic {
        code,
        severity,
        clause,
        pos: clause
            .and_then(|c| model.desc.clauses.get(c))
            .map(|c| c.pos),
        message,
        suggestion,
    }
}

/// RL0101 / RL0102: fluents referenced but never defined or declared;
/// events used but not declared (when declarations close the schema).
pub fn undefined_references(model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    let severity = if model.has_declarations {
        Severity::Error
    } else {
        Severity::Warning
    };
    let mut seen = BTreeSet::new();
    for r in &model.fluent_refs {
        if model.fluent_known(r.key) || !seen.insert(r.key) {
            continue;
        }
        let known = model
            .defined
            .keys()
            .copied()
            .chain(model.input_fluents.iter().copied());
        let suggestion = model
            .nearest_key(r.key, known)
            .map(|k| format!("did you mean `{}`?", model.key_name(k)));
        let tail = if model.has_declarations {
            " and is not declared as an input fluent"
        } else {
            ""
        };
        out.push(diag(
            model,
            codes::UNDEFINED_FLUENT,
            severity,
            Some(r.clause),
            format!(
                "fluent `{}` is referenced but never defined{tail}",
                model.key_name(r.key)
            ),
            suggestion,
        ));
    }
    if !model.has_declarations {
        return;
    }
    let mut seen = BTreeSet::new();
    for r in &model.event_refs {
        if model.input_events.contains(&r.key) || !seen.insert(r.key) {
            continue;
        }
        let suggestion = model
            .nearest_key(r.key, model.input_events.iter().copied())
            .map(|k| format!("did you mean `{}`?", model.key_name(k)));
        out.push(diag(
            model,
            codes::UNDECLARED_EVENT,
            Severity::Error,
            Some(r.clause),
            format!(
                "event `{}` is not declared as an input event",
                model.key_name(r.key)
            ),
            suggestion,
        ));
    }
}

/// RL0201: one name used with more than one arity within a namespace
/// (events, fluents, background predicates). Atom constants (arity 0)
/// are exempt — `sar` the constant and `sar/1` the fluent may coexist.
pub fn arity_consistency(model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    type Uses = BTreeMap<Symbol, BTreeMap<usize, Vec<Option<usize>>>>;
    let mut namespaces: [(&str, Uses); 3] = [
        ("event", BTreeMap::new()),
        ("fluent", BTreeMap::new()),
        ("background predicate", BTreeMap::new()),
    ];
    let mut record = |ns: usize, key: FluentKey, clause: Option<usize>| {
        if key.1 == 0 {
            return;
        }
        namespaces[ns]
            .1
            .entry(key.0)
            .or_default()
            .entry(key.1)
            .or_default()
            .push(clause);
    };
    for r in &model.event_refs {
        record(0, r.key, Some(r.clause));
    }
    for &key in &model.input_events {
        record(0, key, None);
    }
    for r in &model.fluent_refs {
        record(1, r.key, Some(r.clause));
    }
    for (&key, def) in &model.defined {
        for &c in def
            .init_clauses
            .iter()
            .chain(&def.term_clauses)
            .chain(&def.static_clauses)
        {
            record(1, key, Some(c));
        }
    }
    for &key in &model.input_fluents {
        record(1, key, None);
    }
    for &(sig, clause) in &model.atemporal_sigs {
        record(2, sig, Some(clause));
    }
    for &sig in &model.fact_sigs {
        record(2, sig, None);
    }

    for (ns_name, uses) in &namespaces {
        for (&name, arities) in uses {
            if arities.len() < 2 {
                continue;
            }
            // Anchor at the least-used arity: that is usually the typo.
            let (&odd_arity, odd_uses) = arities
                .iter()
                .min_by_key(|(_, v)| v.len())
                .expect("at least two arities");
            let listing = arities
                .iter()
                .map(|(a, v)| {
                    format!(
                        "{}/{} ({} use{})",
                        model.symbols.name(name),
                        a,
                        v.len(),
                        if v.len() == 1 { "" } else { "s" }
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let clause = odd_uses.iter().flatten().copied().next();
            out.push(diag(
                model,
                codes::ARITY_MISMATCH,
                Severity::Warning,
                clause,
                format!(
                    "{ns_name} `{}` is used with inconsistent arities: {listing}",
                    model.symbols.name(name)
                ),
                Some(format!(
                    "check the arguments of `{}/{odd_arity}` against the other uses",
                    model.symbols.name(name)
                )),
            ));
        }
    }
}

/// RL0202: a fluent defined by both simple (`initiatedAt`/`terminatedAt`)
/// and static (`holdsFor`) rules — the engine rejects such definitions —
/// and names used as both events and fluents.
pub fn kind_conflicts(model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    for (&key, def) in &model.defined {
        let simple = def.init_clauses.iter().chain(&def.term_clauses).min();
        let stat = def.static_clauses.iter().min();
        if let (Some(&simple_clause), Some(&static_clause)) = (simple, stat) {
            out.push(diag(
                model,
                codes::KIND_CONFLICT,
                Severity::Error,
                Some(static_clause.max(simple_clause)),
                format!(
                    "fluent `{}` is defined both as a simple fluent (initiatedAt/terminatedAt, clause {}) and as a statically-determined fluent (holdsFor, clause {})",
                    model.key_name(key),
                    simple_clause,
                    static_clause
                ),
                Some("keep either the initiatedAt/terminatedAt rules or the holdsFor rules, not both".into()),
            ));
        }
    }

    let event_keys: BTreeSet<FluentKey> = model
        .event_refs
        .iter()
        .map(|r| r.key)
        .chain(model.input_events.iter().copied())
        .collect();
    let mut seen = BTreeSet::new();
    for r in &model.fluent_refs {
        if event_keys.contains(&r.key) && seen.insert(r.key) {
            out.push(diag(
                model,
                codes::KIND_CONFLICT,
                Severity::Warning,
                Some(r.clause),
                format!(
                    "`{}` is used both as an event (happensAt) and as a fluent",
                    model.key_name(r.key)
                ),
                None,
            ));
        }
    }
    for (&key, def) in &model.defined {
        if event_keys.contains(&key) && seen.insert(key) {
            let clause = def
                .init_clauses
                .iter()
                .chain(&def.term_clauses)
                .chain(&def.static_clauses)
                .min()
                .copied();
            out.push(diag(
                model,
                codes::KIND_CONFLICT,
                Severity::Warning,
                clause,
                format!(
                    "`{}` is used both as an event (happensAt) and defined as a fluent",
                    model.key_name(key)
                ),
                None,
            ));
        }
    }
}

/// RL0301: cycles in the fluent dependency graph. A cycle makes the
/// engine's stratified bottom-up evaluation impossible; `compile()`
/// would fail with `CyclicDependency`, so the analyzer reports it
/// first, with positions. The graph itself — and the cycle enumeration —
/// lives in [`rtec::semantics`], shared with the compiler's stratifier
/// and rtec-plan's stratum schedule.
pub fn dependency_cycles(model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    // clause index -> defined key, so body refs can be attributed.
    let mut clause_defines: BTreeMap<usize, FluentKey> = BTreeMap::new();
    for (&key, def) in &model.defined {
        for &c in def
            .init_clauses
            .iter()
            .chain(&def.term_clauses)
            .chain(&def.static_clauses)
        {
            clause_defines.insert(c, key);
        }
    }
    let mut graph = FluentGraph::new(model.defined.keys().copied());
    for r in &model.fluent_refs {
        if let Some(&from) = clause_defines.get(&r.clause) {
            graph.add_dependency(from, r.key);
        }
    }
    for cycle in graph.cycles() {
        let mut path: Vec<String> = cycle.iter().map(|&k| model.key_name(k)).collect();
        path.push(model.key_name(cycle[0]));
        let clause = cycle
            .iter()
            .filter_map(|k| {
                let def = model.defined.get(k)?;
                def.init_clauses
                    .iter()
                    .chain(&def.term_clauses)
                    .chain(&def.static_clauses)
                    .min()
                    .copied()
            })
            .min();
        out.push(diag(
            model,
            codes::DEPENDENCY_CYCLE,
            Severity::Error,
            clause,
            format!(
                "cyclic fluent dependency: {}; no stratified evaluation order exists",
                path.join(" -> ")
            ),
            Some("break the cycle by removing or restructuring one of the references".into()),
        ));
    }
}

/// RL0401: range restriction / safety. Head variables of `initiatedAt`
/// and `holdsFor` rules, and variables in comparisons, must be bound by
/// a preceding positive body literal (errors); variables in negated
/// literals that are nowhere bound are reported as warnings.
/// `terminatedAt` heads are exempt: the engine matches them against
/// already-initiated instances, so gold-standard rules such as
/// `terminatedAt(stopped(V)=_Value, T)` are legitimate.
pub fn variable_safety(model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    let underscore =
        |model: &DescriptionModel<'_>, v: Symbol| model.symbols.name(v).starts_with('_');

    for rule in &model.validated.simple {
        let mut bound: BTreeSet<Symbol> = BTreeSet::new();
        bound.insert(rule.time_var);
        let mut reported: BTreeSet<Symbol> = BTreeSet::new();
        for lit in &rule.body {
            match lit {
                BodyLiteral::HappensAt { negated, event } => {
                    step_pattern(
                        model,
                        &mut bound,
                        &mut reported,
                        *negated,
                        &[event],
                        rule.clause,
                        out,
                        &underscore,
                    );
                }
                BodyLiteral::HoldsAt { negated, fvp } => {
                    step_pattern(
                        model,
                        &mut bound,
                        &mut reported,
                        *negated,
                        &[&fvp.fluent, &fvp.value],
                        rule.clause,
                        out,
                        &underscore,
                    );
                }
                BodyLiteral::Atemporal { negated, pattern } => {
                    step_pattern(
                        model,
                        &mut bound,
                        &mut reported,
                        *negated,
                        &[pattern],
                        rule.clause,
                        out,
                        &underscore,
                    );
                }
                BodyLiteral::Compare { op, lhs, rhs } => {
                    step_compare(
                        model,
                        &mut bound,
                        &mut reported,
                        *op,
                        lhs,
                        rhs,
                        rule.clause,
                        out,
                    );
                }
            }
        }
        if rule.kind == SimpleKind::Initiated {
            let mut head_vars = Vec::new();
            rule.fvp.fluent.variables_into(&mut head_vars);
            rule.fvp.value.variables_into(&mut head_vars);
            for v in head_vars {
                if !bound.contains(&v) && reported.insert(v) {
                    out.push(diag(
                        model,
                        codes::UNSAFE_VARIABLE,
                        Severity::Error,
                        Some(rule.clause),
                        format!(
                            "head variable `{}` of initiatedAt rule is never bound by a positive body literal",
                            model.symbols.name(v)
                        ),
                        None,
                    ));
                }
            }
        }
    }

    for rule in &model.validated.statics {
        let mut bound: BTreeSet<Symbol> = BTreeSet::new();
        let mut reported: BTreeSet<Symbol> = BTreeSet::new();
        for lit in &rule.body {
            match lit {
                StaticLiteral::HoldsFor { fvp, .. } => {
                    step_pattern(
                        model,
                        &mut bound,
                        &mut reported,
                        false,
                        &[&fvp.fluent, &fvp.value],
                        rule.clause,
                        out,
                        &underscore,
                    );
                }
                StaticLiteral::Atemporal { negated, pattern } => {
                    step_pattern(
                        model,
                        &mut bound,
                        &mut reported,
                        *negated,
                        &[pattern],
                        rule.clause,
                        out,
                        &underscore,
                    );
                }
                StaticLiteral::Compare { op, lhs, rhs } => {
                    step_compare(
                        model,
                        &mut bound,
                        &mut reported,
                        *op,
                        lhs,
                        rhs,
                        rule.clause,
                        out,
                    );
                }
                StaticLiteral::Union { .. }
                | StaticLiteral::Intersect { .. }
                | StaticLiteral::RelComplement { .. } => {}
            }
        }
        let mut head_vars = Vec::new();
        rule.fvp.fluent.variables_into(&mut head_vars);
        rule.fvp.value.variables_into(&mut head_vars);
        for v in head_vars {
            if !bound.contains(&v) && reported.insert(v) {
                out.push(diag(
                    model,
                    codes::UNSAFE_VARIABLE,
                    Severity::Error,
                    Some(rule.clause),
                    format!(
                        "head variable `{}` of holdsFor rule is never bound by a positive body literal",
                        model.symbols.name(v)
                    ),
                    None,
                ));
            }
        }
    }
}

/// One positive or negated pattern literal: positive binds its
/// variables; negated requires them already bound (warning otherwise —
/// an unbound variable under negation quantifies over all instances,
/// which is rarely what the author meant).
#[allow(clippy::too_many_arguments)]
fn step_pattern(
    model: &DescriptionModel<'_>,
    bound: &mut BTreeSet<Symbol>,
    reported: &mut BTreeSet<Symbol>,
    negated: bool,
    terms: &[&Term],
    clause: usize,
    out: &mut Vec<Diagnostic>,
    underscore: &impl Fn(&DescriptionModel<'_>, Symbol) -> bool,
) {
    let mut vars = Vec::new();
    for t in terms {
        t.variables_into(&mut vars);
    }
    if negated {
        for v in vars {
            if !bound.contains(&v) && !underscore(model, v) && reported.insert(v) {
                out.push(diag(
                    model,
                    codes::UNSAFE_VARIABLE,
                    Severity::Warning,
                    Some(clause),
                    format!(
                        "variable `{}` in negated literal is not bound by a preceding positive literal",
                        model.symbols.name(v)
                    ),
                    Some(format!(
                        "bind `{}` earlier in the body, or prefix it with `_` if any instance should match",
                        model.symbols.name(v)
                    )),
                ));
            }
        }
    } else {
        bound.extend(vars);
    }
}

/// One comparison literal: `V = expr` with `V` unbound acts as an
/// assignment and binds `V`; every other variable must already be
/// bound, otherwise the engine skips the comparison at run time.
#[allow(clippy::too_many_arguments)]
fn step_compare(
    model: &DescriptionModel<'_>,
    bound: &mut BTreeSet<Symbol>,
    reported: &mut BTreeSet<Symbol>,
    op: CmpOp,
    lhs: &Term,
    rhs: &Term,
    clause: usize,
    out: &mut Vec<Diagnostic>,
) {
    if op == CmpOp::Eq {
        // `X = expr` / `expr = X` with exactly one unbound side binds X.
        let unbound_var = |t: &Term| match t {
            Term::Var(v) if !bound.contains(v) => Some(*v),
            _ => None,
        };
        let all_bound = |t: &Term| t.variables().iter().all(|v| bound.contains(v));
        if let Some(v) = unbound_var(lhs) {
            if all_bound(rhs) {
                bound.insert(v);
                return;
            }
        }
        if let Some(v) = unbound_var(rhs) {
            if all_bound(lhs) {
                bound.insert(v);
                return;
            }
        }
    }
    let mut vars = Vec::new();
    lhs.variables_into(&mut vars);
    rhs.variables_into(&mut vars);
    for v in vars {
        if !bound.contains(&v) && reported.insert(v) {
            out.push(diag(
                model,
                codes::UNSAFE_VARIABLE,
                Severity::Error,
                Some(clause),
                format!(
                    "variable `{}` in comparison is not bound by a preceding positive literal; the engine will skip the comparison",
                    model.symbols.name(v)
                ),
                None,
            ));
        }
    }
}

/// RL0402: variables occurring exactly once in their clause. A
/// leading underscore marks a singleton as intentional.
pub fn singleton_variables(model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    for (idx, clause) in model.desc.clauses.iter().enumerate() {
        let mut occurrences = Vec::new();
        clause.head.variables_into(&mut occurrences);
        for t in &clause.body {
            t.variables_into(&mut occurrences);
        }
        let mut counts: BTreeMap<Symbol, usize> = BTreeMap::new();
        for v in occurrences {
            *counts.entry(v).or_default() += 1;
        }
        for (v, n) in counts {
            let name = model.symbols.name(v);
            if n == 1 && !name.starts_with('_') {
                out.push(diag(
                    model,
                    codes::SINGLETON_VARIABLE,
                    Severity::Warning,
                    Some(idx),
                    format!("singleton variable `{name}`"),
                    Some(format!(
                        "rename to `_{name}` if intentional, or check for a typo against the other variables"
                    )),
                ));
            }
        }
    }
}

/// RL0501: rules that can never fire — `terminatedAt` rules for a
/// fluent (or fluent value) that is never initiated, and rules whose
/// positive body references a fluent that can never hold.
///
/// `flow_never_holds` carries the flow analysis' never-holding set
/// (fluents whose every derivation is statically empty, transitively).
/// When the description does not compile to a plan the caller passes
/// `None` and part (b) falls back to the local heuristic — fluents
/// defined only by `terminatedAt` rules.
pub fn dead_rules(
    model: &DescriptionModel<'_>,
    flow_never_holds: Option<&BTreeSet<FluentKey>>,
    out: &mut Vec<Diagnostic>,
) {
    // (a) terminations of never-initiated fluents / values.
    for rule in &model.validated.simple {
        if rule.kind != SimpleKind::Terminated {
            continue;
        }
        let Some(key) = rule.fvp.key() else { continue };
        if model.input_fluents.contains(&key) {
            continue;
        }
        let Some(def) = model.defined.get(&key) else {
            continue;
        };
        if def.init_clauses.is_empty() && def.static_clauses.is_empty() {
            out.push(diag(
                model,
                codes::DEAD_RULE,
                Severity::Warning,
                Some(rule.clause),
                format!(
                    "rule terminates fluent `{}`, which is never initiated",
                    model.key_name(key)
                ),
                Some("add an initiatedAt rule or remove this termination".into()),
            ));
            continue;
        }
        // Value-level: a ground termination value no ground-or-variable
        // initiation value can produce.
        if rule.fvp.value.is_ground() {
            let init_can_match = model.validated.simple.iter().any(|r| {
                r.kind == SimpleKind::Initiated
                    && r.fvp.key() == Some(key)
                    && (!r.fvp.value.is_ground() || r.fvp.value == rule.fvp.value)
            });
            if !init_can_match && !def.init_clauses.is_empty() {
                out.push(diag(
                    model,
                    codes::DEAD_RULE,
                    Severity::Warning,
                    Some(rule.clause),
                    format!(
                        "rule terminates `{}` with value `{}`, but no initiatedAt rule produces that value",
                        model.key_name(key),
                        rule.fvp.value.display(&model.symbols)
                    ),
                    None,
                ));
            }
        }
    }

    // (b) positive references to fluents that can never hold. With
    // flow facts this covers emptiness that propagates transitively
    // (all initiations statically empty); the fallback only sees the
    // local shape (defined by terminatedAt rules alone).
    let local_never_holds = || -> BTreeSet<FluentKey> {
        model
            .defined
            .iter()
            .filter(|(key, def)| {
                def.init_clauses.is_empty()
                    && def.static_clauses.is_empty()
                    && !def.term_clauses.is_empty()
                    && !model.input_fluents.contains(*key)
            })
            .map(|(&key, _)| key)
            .collect()
    };
    let never_holds: BTreeSet<FluentKey> = match flow_never_holds {
        Some(flow) => flow
            .iter()
            .copied()
            .filter(|key| !model.input_fluents.contains(key))
            .collect(),
        None => local_never_holds(),
    };
    let mut seen = BTreeSet::new();
    for r in &model.fluent_refs {
        if !r.negated && never_holds.contains(&r.key) && seen.insert((r.clause, r.key)) {
            // Keep the historical wording for the historical case; the
            // flow-derived case (initiations exist but are all empty)
            // gets its own phrasing.
            let has_derivations = model
                .defined
                .get(&r.key)
                .is_some_and(|def| !def.init_clauses.is_empty() || !def.static_clauses.is_empty());
            let why = if has_derivations {
                "can never hold"
            } else {
                "is never initiated"
            };
            out.push(diag(
                model,
                codes::DEAD_RULE,
                Severity::Warning,
                Some(r.clause),
                format!(
                    "rule can never fire: it requires fluent `{}`, which {why}",
                    model.key_name(r.key)
                ),
                None,
            ));
        }
    }
}

/// Canonical rendering of a term with variables numbered by first
/// occurrence, for structural clause comparison.
fn canon_term(t: &Term, map: &mut BTreeMap<Symbol, usize>, model: &DescriptionModel<'_>) -> String {
    match t {
        Term::Var(v) => {
            let next = map.len();
            format!("V{}", *map.entry(*v).or_insert(next))
        }
        Term::Atom(s) => model.symbols.name(*s).to_string(),
        Term::Int(n) => n.to_string(),
        Term::Float(f) => format!("{f:?}"),
        Term::Compound(f, args) => {
            let rendered: Vec<String> = args.iter().map(|a| canon_term(a, map, model)).collect();
            format!("{}({})", model.symbols.name(*f), rendered.join(","))
        }
        Term::List(items) => {
            let rendered: Vec<String> = items.iter().map(|a| canon_term(a, map, model)).collect();
            format!("[{}]", rendered.join(","))
        }
    }
}

/// RL0502: duplicate and subsumed clauses, compared structurally after
/// canonical variable renaming. A clause whose body is a strict
/// superset of a same-head clause's body is redundant (subsumed): the
/// smaller rule already fires whenever the larger one would.
pub fn duplicate_clauses(model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    struct Canon {
        head: String,
        body: Vec<String>,
        body_set: BTreeSet<String>,
    }
    let canons: Vec<Canon> = model
        .desc
        .clauses
        .iter()
        .map(|c| {
            let mut map = BTreeMap::new();
            let head = canon_term(&c.head, &mut map, model);
            let body: Vec<String> = c
                .body
                .iter()
                .map(|t| canon_term(t, &mut map, model))
                .collect();
            let body_set = body.iter().cloned().collect();
            Canon {
                head,
                body,
                body_set,
            }
        })
        .collect();

    let mut flagged = BTreeSet::new();
    for j in 0..canons.len() {
        if flagged.contains(&j) {
            continue;
        }
        for i in 0..j {
            if flagged.contains(&i) || canons[i].head != canons[j].head {
                continue;
            }
            if canons[i].body == canons[j].body {
                flagged.insert(j);
                out.push(diag(
                    model,
                    codes::DUPLICATE_CLAUSE,
                    Severity::Warning,
                    Some(j),
                    format!("clause {j} is an exact duplicate of clause {i}"),
                    Some("remove one of the two clauses".into()),
                ));
                break;
            }
            if canons[j].body_set.is_superset(&canons[i].body_set)
                && canons[j].body_set != canons[i].body_set
            {
                flagged.insert(j);
                out.push(diag(
                    model,
                    codes::DUPLICATE_CLAUSE,
                    Severity::Warning,
                    Some(j),
                    format!(
                        "clause {j} is subsumed by clause {i}: its body is a superset of clause {i}'s body under the same head"
                    ),
                    Some(format!("remove clause {j}, or differentiate its head")),
                ));
                break;
            }
            if canons[i].body_set.is_superset(&canons[j].body_set)
                && canons[i].body_set != canons[j].body_set
            {
                flagged.insert(i);
                out.push(diag(
                    model,
                    codes::DUPLICATE_CLAUSE,
                    Severity::Warning,
                    Some(i),
                    format!(
                        "clause {i} is subsumed by clause {j}: its body is a superset of clause {j}'s body under the same head"
                    ),
                    Some(format!("remove clause {i}, or differentiate its head")),
                ));
            }
        }
    }
}

/// RL0503: declared input events/fluents never referenced by any rule.
pub fn unused_declarations(model: &DescriptionModel<'_>, out: &mut Vec<Diagnostic>) {
    let used_events: BTreeSet<FluentKey> = model.event_refs.iter().map(|r| r.key).collect();
    let used_fluents: BTreeSet<FluentKey> = model.fluent_refs.iter().map(|r| r.key).collect();
    for (&key, kind, used) in model
        .input_events
        .iter()
        .map(|k| (k, "inputEvent", &used_events))
        .chain(
            model
                .input_fluents
                .iter()
                .map(|k| (k, "inputFluent", &used_fluents)),
        )
    {
        if used.contains(&key) {
            continue;
        }
        let clause = declaration_clause(model, kind, key);
        out.push(diag(
            model,
            codes::UNUSED_DECLARATION,
            Severity::Warning,
            clause,
            format!(
                "declared {kind} `{}` is never referenced by any rule",
                model.key_name(key)
            ),
            Some("remove the declaration, or add the missing rule".into()),
        ));
    }
}

/// Finds the clause index of a declaration fact, for anchoring.
fn declaration_clause(model: &DescriptionModel<'_>, kind: &str, key: FluentKey) -> Option<usize> {
    let lookup = |name: &str| {
        model
            .symbols
            .iter()
            .find(|(_, n)| *n == name)
            .map(|(s, _)| s)
    };
    let decl_sym = lookup(kind)?;
    let slash_sym = lookup("/")?;
    model.desc.clauses.iter().position(|c| {
        c.body.is_empty()
            && c.head.signature() == Some((decl_sym, 1))
            && c.head.args().first().is_some_and(|spec| {
                spec.signature() == Some((slash_sym, 2))
                    && spec.args()[0].functor() == Some(key.0)
                    && matches!(spec.args()[1], Term::Int(n) if n as usize == key.1)
            })
    })
}
