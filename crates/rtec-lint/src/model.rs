//! The whole-description model the analysis passes run over: validated
//! rules indexed by fluent key, input declarations, and every use site
//! of every event, fluent, and background predicate.

use rtec::ast::{BodyLiteral, FluentKey, SimpleKind, StaticLiteral};
use rtec::description::EventDescription;
use rtec::symbol::SymbolTable;
use rtec::term::Term;
use rtec::validate::{SysSymbols, ValidatedRules};
use std::collections::{BTreeMap, BTreeSet};

/// Where a rule defining a fluent-value pair's fluent lives.
#[derive(Clone, Debug, Default)]
pub struct FluentDef {
    /// Clause indices of `initiatedAt` rules for this fluent.
    pub init_clauses: Vec<usize>,
    /// Clause indices of `terminatedAt` rules for this fluent.
    pub term_clauses: Vec<usize>,
    /// Clause indices of `holdsFor` rules for this fluent.
    pub static_clauses: Vec<usize>,
}

/// One body reference to a fluent (`holdsAt` or `holdsFor`).
#[derive(Clone, Copy, Debug)]
pub struct FluentRef {
    /// The `(functor, arity)` key of the referenced fluent.
    pub key: FluentKey,
    /// Clause index of the referencing rule.
    pub clause: usize,
    /// Whether the reference sits under negation.
    pub negated: bool,
}

/// One body reference to an event (`happensAt`).
pub type EventRef = FluentRef;

/// Everything the analysis passes need, computed once.
pub struct DescriptionModel<'a> {
    /// The parsed description (raw clauses, for position/variable
    /// checks).
    pub desc: &'a EventDescription,
    /// The per-clause validated rule set.
    pub validated: &'a ValidatedRules,
    /// Interned system symbols (`initiatedAt`, `holdsFor`, …).
    pub sys: &'a SysSymbols,
    /// Symbol table covering the description plus system and
    /// declaration symbols.
    pub symbols: SymbolTable,
    /// Declared input events, from `inputEvent(name/arity).` facts.
    pub input_events: BTreeSet<FluentKey>,
    /// Declared input fluents, from `inputFluent(name/arity).` facts.
    pub input_fluents: BTreeSet<FluentKey>,
    /// Whether any declaration fact is present (declarations are
    /// opt-in: without them the schema is open and undefined references
    /// downgrade to warnings).
    pub has_declarations: bool,
    /// Fluents defined by at least one rule, with the defining clauses.
    pub defined: BTreeMap<FluentKey, FluentDef>,
    /// Every body reference to a fluent.
    pub fluent_refs: Vec<FluentRef>,
    /// Every body reference to an event.
    pub event_refs: Vec<EventRef>,
    /// `(signature, clause)` of every background-predicate pattern in a
    /// rule body.
    pub atemporal_sigs: Vec<(FluentKey, usize)>,
    /// Signatures of ground facts (excluding declaration facts).
    pub fact_sigs: Vec<FluentKey>,
}

impl<'a> DescriptionModel<'a> {
    /// Builds the model from a validated description. `symbols` must be
    /// the table `validated` was produced with; declaration symbols are
    /// interned into it.
    pub fn build(
        desc: &'a EventDescription,
        validated: &'a ValidatedRules,
        sys: &'a SysSymbols,
        symbols: &mut SymbolTable,
    ) -> DescriptionModel<'a> {
        let input_event_sym = symbols.intern("inputEvent");
        let input_fluent_sym = symbols.intern("inputFluent");
        let slash_sym = symbols.intern("/");

        let mut model = DescriptionModel {
            desc,
            validated,
            sys,
            symbols: symbols.clone(),
            input_events: BTreeSet::new(),
            input_fluents: BTreeSet::new(),
            has_declarations: false,
            defined: BTreeMap::new(),
            fluent_refs: Vec::new(),
            event_refs: Vec::new(),
            atemporal_sigs: Vec::new(),
            fact_sigs: Vec::new(),
        };

        // Declarations and ordinary facts.
        for fact in &validated.facts {
            let decl = fact.signature().and_then(|sig| {
                let target = if sig == (input_event_sym, 1) {
                    Some(&mut model.input_events)
                } else if sig == (input_fluent_sym, 1) {
                    Some(&mut model.input_fluents)
                } else {
                    None
                }?;
                let spec = &fact.args()[0];
                if spec.signature() != Some((slash_sym, 2)) {
                    return None;
                }
                let name = spec.args()[0].functor()?;
                let arity = match spec.args()[1] {
                    Term::Int(n) if n >= 0 => n as usize,
                    _ => return None,
                };
                target.insert((name, arity));
                Some(())
            });
            if decl.is_some() {
                model.has_declarations = true;
            } else if let Some(sig) = fact.signature() {
                model.fact_sigs.push(sig);
            }
        }

        // Definitions and use sites from the validated rules.
        for rule in &validated.simple {
            if let Some(key) = rule.fvp.key() {
                let def = model.defined.entry(key).or_default();
                match rule.kind {
                    SimpleKind::Initiated => def.init_clauses.push(rule.clause),
                    SimpleKind::Terminated => def.term_clauses.push(rule.clause),
                }
            }
            for lit in &rule.body {
                match lit {
                    BodyLiteral::HappensAt { negated, event } => {
                        if let Some(key) = event.signature() {
                            model.event_refs.push(EventRef {
                                key,
                                clause: rule.clause,
                                negated: *negated,
                            });
                        }
                    }
                    BodyLiteral::HoldsAt { negated, fvp } => {
                        if let Some(key) = fvp.key() {
                            model.fluent_refs.push(FluentRef {
                                key,
                                clause: rule.clause,
                                negated: *negated,
                            });
                        }
                    }
                    BodyLiteral::Atemporal { pattern, .. } => {
                        if let Some(sig) = pattern.signature() {
                            model.atemporal_sigs.push((sig, rule.clause));
                        }
                    }
                    BodyLiteral::Compare { .. } => {}
                }
            }
        }
        for rule in &validated.statics {
            if let Some(key) = rule.fvp.key() {
                model
                    .defined
                    .entry(key)
                    .or_default()
                    .static_clauses
                    .push(rule.clause);
            }
            for lit in &rule.body {
                match lit {
                    StaticLiteral::HoldsFor { fvp, .. } => {
                        if let Some(key) = fvp.key() {
                            model.fluent_refs.push(FluentRef {
                                key,
                                clause: rule.clause,
                                negated: false,
                            });
                        }
                    }
                    StaticLiteral::Atemporal { pattern, .. } => {
                        if let Some(sig) = pattern.signature() {
                            model.atemporal_sigs.push((sig, rule.clause));
                        }
                    }
                    _ => {}
                }
            }
        }

        model
    }

    /// Whether `key` is satisfiable as a fluent reference: defined by a
    /// rule or declared as an input fluent.
    pub fn fluent_known(&self, key: FluentKey) -> bool {
        self.defined.contains_key(&key) || self.input_fluents.contains(&key)
    }

    /// `name/arity` rendering of a key.
    pub fn key_name(&self, key: FluentKey) -> String {
        format!("{}/{}", self.symbols.name(key.0), key.1)
    }

    /// The nearest name (edit distance ≤ 2, same arity preferred) among
    /// `candidates`, for "did you mean …?" suggestions.
    pub fn nearest_key(
        &self,
        key: FluentKey,
        candidates: impl Iterator<Item = FluentKey>,
    ) -> Option<FluentKey> {
        let name = self.symbols.name(key.0);
        let mut best: Option<(usize, usize, FluentKey)> = None;
        for cand in candidates {
            if cand == key {
                continue;
            }
            let d = crate::edit_distance(name, self.symbols.name(cand.0));
            if d > 2 {
                continue;
            }
            let arity_penalty = usize::from(cand.1 != key.1);
            let score = (d, arity_penalty, cand);
            if best.is_none_or(|b| score < b) {
                best = Some(score);
            }
        }
        best.map(|(_, _, k)| k)
    }
}
