//! Satellite check: the gold-standard maritime event description must
//! be completely lint-clean — zero errors *and* zero warnings — when
//! analyzed together with its input declarations. This pins the
//! analyzer's false-positive rate to zero on the one description the
//! whole pipeline treats as ground truth.

use rtec::description::EventDescription;
use rtec_lint::{analyze, codes};

#[test]
fn gold_description_with_declarations_is_lint_clean() {
    let src = format!(
        "{}\n{}",
        maritime::gold::GOLD_RULES,
        maritime::gold::input_declarations()
    );
    let desc = EventDescription::parse(&src).expect("gold rules parse");
    let report = analyze(&desc);
    assert!(
        report.is_clean(),
        "gold description should be lint-clean, got:\n{}",
        report.render()
    );
}

#[test]
fn gold_description_without_declarations_has_no_errors() {
    // Without declarations the schema is open: the undeclared
    // `proximity` input fluent may surface as a warning at most, and
    // the service must still accept the description at `open`.
    let desc = EventDescription::parse(maritime::gold::GOLD_RULES).expect("gold rules parse");
    let report = analyze(&desc);
    assert!(
        !report.has_errors(),
        "gold without declarations must have no errors, got:\n{}",
        report.render()
    );
    for d in report.warnings() {
        // RL1002 is the flow-analysis consequence of the same open
        // schema: fluents derived from the undeclared inputs can never
        // hold under lint semantics.
        assert!(
            d.code == codes::UNDEFINED_FLUENT
                || d.code == codes::DEAD_RULE
                || d.code == codes::UNREACHABLE_FLUENT,
            "unexpected warning on gold: {}",
            d.render()
        );
    }
}
