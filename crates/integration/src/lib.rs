//! Cross-crate integration tests.
//!
//! The test files live in the repository-level `tests/` directory (wired
//! in via `[[test]]` entries in this crate's manifest) and exercise the
//! full pipeline across crate boundaries: dataset generation -> LLM
//! generation -> similarity -> correction -> windowed recognition ->
//! accuracy, plus semantic cross-checks of the RTEC engine against a
//! brute-force reference evaluator and property-based tests of the
//! similarity metric.

#![forbid(unsafe_code)]
