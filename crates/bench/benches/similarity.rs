//! Similarity-metric cost (Figures 2a/2b): scoring generated event
//! descriptions against the gold standard, per activity and whole-KB.

use adgen_core::evaluation::activity_similarities;
use criterion::{criterion_group, criterion_main, Criterion};
use llmgen::{generate, MockLlm, Model};
use maritime::thresholds::Thresholds;
use simdist::compare_descriptions;
use std::hint::black_box;

fn bench_similarity(c: &mut Criterion) {
    let gold = maritime::gold_event_description();
    let mut llm = MockLlm::new(Model::O1);
    let generated = generate(&mut llm, Model::O1.best_scheme(), &Thresholds::default());
    let generated_desc = generated.description();

    let mut group = c.benchmark_group("similarity");
    group.bench_function("fig2a_per_activity_o1", |b| {
        b.iter(|| black_box(activity_similarities(black_box(&generated), &gold)))
    });
    group.bench_function("whole_description_o1_vs_gold", |b| {
        b.iter(|| black_box(compare_descriptions(&gold, &generated_desc)))
    });
    group.bench_function("whole_description_gold_vs_gold", |b| {
        b.iter(|| black_box(compare_descriptions(&gold, &gold)))
    });
    // The generation step itself (prompting pipeline + error model).
    group.bench_function("generation_pipeline_o1", |b| {
        b.iter(|| {
            let mut m = MockLlm::new(Model::O1);
            black_box(generate(
                &mut m,
                Model::O1.best_scheme(),
                &Thresholds::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
