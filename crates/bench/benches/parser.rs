//! Parsing and validation throughput over the gold maritime event
//! description (the artefact every pipeline stage consumes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use maritime::gold::GOLD_RULES;
use rtec::EventDescription;
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    group.throughput(Throughput::Bytes(GOLD_RULES.len() as u64));
    group.bench_function("parse_gold_rules", |b| {
        b.iter(|| black_box(EventDescription::parse(black_box(GOLD_RULES)).unwrap()))
    });
    group.bench_function("parse_lenient_gold_rules", |b| {
        b.iter(|| black_box(EventDescription::parse_lenient(black_box(GOLD_RULES))))
    });
    let desc = EventDescription::parse(GOLD_RULES).unwrap();
    group.bench_function("compile_gold_rules", |b| {
        b.iter(|| black_box(desc.compile().unwrap()))
    });
    group.bench_function("round_trip_render", |b| {
        b.iter(|| black_box(desc.to_source()))
    });
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
