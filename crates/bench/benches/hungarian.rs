//! Kuhn–Munkres scaling: the O(n^3) optimal matching vs the naive
//! factorial search the paper dismisses (Section 4.1).

use bench::XorShift;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simdist::hungarian::{assignment, assignment_naive};
use std::hint::black_box;

fn random_matrix(n: usize, rng: &mut XorShift) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..n).map(|_| rng.next_f64()).collect())
        .collect()
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [4usize, 8, 16, 32, 64, 128] {
        let mut rng = XorShift(0xfeed + n as u64);
        let m = random_matrix(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("kuhn_munkres", n), &m, |b, m| {
            b.iter(|| black_box(assignment(black_box(m))))
        });
    }
    // The naive search is only feasible for tiny n — the comparison the
    // paper makes when motivating Kuhn-Munkres.
    for n in [4usize, 6, 8] {
        let mut rng = XorShift(0xbeef + n as u64);
        let m = random_matrix(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive_factorial", n), &m, |b, m| {
            b.iter(|| black_box(assignment_naive(black_box(m))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hungarian);
criterion_main!(benches);
