//! Recognition throughput (Figure 2c's engine runs) and the window-size
//! ablation: RTEC's cost as a function of the processing window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtec::{Engine, EngineConfig};
use std::hint::black_box;

fn bench_recognition(c: &mut Criterion) {
    let dataset = bench::small_dataset();
    let gold = dataset.gold_description();
    let compiled = gold.compile().expect("gold compiles");
    let horizon = dataset.horizon() + 1;

    let mut group = c.benchmark_group("recognition");
    group.sample_size(10);
    group.throughput(Throughput::Elements(dataset.stream.len() as u64));

    group.bench_function("gold_batch", |b| {
        b.iter(|| {
            let mut engine = Engine::new(&compiled, EngineConfig::default());
            dataset.stream.load_into(&mut engine);
            engine.run_to(horizon);
            black_box(engine.into_output().len())
        })
    });

    for window in [900i64, 3600, 21_600] {
        group.bench_with_input(
            BenchmarkId::new("gold_windowed", window),
            &window,
            |b, &w| {
                b.iter(|| {
                    let mut engine = Engine::new(&compiled, EngineConfig::windowed(w));
                    dataset.stream.load_into(&mut engine);
                    engine.run_to(horizon);
                    black_box(engine.into_output().len())
                })
            },
        );
    }

    // End-to-end dataset generation (AIS synthesis + preprocessing).
    group.bench_function("dataset_generation_small", |b| {
        b.iter(|| black_box(bench::small_dataset().stream.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_recognition);
criterion_main!(benches);
