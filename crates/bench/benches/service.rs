//! Streaming-service throughput: the maritime critical-event stream
//! replayed through an in-process rtec-service session (ingest → tick →
//! query), at several shard counts, measured in events per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maritime::{BrestScenario, Dataset};
use rtec_service::{Session, SessionConfig};
use std::hint::black_box;

struct Workload {
    gold: String,
    events: Vec<(i64, String)>,
    intervals: Vec<rtec_service::client::IntervalDecl>,
    horizon: i64,
}

fn workload() -> Workload {
    let dataset = Dataset::generate(&BrestScenario::small());
    let symbols = &dataset.stream.symbols;
    let mut events: Vec<(i64, String)> = dataset
        .stream
        .events()
        .iter()
        .map(|(ev, t)| (*t, ev.display(symbols).to_string()))
        .collect();
    events.sort_by_key(|&(t, _)| t);
    let intervals = dataset
        .stream
        .intervals()
        .iter()
        .map(|(fvp, list)| {
            (
                fvp.fluent.display(symbols).to_string(),
                fvp.value.display(symbols).to_string(),
                list.iter().map(|iv| (iv.start, iv.end)).collect(),
            )
        })
        .collect();
    Workload {
        gold: format!("{}\n{}", maritime::gold::GOLD_RULES, dataset.background),
        events,
        intervals,
        horizon: dataset.horizon() + 1,
    }
}

fn replay(w: &Workload, shards: usize, ticks: i64) -> usize {
    replay_with(w, shards, ticks, None)
}

fn replay_with(w: &Workload, shards: usize, ticks: i64, reorder_slack: Option<i64>) -> usize {
    let mut session = Session::open(
        "bench",
        &w.gold,
        SessionConfig {
            window: None,
            shards,
            queue_capacity: 1024,
            reorder_slack,
            ..SessionConfig::default()
        },
    )
    .expect("open");
    for (fluent, value, pairs) in &w.intervals {
        session
            .ingest_intervals(fluent, value, pairs)
            .expect("intervals");
    }
    let step = (w.horizon / ticks).max(1);
    let mut next_tick = step;
    for &(t, ref ev) in &w.events {
        if t >= next_tick {
            session.tick(next_tick - 1).expect("tick");
            next_tick += ((t - next_tick) / step + 1) * step;
        }
        session.ingest_event(ev, t).expect("event");
    }
    session.tick(w.horizon).expect("final tick");
    let (out, _) = session.query().expect("query");
    let n = out.len();
    session.close().expect("close");
    n
}

fn bench_service(c: &mut Criterion) {
    // Per-iteration session open/close info events would swamp the
    // bench output; keep only warnings (forget drops, backpressure).
    rtec_obs::set_max_level(rtec_obs::Level::Warn);
    let w = workload();
    let n_events = w.events.len() as u64;
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_events));
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("replay_maritime", shards),
            &shards,
            |b, &shards| b.iter(|| black_box(replay(&w, shards, 12))),
        );
    }
    // The resilient-ingestion gate at slack=0 (a strict in-order check
    // in front of the router) must stay within a few percent of the
    // ungated replay above — compare the two series in CI.
    group.bench_with_input(
        BenchmarkId::new("replay_maritime_reorder0", 1usize),
        &1usize,
        |b, &shards| b.iter(|| black_box(replay_with(&w, shards, 12, Some(0)))),
    );
    group.finish();
    // The replays above exercised every instrumented hot path; the
    // exposition they produced must be well-formed Prometheus text.
    // CI runs this bench as a smoke test, so a malformed exposition
    // fails the build, not just a scrape in production.
    let exposition = rtec_obs::global().render_prometheus();
    rtec_obs::expo::validate(&exposition)
        .unwrap_or_else(|e| panic!("malformed exposition after replay: {e}"));
    assert!(
        exposition.contains("rtec_engine_windows_total")
            && exposition.contains("rtec_service_ticks_total"),
        "replay left no engine/service series in the exposition"
    );
    assert!(
        exposition.contains("rtec_recognition_latency_us")
            && exposition.contains("rtec_service_tick_duration_us"),
        "replay left no latency series in the exposition"
    );
    scrape_is_valid_and_bounded(&w);
}

/// The full scrape path (`Registry::render_metrics`, what `/metrics`
/// serves) after a profiled replay: the exposition must pass the strict
/// validator and the per-rule profile families must stay within the
/// top-N + "other" cardinality bound no matter how many rules the
/// description holds. An unbounded label set fails the build here, not
/// a Prometheus server in production.
fn scrape_is_valid_and_bounded(w: &Workload) {
    let registry = rtec_service::Registry::new();
    let open = format!(
        "{{\"cmd\":\"open\",\"session\":\"scrape\",\"description\":{},\"shards\":2,\"eval\":\"plan\"}}",
        serde_json::to_string(&serde_json::Value::from(w.gold.as_str())).unwrap()
    );
    assert!(
        registry.dispatch(&open).contains("\"ok\":true"),
        "open failed"
    );
    for &(t, ref ev) in w.events.iter().take(2000) {
        let line =
            format!("{{\"cmd\":\"event\",\"session\":\"scrape\",\"t\":{t},\"event\":\"{ev}\"}}");
        registry.dispatch(&line);
    }
    let to = w.events[w.events.len().min(2000) - 1].0;
    registry.dispatch(&format!(
        "{{\"cmd\":\"tick\",\"session\":\"scrape\",\"to\":{to}}}"
    ));
    let scrape = registry.render_metrics();
    rtec_obs::expo::validate(&scrape)
        .unwrap_or_else(|e| panic!("malformed scrape exposition: {e}"));
    let bound = rtec_obs::profile::DEFAULT_TOP_N + 1;
    for family in [
        "rtec_profile_rule_self_us",
        "rtec_profile_rule_calls",
        "rtec_profile_rule_interval_ops",
    ] {
        let series = scrape
            .lines()
            .filter(|l| l.starts_with(&format!("{family}{{")))
            .count();
        assert!(series >= 1, "scrape is missing {family}");
        assert!(
            series <= bound,
            "{family}: {series} series breaches the top-N cardinality bound ({bound})"
        );
    }
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
