//! Streaming-service throughput: the maritime critical-event stream
//! replayed through an in-process rtec-service session (ingest → tick →
//! query), at several shard counts, measured in events per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maritime::{BrestScenario, Dataset};
use rtec_service::{Session, SessionConfig};
use std::hint::black_box;

struct Workload {
    gold: String,
    events: Vec<(i64, String)>,
    intervals: Vec<rtec_service::client::IntervalDecl>,
    horizon: i64,
}

fn workload() -> Workload {
    let dataset = Dataset::generate(&BrestScenario::small());
    let symbols = &dataset.stream.symbols;
    let mut events: Vec<(i64, String)> = dataset
        .stream
        .events()
        .iter()
        .map(|(ev, t)| (*t, ev.display(symbols).to_string()))
        .collect();
    events.sort_by_key(|&(t, _)| t);
    let intervals = dataset
        .stream
        .intervals()
        .iter()
        .map(|(fvp, list)| {
            (
                fvp.fluent.display(symbols).to_string(),
                fvp.value.display(symbols).to_string(),
                list.iter().map(|iv| (iv.start, iv.end)).collect(),
            )
        })
        .collect();
    Workload {
        gold: format!("{}\n{}", maritime::gold::GOLD_RULES, dataset.background),
        events,
        intervals,
        horizon: dataset.horizon() + 1,
    }
}

fn replay(w: &Workload, shards: usize, ticks: i64) -> usize {
    replay_with(w, shards, ticks, None)
}

fn replay_with(w: &Workload, shards: usize, ticks: i64, reorder_slack: Option<i64>) -> usize {
    let mut session = Session::open(
        "bench",
        &w.gold,
        SessionConfig {
            window: None,
            shards,
            queue_capacity: 1024,
            reorder_slack,
            ..SessionConfig::default()
        },
    )
    .expect("open");
    for (fluent, value, pairs) in &w.intervals {
        session
            .ingest_intervals(fluent, value, pairs)
            .expect("intervals");
    }
    let step = (w.horizon / ticks).max(1);
    let mut next_tick = step;
    for &(t, ref ev) in &w.events {
        if t >= next_tick {
            session.tick(next_tick - 1).expect("tick");
            next_tick += ((t - next_tick) / step + 1) * step;
        }
        session.ingest_event(ev, t).expect("event");
    }
    session.tick(w.horizon).expect("final tick");
    let (out, _) = session.query().expect("query");
    let n = out.len();
    session.close().expect("close");
    n
}

fn bench_service(c: &mut Criterion) {
    // Per-iteration session open/close info events would swamp the
    // bench output; keep only warnings (forget drops, backpressure).
    rtec_obs::set_max_level(rtec_obs::Level::Warn);
    let w = workload();
    let n_events = w.events.len() as u64;
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_events));
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("replay_maritime", shards),
            &shards,
            |b, &shards| b.iter(|| black_box(replay(&w, shards, 12))),
        );
    }
    // The resilient-ingestion gate at slack=0 (a strict in-order check
    // in front of the router) must stay within a few percent of the
    // ungated replay above — compare the two series in CI.
    group.bench_with_input(
        BenchmarkId::new("replay_maritime_reorder0", 1usize),
        &1usize,
        |b, &shards| b.iter(|| black_box(replay_with(&w, shards, 12, Some(0)))),
    );
    group.finish();
    // The replays above exercised every instrumented hot path; the
    // exposition they produced must be well-formed Prometheus text.
    // CI runs this bench as a smoke test, so a malformed exposition
    // fails the build, not just a scrape in production.
    let exposition = rtec_obs::global().render_prometheus();
    rtec_obs::expo::validate(&exposition)
        .unwrap_or_else(|e| panic!("malformed exposition after replay: {e}"));
    assert!(
        exposition.contains("rtec_engine_windows_total")
            && exposition.contains("rtec_service_ticks_total"),
        "replay left no engine/service series in the exposition"
    );
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
