//! Interval-algebra micro-benchmarks: the `union_all`, `intersect_all`
//! and `relative_complement_all` constructs at the heart of statically
//! determined fluent evaluation.

use bench::XorShift;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtec::{Interval, IntervalList};
use std::hint::black_box;

fn random_list(n: usize, rng: &mut XorShift) -> IntervalList {
    let mut ivs = Vec::with_capacity(n);
    let mut t = 0i64;
    for _ in 0..n {
        t += 1 + rng.next_usize(50) as i64;
        let len = 1 + rng.next_usize(30) as i64;
        ivs.push(Interval::new(t, t + len));
        t += len;
    }
    IntervalList::from_intervals(ivs)
}

fn bench_intervals(c: &mut Criterion) {
    let mut group = c.benchmark_group("intervals");
    for n in [100usize, 1_000, 10_000] {
        let mut rng = XorShift(7 + n as u64);
        let a = random_list(n, &mut rng);
        let b = random_list(n, &mut rng);
        let c3 = random_list(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("union_all_3", n), &n, |bch, _| {
            bch.iter(|| black_box(IntervalList::union_all(&[&a, &b, &c3])))
        });
        group.bench_with_input(BenchmarkId::new("intersect_all_3", n), &n, |bch, _| {
            bch.iter(|| black_box(IntervalList::intersect_all(&[&a, &b, &c3])))
        });
        group.bench_with_input(BenchmarkId::new("relative_complement", n), &n, |bch, _| {
            bch.iter(|| black_box(a.relative_complement_all(&[&b, &c3])))
        });
        group.bench_with_input(BenchmarkId::new("point_queries", n), &n, |bch, _| {
            bch.iter(|| {
                let mut hits = 0usize;
                for t in (0..100_000).step_by(97) {
                    hits += usize::from(a.contains(t));
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intervals);
criterion_main!(benches);
