//! Shared fixtures for the Criterion benchmarks (see `benches/`).
//!
//! One bench target exists per experimental artefact: `similarity`
//! (Figure 2a/2b metric cost), `recognition` (Figure 2c engine
//! throughput and the window ablation), plus micro-benchmarks for the
//! load-bearing algorithms (`hungarian`, `parser`, `intervals`).

#![forbid(unsafe_code)]

use maritime::{BrestScenario, Dataset};

/// A small but complete dataset (all eight activities present).
pub fn small_dataset() -> Dataset {
    Dataset::generate(&BrestScenario::small())
}

/// The default-scale dataset used by the recognition benchmarks.
pub fn default_dataset() -> Dataset {
    Dataset::generate(&BrestScenario::default())
}

/// A deterministic pseudo-random number generator for workload synthesis
/// (xorshift; no external seeding required).
pub struct XorShift(pub u64);

impl XorShift {
    /// Next value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next value in `[0, n)`.
    pub fn next_usize(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let d = small_dataset();
        assert!(!d.stream.is_empty());
        let mut rng = XorShift(42);
        let x = rng.next_f64();
        assert!((0.0..1.0).contains(&x));
        assert!(rng.next_usize(10) < 10);
    }
}
