//! Headline replay benchmark: the maritime critical-event stream
//! replayed through an in-process rtec-service session at several shard
//! counts, interpreter vs compiled-plan evaluator, reported as events
//! per second in `BENCH_replay.json`.
//!
//! Run from the repository root (release profile, or the numbers are
//! meaningless):
//!
//! ```text
//! cargo run --release -p bench --bin replay_bench [-- OUTPUT.json]
//! ```
//!
//! Unlike the Criterion benches (which track regressions), this runner
//! produces the checked-in measurement that pins the plan evaluator's
//! speedup claim; see docs/PLAN.md.

use maritime::{BrestScenario, Dataset};
use rtec::engine::EvalMode;
use rtec_service::{Session, SessionConfig};
use serde_json::Value;
use std::collections::BTreeMap;
use std::time::Instant;

struct Workload {
    gold: String,
    events: Vec<(i64, String)>,
    intervals: Vec<rtec_service::client::IntervalDecl>,
    horizon: i64,
}

fn workload() -> Workload {
    let dataset = Dataset::generate(&BrestScenario::default());
    let symbols = &dataset.stream.symbols;
    let mut events: Vec<(i64, String)> = dataset
        .stream
        .events()
        .iter()
        .map(|(ev, t)| (*t, ev.display(symbols).to_string()))
        .collect();
    events.sort_by_key(|&(t, _)| t);
    let intervals = dataset
        .stream
        .intervals()
        .iter()
        .map(|(fvp, list)| {
            (
                fvp.fluent.display(symbols).to_string(),
                fvp.value.display(symbols).to_string(),
                list.iter().map(|iv| (iv.start, iv.end)).collect(),
            )
        })
        .collect();
    Workload {
        gold: format!("{}\n{}", maritime::gold::GOLD_RULES, dataset.background),
        events,
        intervals,
        horizon: dataset.horizon() + 1,
    }
}

const TICKS: i64 = 12;

fn replay(w: &Workload, shards: usize, eval: EvalMode) -> usize {
    let mut session = Session::open(
        "bench",
        &w.gold,
        SessionConfig {
            window: None,
            shards,
            queue_capacity: 1024,
            eval,
            ..SessionConfig::default()
        },
    )
    .expect("open");
    for (fluent, value, pairs) in &w.intervals {
        session
            .ingest_intervals(fluent, value, pairs)
            .expect("intervals");
    }
    let step = (w.horizon / TICKS).max(1);
    let mut next_tick = step;
    for &(t, ref ev) in &w.events {
        if t >= next_tick {
            session.tick(next_tick - 1).expect("tick");
            next_tick += ((t - next_tick) / step + 1) * step;
        }
        session.ingest_event(ev, t).expect("event");
    }
    session.tick(w.horizon).expect("final tick");
    let (out, _) = session.query().expect("query");
    let n = out.len();
    session.close().expect("close");
    n
}

/// Times `runs` replays and returns the median wall-clock seconds (the
/// statistic least disturbed by a one-off scheduler hiccup).
fn measure(w: &Workload, shards: usize, eval: EvalMode, warmup: usize, runs: usize) -> f64 {
    let mut fvps = None;
    for _ in 0..warmup {
        let n = replay(w, shards, eval);
        assert!(n > 0, "replay recognised nothing");
        fvps = Some(n);
    }
    let mut seconds: Vec<f64> = (0..runs)
        .map(|_| {
            let started = Instant::now();
            let n = replay(w, shards, eval);
            let elapsed = started.elapsed().as_secs_f64();
            assert_eq!(Some(n), fvps, "output size changed between runs");
            elapsed
        })
        .collect();
    seconds.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    seconds[seconds.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replay.json".to_string());
    // Per-replay session open/close info events would swamp the output;
    // keep only warnings.
    rtec_obs::set_max_level(rtec_obs::Level::Warn);

    let w = workload();
    let n_events = w.events.len();
    let (warmup, runs) = (1usize, 5usize);

    let mut results = Vec::new();
    let mut speedups = BTreeMap::new();
    for shards in [1usize, 2, 4] {
        let mut per_mode = BTreeMap::new();
        for eval in [EvalMode::Interpreter, EvalMode::Plan] {
            let median = measure(&w, shards, eval, warmup, runs);
            let eps = n_events as f64 / median;
            eprintln!(
                "shards={shards} eval={}: {:.3}s median, {:.0} events/s",
                eval.as_str(),
                median,
                eps
            );
            per_mode.insert(eval.as_str(), (median, eps));
            let mut row = BTreeMap::new();
            row.insert("shards".to_string(), Value::from(shards));
            row.insert("eval".to_string(), Value::from(eval.as_str()));
            row.insert("seconds_median".to_string(), Value::from(median));
            row.insert(
                "events_per_sec".to_string(),
                Value::from((eps * 10.0).round() / 10.0),
            );
            results.push(Value::Object(row.into_iter().collect()));
        }
        let interp = per_mode["interpreter"].1;
        let plan = per_mode["plan"].1;
        speedups.insert(
            shards.to_string(),
            Value::from(((plan / interp) * 1000.0).round() / 1000.0),
        );
    }

    let mut doc = BTreeMap::new();
    doc.insert("bench".to_string(), Value::from("service/replay_maritime"));
    doc.insert("dataset".to_string(), Value::from("brest_default"));
    doc.insert("events".to_string(), Value::from(n_events));
    doc.insert("ticks".to_string(), Value::from(TICKS));
    doc.insert("warmup_runs".to_string(), Value::from(warmup));
    doc.insert("measured_runs".to_string(), Value::from(runs));
    doc.insert("statistic".to_string(), Value::from("median"));
    doc.insert("results".to_string(), Value::Array(results));
    doc.insert(
        "plan_speedup_by_shards".to_string(),
        Value::Object(speedups.into_iter().collect()),
    );
    let json = serde_json::to_string_pretty(&Value::Object(doc.into_iter().collect()))
        .expect("render json");
    std::fs::write(&out_path, format!("{json}\n")).expect("write output");
    eprintln!("wrote {out_path}");
}
