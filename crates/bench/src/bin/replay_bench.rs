//! Headline replay benchmark: the maritime critical-event stream
//! replayed through an in-process rtec-service session at several shard
//! counts, interpreter vs compiled-plan vs analysis-optimized evaluator
//! (docs/PLAN.md), reported as events per second in `BENCH_replay.json`.
//!
//! Run from the repository root (release profile, or the numbers are
//! meaningless):
//!
//! ```text
//! cargo run --release -p bench --bin replay_bench [-- OUTPUT.json] [-- --synth-only]
//! ```
//!
//! The output file is an append-only log: every invocation adds one
//! run record (git revision, date, configuration, throughput, profiler
//! hot spots) under `"runs"`, so regressions can be traced across
//! commits instead of each run clobbering the last. A legacy
//! single-object file is absorbed as the first run.
//!
//! Unlike the Criterion benches (which track regressions), this runner
//! produces the checked-in measurement that pins the plan evaluator's
//! speedup claim; see docs/PLAN.md. The timed replays run with the
//! profiler off (pure recognition cost); a separate profiled pass
//! measures the profiler's overhead and attributes wall time per rule
//! for the maritime gold description (docs/PROFILING.md).
//!
//! Each run also records a `brest_synth` cell: the seeded synthetic
//! stream (docs/SCALE.md, Brest tier by default, `RTEC_SCALE_TIER`
//! overrides) replayed through a sliding window twice — full
//! recomputation vs incremental re-evaluation — pinning the
//! incremental evaluator's speedup at a high-overlap slide. Pass
//! `--synth-only` to skip the maritime headline sweep (CI's
//! scale-smoke job does, to bound wall time).

use maritime::synth::{ScaleTier, SynthStream};
use maritime::{BrestScenario, Dataset};
use rtec::engine::EvalMode;
use rtec_service::{Session, SessionConfig};
use serde_json::Value;
use std::collections::BTreeMap;
use std::time::Instant;

struct Workload {
    gold: String,
    events: Vec<(i64, String)>,
    intervals: Vec<rtec_service::client::IntervalDecl>,
    horizon: i64,
}

fn workload() -> Workload {
    let dataset = Dataset::generate(&BrestScenario::default());
    let symbols = &dataset.stream.symbols;
    let mut events: Vec<(i64, String)> = dataset
        .stream
        .events()
        .iter()
        .map(|(ev, t)| (*t, ev.display(symbols).to_string()))
        .collect();
    events.sort_by_key(|&(t, _)| t);
    let intervals = dataset
        .stream
        .intervals()
        .iter()
        .map(|(fvp, list)| {
            (
                fvp.fluent.display(symbols).to_string(),
                fvp.value.display(symbols).to_string(),
                list.iter().map(|iv| (iv.start, iv.end)).collect(),
            )
        })
        .collect();
    Workload {
        gold: format!("{}\n{}", maritime::gold::GOLD_RULES, dataset.background),
        events,
        intervals,
        horizon: dataset.horizon() + 1,
    }
}

const TICKS: i64 = 12;

/// One full replay; returns the recognised fluent-value-pair count and,
/// when profiled, the session's merged per-rule aggregate.
fn replay(
    w: &Workload,
    shards: usize,
    eval: EvalMode,
    profile: bool,
) -> (usize, Option<rtec_obs::profile::ProfileAggregate>) {
    let mut session = Session::open(
        "bench",
        &w.gold,
        SessionConfig {
            window: None,
            shards,
            queue_capacity: 1024,
            eval,
            profile,
            ..SessionConfig::default()
        },
    )
    .expect("open");
    for (fluent, value, pairs) in &w.intervals {
        session
            .ingest_intervals(fluent, value, pairs)
            .expect("intervals");
    }
    let step = (w.horizon / TICKS).max(1);
    let mut next_tick = step;
    for &(t, ref ev) in &w.events {
        if t >= next_tick {
            session.tick(next_tick - 1).expect("tick");
            next_tick += ((t - next_tick) / step + 1) * step;
        }
        session.ingest_event(ev, t).expect("event");
    }
    session.tick(w.horizon).expect("final tick");
    let (out, _) = session.query().expect("query");
    let n = out.len();
    let aggregate = session.profile().cloned();
    session.close().expect("close");
    (n, aggregate)
}

/// Times `runs` replays and returns the median wall-clock seconds (the
/// statistic least disturbed by a one-off scheduler hiccup).
fn measure(w: &Workload, shards: usize, eval: EvalMode, warmup: usize, runs: usize) -> f64 {
    let mut fvps = None;
    for _ in 0..warmup {
        let (n, _) = replay(w, shards, eval, false);
        assert!(n > 0, "replay recognised nothing");
        fvps = Some(n);
    }
    let mut seconds: Vec<f64> = (0..runs)
        .map(|_| {
            let started = Instant::now();
            let (n, _) = replay(w, shards, eval, false);
            let elapsed = started.elapsed().as_secs_f64();
            assert_eq!(Some(n), fvps, "output size changed between runs");
            elapsed
        })
        .collect();
    seconds.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    seconds[seconds.len() / 2]
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Journal commit granularity: the `stream` client ships events in
/// `batch` frames of 64 by default, and the registry commits the
/// journal once per frame — one commit covers one ack.
const JOURNAL_BATCH: usize = 64;

/// One full replay with a write-ahead journal attached, mirroring the
/// service's ack discipline under `--journal-dir` (docs/ROBUSTNESS.md)
/// for the headline `stream` path: every ingest is appended before its
/// ack, with one commit per 64-event `batch` frame and a commit at
/// every tick. Returns the recognised fluent-value-pair count (must
/// match the unjournaled replay).
fn journaled_replay(
    w: &Workload,
    shards: usize,
    eval: EvalMode,
    dir: &std::path::Path,
    policy: rtec_service::FsyncPolicy,
) -> usize {
    rtec_service::journal::remove(dir, "bench");
    let mut journal = rtec_service::Journal::create(dir, "bench", policy).expect("create journal");
    let open: Value =
        serde_json::from_str(r#"{"cmd":"open","session":"bench"}"#).expect("open record");
    journal.append_open(&open);
    journal.commit().expect("commit open record");
    let mut session = Session::open(
        "bench",
        &w.gold,
        SessionConfig {
            window: None,
            shards,
            queue_capacity: 1024,
            eval,
            profile: false,
            ..SessionConfig::default()
        },
    )
    .expect("open");
    for (fluent, value, pairs) in &w.intervals {
        journal.append_intervals(fluent, value, pairs);
        journal.commit().expect("commit intervals");
        session
            .ingest_intervals(fluent, value, pairs)
            .expect("intervals");
    }
    let step = (w.horizon / TICKS).max(1);
    let mut next_tick = step;
    let mut pending = 0usize;
    for &(t, ref ev) in &w.events {
        if t >= next_tick {
            journal.commit().expect("commit before tick");
            pending = 0;
            session.tick(next_tick - 1).expect("tick");
            next_tick += ((t - next_tick) / step + 1) * step;
        }
        journal.append_event(t, ev);
        pending += 1;
        if pending >= JOURNAL_BATCH {
            journal.commit().expect("commit batch");
            pending = 0;
        }
        session.ingest_event(ev, t).expect("event");
    }
    session.tick(w.horizon).expect("final tick");
    journal.commit().expect("final commit");
    let (out, _) = session.query().expect("query");
    let n = out.len();
    session.close().expect("close");
    n
}

/// Times the journaled replay (fsync `never`, the throughput-oriented
/// policy) against an unjournaled baseline at the same configuration
/// and returns the `journal_overhead` run cell. The two legs are
/// measured **interleaved** (baseline, journaled, baseline, ...) so
/// frequency drift or background load biases both medians equally
/// instead of whichever leg ran second.
fn journal_cell(w: &Workload, shards: usize, warmup: usize, runs: usize) -> Value {
    // The cell discriminates a few percent; medians over the headline
    // sweep's 5 runs cannot do that on a noisy single-CPU box.
    let runs = runs.max(15);
    let n_events = w.events.len();
    let eval = EvalMode::Plan;
    let dir = std::env::temp_dir().join(format!("rtec-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create journal dir");
    let expected = replay(w, shards, eval, false).0;
    for _ in 0..warmup {
        let n = journaled_replay(w, shards, eval, &dir, rtec_service::FsyncPolicy::Never);
        assert_eq!(n, expected, "journaled replay changed the output");
    }
    let mut baseline_s: Vec<f64> = Vec::with_capacity(runs);
    let mut journaled_s: Vec<f64> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let started = Instant::now();
        let (n, _) = replay(w, shards, eval, false);
        baseline_s.push(started.elapsed().as_secs_f64());
        assert_eq!(n, expected, "baseline replay changed the output");
        let started = Instant::now();
        let n = journaled_replay(w, shards, eval, &dir, rtec_service::FsyncPolicy::Never);
        journaled_s.push(started.elapsed().as_secs_f64());
        assert_eq!(n, expected, "journaled replay changed the output");
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    let baseline = median(&mut baseline_s);
    let journaled = median(&mut journaled_s);
    let _ = std::fs::remove_dir_all(&dir);
    let baseline_eps = n_events as f64 / baseline;
    let journaled_eps = n_events as f64 / journaled;
    let overhead_pct = (journaled / baseline - 1.0) * 100.0;
    eprintln!(
        "journal fsync=never shards={shards}: {journaled:.3}s vs {baseline:.3}s baseline \
         ({overhead_pct:+.1}% overhead, {journaled_eps:.0} events/s)"
    );
    let mut cell = BTreeMap::new();
    cell.insert("shards".to_string(), Value::from(shards));
    cell.insert("eval".to_string(), Value::from(eval.as_str()));
    cell.insert("fsync".to_string(), Value::from("never"));
    cell.insert("batch_size".to_string(), Value::from(JOURNAL_BATCH));
    cell.insert("baseline_seconds_median".to_string(), Value::from(baseline));
    cell.insert(
        "baseline_events_per_sec".to_string(),
        Value::from(round1(baseline_eps)),
    );
    cell.insert(
        "journaled_seconds_median".to_string(),
        Value::from(journaled),
    );
    cell.insert(
        "journaled_events_per_sec".to_string(),
        Value::from(round1(journaled_eps)),
    );
    cell.insert(
        "overhead_pct".to_string(),
        Value::from((overhead_pct * 100.0).round() / 100.0),
    );
    Value::Object(cell.into_iter().collect())
}

/// One profiled plan-evaluator replay at a single shard: the per-rule
/// hot-spot table for the maritime gold description, plus the profiled
/// throughput (so the profiler's overhead is visible next to the
/// unprofiled numbers).
fn hotspot_pass(w: &Workload, top_n: usize) -> (Vec<Value>, f64) {
    let started = Instant::now();
    let (_, aggregate) = replay(w, 1, EvalMode::Plan, true);
    let eps = w.events.len() as f64 / started.elapsed().as_secs_f64();
    let aggregate = aggregate.expect("profiled replay returns an aggregate");
    eprintln!("{}", aggregate.render_table(top_n));
    let rows = aggregate
        .sorted()
        .into_iter()
        .take(top_n)
        .map(|e| {
            let mut row = BTreeMap::new();
            row.insert("rule".to_string(), Value::from(e.name));
            row.insert("kind".to_string(), Value::from(e.kind.as_str()));
            row.insert(
                "calls".to_string(),
                Value::from(i64::try_from(e.cost.calls).unwrap_or(i64::MAX)),
            );
            row.insert(
                "self_us".to_string(),
                Value::from(i64::try_from(e.cost.self_us()).unwrap_or(i64::MAX)),
            );
            row.insert(
                "interval_ops".to_string(),
                Value::from(i64::try_from(e.cost.interval_ops).unwrap_or(i64::MAX)),
            );
            Value::Object(row.into_iter().collect())
        })
        .collect();
    (rows, eps)
}

/// Sliding-window geometry for the synthetic cell: a 3600 s window
/// advancing 600 s per tick, so 5/6 of every window is overlap the
/// incremental evaluator can keep instead of recomputing.
const SYNTH_WINDOW: i64 = 3600;
const SYNTH_SLIDE: i64 = 600;
const SYNTH_SHARDS: usize = 2;

struct SynthWorkload {
    gold: String,
    events: Vec<(i64, String)>,
    horizon: i64,
    tier: &'static str,
    vessels: usize,
}

/// Materialises one synthetic tier (docs/SCALE.md): the event stream is
/// a pure function of the tier's pinned seed, so cells recorded from
/// different checkouts replay the same workload.
fn synth_workload(tier: ScaleTier) -> SynthWorkload {
    let config = tier.config();
    let events: Vec<(i64, String)> = SynthStream::new(config)
        .map(|(ev, t)| (t, ev.render()))
        .collect();
    SynthWorkload {
        gold: format!("{}\n{}", maritime::gold::GOLD_RULES, config.background()),
        events,
        horizon: config.horizon(),
        tier: tier.name(),
        vessels: config.vessels,
    }
}

/// One sliding-window replay over the synthetic stream, ticking at
/// every slide boundary; returns the recognised fluent-value-pair count
/// of the final window (must agree between the two evaluation modes).
fn synth_replay(w: &SynthWorkload, incremental: bool, eval: EvalMode) -> usize {
    let mut session = Session::open(
        "bench-synth",
        &w.gold,
        SessionConfig {
            window: Some(SYNTH_WINDOW),
            slide: Some(SYNTH_SLIDE),
            incremental,
            shards: SYNTH_SHARDS,
            queue_capacity: 1024,
            eval,
            ..SessionConfig::default()
        },
    )
    .expect("open synth session");
    let mut next_tick = SYNTH_SLIDE;
    for &(t, ref ev) in &w.events {
        while t > next_tick {
            session.tick(next_tick).expect("tick");
            next_tick += SYNTH_SLIDE;
        }
        session.ingest_event(ev, t).expect("event");
    }
    session.tick(w.horizon.max(next_tick)).expect("final tick");
    let (out, _) = session.query().expect("query");
    let n = out.len();
    session.close().expect("close");
    n
}

/// Times the synthetic sliding-window replay in both evaluation modes
/// and returns the `brest_synth` run cell. The incremental evaluator
/// must recognise exactly what full recomputation recognises — the
/// differential suites pin interval-level identity; this pass asserts
/// the cheap end-to-end invariant before trusting the timings.
fn synth_cell(tier: ScaleTier) -> Value {
    let w = synth_workload(tier);
    let n_events = w.events.len();
    eprintln!(
        "synth tier={} vessels={} events={n_events} window={SYNTH_WINDOW} slide={SYNTH_SLIDE}",
        w.tier, w.vessels
    );
    let mut per_mode = BTreeMap::new();
    for (eval, eval_label) in [(EvalMode::Plan, "plan"), (EvalMode::Optimized, "optimized")] {
        for incremental in [false, true] {
            let label = if incremental { "incremental" } else { "full" };
            let started = Instant::now();
            let n = synth_replay(&w, incremental, eval);
            let seconds = started.elapsed().as_secs_f64();
            let eps = n_events as f64 / seconds;
            eprintln!("synth {eval_label}/{label}: {seconds:.3}s, {eps:.0} events/s ({n} fvps)");
            per_mode.insert(format!("{eval_label}/{label}"), (seconds, eps, n));
        }
    }
    let (full_s, full_eps, full_n) = per_mode["plan/full"];
    let (incr_s, incr_eps, incr_n) = per_mode["plan/incremental"];
    let (opt_full_s, opt_full_eps, opt_full_n) = per_mode["optimized/full"];
    let (opt_incr_s, opt_incr_eps, opt_incr_n) = per_mode["optimized/incremental"];
    assert_eq!(
        full_n, incr_n,
        "incremental and full recomputation disagree on the final window"
    );
    assert_eq!(
        full_n, opt_full_n,
        "optimized plan disagrees with the plan on the final window"
    );
    assert_eq!(opt_full_n, opt_incr_n, "optimized incremental diverged");
    let speedup = incr_eps / full_eps;
    eprintln!("synth incremental speedup over full recomputation: {speedup:.2}x");
    let opt_vs_plan = opt_incr_eps / incr_eps;
    eprintln!("synth optimized-vs-plan incremental throughput ratio: {opt_vs_plan:.3}x");
    let mut cell = BTreeMap::new();
    cell.insert("tier".to_string(), Value::from(w.tier));
    cell.insert("vessels".to_string(), Value::from(w.vessels));
    cell.insert("events".to_string(), Value::from(n_events));
    cell.insert("window".to_string(), Value::from(SYNTH_WINDOW));
    cell.insert("slide".to_string(), Value::from(SYNTH_SLIDE));
    cell.insert("shards".to_string(), Value::from(SYNTH_SHARDS));
    cell.insert("eval".to_string(), Value::from("plan"));
    cell.insert("full_seconds".to_string(), Value::from(full_s));
    cell.insert(
        "full_events_per_sec".to_string(),
        Value::from(round1(full_eps)),
    );
    cell.insert("incremental_seconds".to_string(), Value::from(incr_s));
    cell.insert(
        "incremental_events_per_sec".to_string(),
        Value::from(round1(incr_eps)),
    );
    cell.insert(
        "incremental_speedup".to_string(),
        Value::from((speedup * 1000.0).round() / 1000.0),
    );
    cell.insert(
        "optimized_full_seconds".to_string(),
        Value::from(opt_full_s),
    );
    cell.insert(
        "optimized_full_events_per_sec".to_string(),
        Value::from(round1(opt_full_eps)),
    );
    cell.insert(
        "optimized_incremental_seconds".to_string(),
        Value::from(opt_incr_s),
    );
    cell.insert(
        "optimized_incremental_events_per_sec".to_string(),
        Value::from(round1(opt_incr_eps)),
    );
    cell.insert(
        "optimized_vs_plan_incremental".to_string(),
        Value::from((opt_vs_plan * 1000.0).round() / 1000.0),
    );
    Value::Object(cell.into_iter().collect())
}

/// The short git revision, when the binary runs inside a work tree with
/// git on PATH; `null` otherwise (the record is still appended).
fn git_revision() -> Value {
    let output = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output();
    match output {
        Ok(out) if out.status.success() => {
            Value::from(String::from_utf8_lossy(&out.stdout).trim().to_string())
        }
        _ => Value::Null,
    }
}

/// Loads the existing run log. A legacy single-run object (no `"runs"`
/// key) becomes the first entry; unreadable or malformed files start a
/// fresh log rather than aborting the benchmark.
fn load_runs(path: &str) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        eprintln!("warning: {path} is not JSON; starting a fresh run log");
        return Vec::new();
    };
    match doc.get("runs").and_then(Value::as_array) {
        Some(runs) => runs.clone(),
        None => vec![doc],
    }
}

fn main() {
    let mut out_path = "BENCH_replay.json".to_string();
    let mut synth_only = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--synth-only" => synth_only = true,
            other => out_path = other.to_string(),
        }
    }
    // Per-replay session open/close info events would swamp the output;
    // keep only warnings.
    rtec_obs::set_max_level(rtec_obs::Level::Warn);

    let date = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut run = BTreeMap::new();
    run.insert("git_rev".to_string(), git_revision());
    run.insert(
        "date_epoch_secs".to_string(),
        Value::from(i64::try_from(date).unwrap_or(0)),
    );

    if !synth_only {
        let w = workload();
        let n_events = w.events.len();
        let (warmup, runs) = (1usize, 5usize);

        let mut results = Vec::new();
        let mut speedups = BTreeMap::new();
        let mut optimized_speedups = BTreeMap::new();
        for shards in [1usize, 2, 4] {
            let mut per_mode = BTreeMap::new();
            for eval in [EvalMode::Interpreter, EvalMode::Plan, EvalMode::Optimized] {
                let median = measure(&w, shards, eval, warmup, runs);
                let eps = n_events as f64 / median;
                eprintln!(
                    "shards={shards} eval={}: {:.3}s median, {:.0} events/s",
                    eval.as_str(),
                    median,
                    eps
                );
                per_mode.insert(eval.as_str(), (median, eps));
                let mut row = BTreeMap::new();
                row.insert("shards".to_string(), Value::from(shards));
                row.insert("eval".to_string(), Value::from(eval.as_str()));
                row.insert("seconds_median".to_string(), Value::from(median));
                row.insert("events_per_sec".to_string(), Value::from(round1(eps)));
                results.push(Value::Object(row.into_iter().collect()));
            }
            let interp = per_mode["interpreter"].1;
            let plan = per_mode["plan"].1;
            let optimized = per_mode["optimized"].1;
            speedups.insert(
                shards.to_string(),
                Value::from(((plan / interp) * 1000.0).round() / 1000.0),
            );
            optimized_speedups.insert(
                shards.to_string(),
                Value::from(((optimized / interp) * 1000.0).round() / 1000.0),
            );
        }

        let (hotspots, profiled_eps) = hotspot_pass(&w, rtec_obs::profile::DEFAULT_TOP_N);
        eprintln!("profiled plan replay (1 shard): {profiled_eps:.0} events/s");

        let mut config = BTreeMap::new();
        config.insert("dataset".to_string(), Value::from("brest_default"));
        config.insert("events".to_string(), Value::from(n_events));
        config.insert("ticks".to_string(), Value::from(TICKS));
        config.insert("warmup_runs".to_string(), Value::from(warmup));
        config.insert("measured_runs".to_string(), Value::from(runs));
        config.insert("statistic".to_string(), Value::from("median"));
        run.insert(
            "config".to_string(),
            Value::Object(config.into_iter().collect()),
        );
        run.insert("results".to_string(), Value::Array(results));
        run.insert(
            "plan_speedup_by_shards".to_string(),
            Value::Object(speedups.into_iter().collect()),
        );
        run.insert(
            "optimized_speedup_by_shards".to_string(),
            Value::Object(optimized_speedups.into_iter().collect()),
        );
        run.insert("hotspots".to_string(), Value::Array(hotspots));
        run.insert(
            "profiled_plan_events_per_sec".to_string(),
            Value::from(round1(profiled_eps)),
        );
        // Write-ahead journal overhead (docs/ROBUSTNESS.md): the same
        // replay with every ingest journaled at fsync `never`, expected
        // within a few percent of the unjournaled baseline.
        run.insert(
            "journal_overhead".to_string(),
            journal_cell(&w, 2, warmup, runs),
        );
    }

    // Synthetic sliding-window cell (docs/SCALE.md): Brest tier unless
    // RTEC_SCALE_TIER narrows it (CI's scale-smoke job runs `smoke`).
    let tier = match std::env::var("RTEC_SCALE_TIER") {
        Ok(s) => ScaleTier::parse(&s)
            .unwrap_or_else(|| panic!("unknown RTEC_SCALE_TIER {s:?} (small|smoke|brest)")),
        Err(_) => ScaleTier::Brest,
    };
    run.insert("brest_synth".to_string(), synth_cell(tier));

    // Every instrumented hot path ran above; the exposition it produced
    // must be well-formed Prometheus text (strict validator), so a
    // malformed metric fails the benchmark run, not a scrape later.
    let exposition = rtec_obs::global().render_prometheus();
    rtec_obs::expo::validate(&exposition)
        .unwrap_or_else(|e| panic!("malformed exposition after replay: {e}"));

    let mut runs_log = load_runs(&out_path);
    runs_log.push(Value::Object(run.into_iter().collect()));
    let mut doc = BTreeMap::new();
    doc.insert("bench".to_string(), Value::from("service/replay_maritime"));
    doc.insert("runs".to_string(), Value::Array(runs_log));
    let json = serde_json::to_string_pretty(&Value::Object(doc.into_iter().collect()))
        .expect("render json");
    std::fs::write(&out_path, format!("{json}\n")).expect("write output");
    eprintln!("appended run to {out_path}");
}
