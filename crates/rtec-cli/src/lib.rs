//! Library backing the `rtec` command-line tool.
//!
//! The core subcommands, mirroring how RTEC deployments are operated:
//!
//! * `rtec check <description.rtec> [--format text|json]
//!   [--deny-warnings]` — parse, validate against the rule syntax,
//!   stratify, schema-check against any `inputEvent/1` / `inputFluent/1`
//!   declarations, and run the `rtec-lint` semantic analyzer
//!   (docs/LINTS.md); `--format json` emits the diagnostics as a stable
//!   JSON array; `--deny-warnings` exits nonzero when any warning fires;
//! * `rtec analyze <description.rtec>` — run the `rtec-analysis`
//!   abstract interpreter over the compiled plan and print the per-rule
//!   and per-fluent facts table (value domains, emptiness, reachability,
//!   productivity; docs/PLAN.md);
//! * `rtec run <description.rtec> <events.evt> [--window W] [--horizon H]
//!   [--eval interpreter|plan|optimized]` — recognise composite
//!   activities over an event file and print the maximal intervals of
//!   every detected fluent-value pair, with the AST interpreter, the
//!   compiled evaluation plan, or the analysis-optimized plan
//!   (docs/PLAN.md);
//! * `rtec similarity <a.rtec> <b.rtec>` — the paper's event-description
//!   similarity, with the per-rule matching report.
//!
//! The event-file format is one event per line: `TIME EVENT_TERM`, e.g.
//!
//! ```text
//! 10 entersArea(v1, a1)
//! 25 velocity(v1, 9.5, 91.0, 90.0)
//! % comments and blank lines are skipped
//! ```

#![forbid(unsafe_code)]

pub mod cluster;

use rtec::declarations::Declarations;
use rtec::stream::InputStream;
use rtec::{Engine, EngineConfig, EventDescription, Timepoint};
use std::fmt::Write as _;

/// CLI failure: a message and a suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn new(message: impl Into<String>, code: i32) -> CliError {
        CliError {
            message: message.into(),
            code,
        }
    }
}

/// Output format of `check`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CheckFormat {
    /// Human-readable report (default).
    #[default]
    Text,
    /// One stable JSON array of lint diagnostics.
    Json,
}

/// Parsed command line.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `check <desc> [--format text|json] [--deny-warnings]`
    Check {
        /// Path to the event description.
        desc: String,
        /// Output format.
        format: CheckFormat,
        /// Exit nonzero when any warning-severity diagnostic fires.
        deny_warnings: bool,
    },
    /// `analyze <desc>`
    Analyze {
        /// Path to the event description.
        desc: String,
    },
    /// `run <desc> <events> [--window W] [--horizon H] [--eval MODE]
    /// [--profile]`
    Run {
        /// Path to the event description.
        desc: String,
        /// Path to the event file.
        events: String,
        /// Optional window size.
        window: Option<Timepoint>,
        /// Optional horizon (defaults to the last event).
        horizon: Option<Timepoint>,
        /// Window evaluator (defaults to `RTEC_EVAL`, then interpreter).
        eval: rtec::engine::EvalMode,
        /// Append a per-rule evaluation profile to the output.
        profile: bool,
    },
    /// `similarity <a> <b>`
    Similarity {
        /// First description.
        a: String,
        /// Second description.
        b: String,
    },
    /// `serve [--addr A] [--threads N] [--metrics-addr M] [--stdio]
    /// [--checkpoint-dir D] [--max-worker-restarts N] [--journal-dir D]
    /// [--journal-fsync P]`
    Serve {
        /// Listen address (ignored with `--stdio`).
        addr: String,
        /// Handler threads.
        threads: usize,
        /// Serve the protocol on stdin/stdout instead of TCP.
        stdio: bool,
        /// Optional Prometheus HTTP scrape address.
        metrics_addr: Option<String>,
        /// Directory for session checkpoints (enables `restore`).
        checkpoint_dir: Option<String>,
        /// Worker restarts allowed per session before quarantine.
        max_worker_restarts: Option<usize>,
        /// Directory for per-session write-ahead journals.
        journal_dir: Option<String>,
        /// Journal fsync policy (`always`, `interval:<ms>`, `never`).
        journal_fsync: rtec_service::FsyncPolicy,
    },
    /// `cluster --backend B [--backend B ...] [--addr A] [--vnodes N]
    /// [--health-interval-ms N]`
    Cluster {
        /// Front-end listen address.
        addr: String,
        /// Backend specs, `ADDR` or `ADDR@METRICS_ADDR`.
        backends: Vec<String>,
        /// Virtual nodes per backend on the placement ring.
        vnodes: usize,
        /// Milliseconds between backend health probes.
        health_interval_ms: u64,
    },
    /// `stream <desc> <events> [--addr A] [options]`
    Stream {
        /// Path to the event description.
        desc: String,
        /// Path to the event file (extended format; see `parse_stream_file`).
        events: String,
        /// Server address.
        addr: String,
        /// Replay options.
        opts: rtec_service::StreamOptions,
    },
    /// `dataset synth [--tier T] [--seed N] [--out FILE] [--desc FILE]`
    DatasetSynth {
        /// Scale tier (`small`, `smoke`, `brest`). Falls back to the
        /// `RTEC_SCALE_TIER` environment variable, then `small`.
        tier: Option<String>,
        /// Seed override (tiers carry a pinned default seed).
        seed: Option<u64>,
        /// Write the event file here instead of stdout.
        out: Option<String>,
        /// Also write the gold description (rules + the generated
        /// fleet's background knowledge) here.
        desc_out: Option<String>,
    },
    /// `dataset <ais.csv> [--strict] [--max-diagnostics N]`
    Dataset {
        /// Path to the AIS CSV file.
        csv: String,
        /// Abort on the first corrupt row instead of skip-and-record.
        strict: bool,
        /// How many row diagnostics to print (the summary always counts
        /// all of them).
        max_diagnostics: usize,
    },
    /// `--help` or no arguments.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
rtec — Run-Time Event Calculus command line

USAGE:
    rtec check <description.rtec> [--format text|json] [--deny-warnings]
    rtec analyze <description.rtec>
    rtec run <description.rtec> <events.evt> [--window W] [--horizon H]
             [--eval interpreter|plan|optimized] [--profile]
    rtec similarity <a.rtec> <b.rtec>
    rtec serve [--addr HOST:PORT] [--threads N] [--stdio]
               [--metrics-addr HOST:PORT] [--checkpoint-dir DIR]
               [--max-worker-restarts N] [--journal-dir DIR]
               [--journal-fsync always|interval:<ms>|never]
    rtec cluster --backend ADDR[@METRICS_ADDR] [--backend ...]
                 [--addr HOST:PORT] [--vnodes N]
                 [--health-interval-ms N]
    rtec stream <description.rtec> <events.evt> [--addr HOST:PORT]
                [--session S] [--window W] [--horizon H] [--shards N]
                [--queue N] [--batch N] [--rate EV_PER_SEC]
                [--tick-every T] [--reorder-slack S] [--dedup]
                [--no-close]
    rtec dataset <ais.csv> [--strict] [--max-diagnostics N]
    rtec dataset synth [--tier small|smoke|brest] [--seed N]
                       [--out EVENTS.evt] [--desc DESC.rtec]

Event file format: one `TIME EVENT_TERM` per line; `%` starts a comment.
`stream` additionally accepts `interval FLUENT=VALUE START END ...` lines
for input-fluent intervals. `serve`/`stream` speak the NDJSON protocol
documented in docs/SERVICE.md (default address 127.0.0.1:7878);
`--metrics-addr` adds an HTTP Prometheus endpoint (docs/OBSERVABILITY.md);
`--checkpoint-dir` persists per-session checkpoints after every tick and
enables the `restore` command (docs/ROBUSTNESS.md); `--journal-dir` adds
a per-session write-ahead journal (appended before every ack) so
`restore` also replays acked events past the newest checkpoint.
`cluster` runs a consistent-hashing NDJSON front-end over backends that
share the durable dirs; it fails sessions over between backends via
`restore` and accepts `{\"cmd\":\"cluster\",\"op\":\"stats|drain|rebalance\"}`
admin frames (docs/ROBUSTNESS.md).
`stream --reorder-slack` buffers out-of-order events server-side and
`--dedup` drops exact duplicates (docs/INGEST.md).
`dataset` imports an AIS CSV, skipping and recording corrupt rows; it
fails (exit 3) only when no row survives, `--strict` aborts on the
first corrupt row instead.
`dataset synth` emits a seeded Brest-scale synthetic critical-event
stream in the event-file format (deterministic per seed; tiers sized in
docs/SCALE.md, default from RTEC_SCALE_TIER); `--desc` also writes the
gold description over the generated fleet so the pair feeds straight
into `run` or `stream`.
`check --deny-warnings` exits nonzero when any warning fires (for CI
gates); `analyze` prints the abstract-interpretation facts per rule and
fluent (value domains, emptiness proofs, reachability; docs/PLAN.md).
`run --eval plan` evaluates windows with the compiled plan instead of
the AST interpreter (observationally identical; see docs/PLAN.md) and
`--eval optimized` adds the analysis-driven plan optimizer on top; the
RTEC_EVAL environment variable sets the default. `run --profile`
appends a per-rule self-time/call/interval-op table to the output
without changing what is recognised (docs/PROFILING.md).
Diagnostics are JSON-line events on stderr, filtered by RTEC_LOG
(error|warn|info|debug; default info).
";

/// Parses command-line arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("--help") | Some("-h") | Some("help") => Ok(Command::Help),
        Some("check") => {
            let desc = it
                .next()
                .ok_or_else(|| CliError::new("check: missing description path", 2))?
                .clone();
            let mut format = CheckFormat::Text;
            let mut deny_warnings = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--deny-warnings" => deny_warnings = true,
                    "--format" => {
                        let value = it
                            .next()
                            .ok_or_else(|| CliError::new("--format: missing value", 2))?;
                        format = match value.as_str() {
                            "text" => CheckFormat::Text,
                            "json" => CheckFormat::Json,
                            other => {
                                return Err(CliError::new(
                                    format!("--format {other}: expected 'text' or 'json'"),
                                    2,
                                ))
                            }
                        };
                    }
                    other => return Err(CliError::new(format!("check: unknown flag {other}"), 2)),
                }
            }
            Ok(Command::Check {
                desc,
                format,
                deny_warnings,
            })
        }
        Some("analyze") => {
            let desc = it
                .next()
                .ok_or_else(|| CliError::new("analyze: missing description path", 2))?
                .clone();
            if let Some(flag) = it.next() {
                return Err(CliError::new(format!("analyze: unknown flag {flag}"), 2));
            }
            Ok(Command::Analyze { desc })
        }
        Some("run") => {
            let desc = it
                .next()
                .ok_or_else(|| CliError::new("run: missing description path", 2))?
                .clone();
            let events = it
                .next()
                .ok_or_else(|| CliError::new("run: missing events path", 2))?
                .clone();
            let mut window = None;
            let mut horizon = None;
            let mut eval = rtec::engine::EvalMode::from_env();
            let mut profile = false;
            while let Some(flag) = it.next() {
                if flag == "--profile" {
                    profile = true;
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::new(format!("{flag}: missing value"), 2))?;
                if flag == "--eval" {
                    eval = rtec::engine::EvalMode::parse(value).ok_or_else(|| {
                        CliError::new(
                            format!("--eval {value}: expected interpreter|plan|optimized"),
                            2,
                        )
                    })?;
                    continue;
                }
                let parsed: Timepoint = value
                    .parse()
                    .map_err(|e| CliError::new(format!("{flag} {value}: {e}"), 2))?;
                match flag.as_str() {
                    "--window" => window = Some(parsed),
                    "--horizon" => horizon = Some(parsed),
                    other => return Err(CliError::new(format!("unknown flag {other}"), 2)),
                }
            }
            Ok(Command::Run {
                desc,
                events,
                window,
                horizon,
                eval,
                profile,
            })
        }
        Some("serve") => {
            let mut addr = "127.0.0.1:7878".to_string();
            let mut threads = 4usize;
            let mut stdio = false;
            let mut metrics_addr = None;
            let mut checkpoint_dir = None;
            let mut max_worker_restarts = None;
            let mut journal_dir = None;
            let mut journal_fsync = rtec_service::FsyncPolicy::default();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--stdio" => stdio = true,
                    "--journal-dir" => {
                        journal_dir = Some(
                            it.next()
                                .ok_or_else(|| CliError::new("--journal-dir: missing value", 2))?
                                .clone(),
                        );
                    }
                    "--journal-fsync" => {
                        let value = it
                            .next()
                            .ok_or_else(|| CliError::new("--journal-fsync: missing value", 2))?;
                        journal_fsync =
                            rtec_service::FsyncPolicy::parse(value).ok_or_else(|| {
                                CliError::new(
                                    format!(
                                        "--journal-fsync {value}: expected always|interval:<ms>|never"
                                    ),
                                    2,
                                )
                            })?;
                    }
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| CliError::new("--addr: missing value", 2))?
                            .clone();
                    }
                    "--metrics-addr" => {
                        metrics_addr = Some(
                            it.next()
                                .ok_or_else(|| CliError::new("--metrics-addr: missing value", 2))?
                                .clone(),
                        );
                    }
                    "--checkpoint-dir" => {
                        checkpoint_dir = Some(
                            it.next()
                                .ok_or_else(|| CliError::new("--checkpoint-dir: missing value", 2))?
                                .clone(),
                        );
                    }
                    "--threads" => {
                        let value = it
                            .next()
                            .ok_or_else(|| CliError::new("--threads: missing value", 2))?;
                        threads = value
                            .parse()
                            .map_err(|e| CliError::new(format!("--threads {value}: {e}"), 2))?;
                    }
                    "--max-worker-restarts" => {
                        let value = it.next().ok_or_else(|| {
                            CliError::new("--max-worker-restarts: missing value", 2)
                        })?;
                        max_worker_restarts = Some(value.parse().map_err(|e| {
                            CliError::new(format!("--max-worker-restarts {value}: {e}"), 2)
                        })?);
                    }
                    other => return Err(CliError::new(format!("unknown flag {other}"), 2)),
                }
            }
            Ok(Command::Serve {
                addr,
                threads,
                stdio,
                metrics_addr,
                checkpoint_dir,
                max_worker_restarts,
                journal_dir,
                journal_fsync,
            })
        }
        Some("cluster") => {
            let mut addr = "127.0.0.1:7900".to_string();
            let mut backends = Vec::new();
            let mut vnodes = 32usize;
            let mut health_interval_ms = 500u64;
            while let Some(flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::new(format!("{flag}: missing value"), 2))?;
                match flag.as_str() {
                    "--addr" => addr = value.clone(),
                    "--backend" => backends.push(value.clone()),
                    "--vnodes" => {
                        vnodes = value
                            .parse()
                            .map_err(|e| CliError::new(format!("--vnodes {value}: {e}"), 2))?;
                    }
                    "--health-interval-ms" => {
                        health_interval_ms = value.parse().map_err(|e| {
                            CliError::new(format!("--health-interval-ms {value}: {e}"), 2)
                        })?;
                    }
                    other => {
                        return Err(CliError::new(format!("cluster: unknown flag {other}"), 2))
                    }
                }
            }
            if backends.is_empty() {
                return Err(CliError::new(
                    "cluster: at least one --backend is required",
                    2,
                ));
            }
            Ok(Command::Cluster {
                addr,
                backends,
                vnodes,
                health_interval_ms,
            })
        }
        Some("stream") => {
            let desc = it
                .next()
                .ok_or_else(|| CliError::new("stream: missing description path", 2))?
                .clone();
            let events = it
                .next()
                .ok_or_else(|| CliError::new("stream: missing events path", 2))?
                .clone();
            let mut addr = "127.0.0.1:7878".to_string();
            let mut opts = rtec_service::StreamOptions::default();
            while let Some(flag) = it.next() {
                if flag == "--no-close" {
                    opts.close = false;
                    continue;
                }
                if flag == "--dedup" {
                    opts.dedup = true;
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::new(format!("{flag}: missing value"), 2))?;
                let bad =
                    |e: &dyn std::fmt::Display| CliError::new(format!("{flag} {value}: {e}"), 2);
                match flag.as_str() {
                    "--addr" => addr = value.clone(),
                    "--session" => opts.session = value.clone(),
                    "--window" => opts.window = Some(value.parse().map_err(|e| bad(&e))?),
                    "--horizon" => opts.horizon = Some(value.parse().map_err(|e| bad(&e))?),
                    "--shards" => opts.shards = value.parse().map_err(|e| bad(&e))?,
                    "--queue" => opts.queue = Some(value.parse().map_err(|e| bad(&e))?),
                    "--batch" => opts.batch_size = value.parse().map_err(|e| bad(&e))?,
                    "--rate" => opts.rate = Some(value.parse().map_err(|e| bad(&e))?),
                    "--tick-every" => {
                        opts.tick_every = Some(value.parse().map_err(|e| bad(&e))?);
                    }
                    "--reorder-slack" => {
                        opts.reorder_slack = Some(value.parse().map_err(|e| bad(&e))?);
                    }
                    other => return Err(CliError::new(format!("unknown flag {other}"), 2)),
                }
            }
            Ok(Command::Stream {
                desc,
                events,
                addr,
                opts,
            })
        }
        Some("dataset") => {
            let csv = it
                .next()
                .ok_or_else(|| CliError::new("dataset: missing csv path", 2))?
                .clone();
            if csv == "synth" {
                let mut tier = None;
                let mut seed = None;
                let mut out = None;
                let mut desc_out = None;
                while let Some(flag) = it.next() {
                    let mut value = |name: &str| {
                        it.next()
                            .cloned()
                            .ok_or_else(|| CliError::new(format!("{name}: missing value"), 2))
                    };
                    match flag.as_str() {
                        "--tier" => tier = Some(value("--tier")?),
                        "--seed" => {
                            let v = value("--seed")?;
                            seed = Some(
                                v.parse()
                                    .map_err(|e| CliError::new(format!("--seed {v}: {e}"), 2))?,
                            );
                        }
                        "--out" => out = Some(value("--out")?),
                        "--desc" => desc_out = Some(value("--desc")?),
                        other => {
                            return Err(CliError::new(
                                format!("dataset synth: unknown flag {other}"),
                                2,
                            ))
                        }
                    }
                }
                return Ok(Command::DatasetSynth {
                    tier,
                    seed,
                    out,
                    desc_out,
                });
            }
            let mut strict = false;
            let mut max_diagnostics = 20usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--strict" => strict = true,
                    "--max-diagnostics" => {
                        let value = it
                            .next()
                            .ok_or_else(|| CliError::new("--max-diagnostics: missing value", 2))?;
                        max_diagnostics = value.parse().map_err(|e| {
                            CliError::new(format!("--max-diagnostics {value}: {e}"), 2)
                        })?;
                    }
                    other => {
                        return Err(CliError::new(format!("dataset: unknown flag {other}"), 2))
                    }
                }
            }
            Ok(Command::Dataset {
                csv,
                strict,
                max_diagnostics,
            })
        }
        Some("similarity") => {
            let a = it
                .next()
                .ok_or_else(|| CliError::new("similarity: missing first path", 2))?
                .clone();
            let b = it
                .next()
                .ok_or_else(|| CliError::new("similarity: missing second path", 2))?
                .clone();
            Ok(Command::Similarity { a, b })
        }
        Some(other) => Err(CliError::new(format!("unknown command '{other}'"), 2)),
    }
}

/// Parses an event file into a stream. Lines: `TIME TERM`, `%` comments.
pub fn parse_event_file(text: &str) -> Result<InputStream, CliError> {
    let mut stream = InputStream::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let (time_str, term_str) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| CliError::new(format!("line {}: expected 'TIME TERM'", i + 1), 3))?;
        let t: Timepoint = time_str
            .trim()
            .parse()
            .map_err(|e| CliError::new(format!("line {}: bad time '{time_str}': {e}", i + 1), 3))?;
        stream
            .push_event_src(term_str.trim().trim_end_matches('.'), t)
            .map_err(|e| CliError::new(format!("line {}: {e}", i + 1), 3))?;
    }
    Ok(stream)
}

/// `check` subcommand over description source text. Returns the report;
/// errors out (exit 1) when validation or semantic analysis fails, or —
/// with `deny_warnings` — when any warning-severity diagnostic fires.
pub fn check_source(src: &str, deny_warnings: bool) -> Result<String, CliError> {
    let desc = EventDescription::parse_lenient(src);
    let lint = rtec_lint::analyze(&desc);
    let mut out = String::new();
    let _ = writeln!(out, "clauses: {}", desc.clauses.len());
    for e in &desc.parse_errors {
        let _ = writeln!(out, "syntax error: {e}");
    }
    let compiled = desc.compile().map_err(|e| {
        // Cycles and the like: the analyzer has the same finding with a
        // clause position, so attach its report to the fatal message.
        let mut message = format!("fatal: {e}");
        if lint.has_errors() {
            let _ = write!(message, "\n{}", lint.render());
        }
        CliError::new(message, 1)
    })?;
    let _ = writeln!(
        out,
        "rules: {} simple, {} holdsFor; background facts: {}",
        compiled.simple.len(),
        compiled.statics.len(),
        compiled.facts.len()
    );
    for issue in &compiled.report.issues {
        let _ = writeln!(out, "{issue}");
    }
    let decls = Declarations::from_description(&compiled);
    if !decls.is_empty() {
        let schema = decls.check(&compiled);
        for issue in &schema.issues {
            let _ = writeln!(out, "schema {issue}");
        }
        if schema.issues.is_empty() {
            let _ = writeln!(out, "schema check: ok");
        }
    }
    let strata: Vec<String> = compiled
        .strata
        .iter()
        .map(|(f, a)| format!("{}/{}", compiled.symbols.try_name(*f).unwrap_or("?"), a))
        .collect();
    let _ = writeln!(out, "evaluation order: {}", strata.join(" -> "));
    let semantic: Vec<&rtec_lint::Diagnostic> = lint
        .diagnostics
        .iter()
        .filter(|d| {
            d.code != rtec_lint::codes::SYNTAX_ERROR && d.code != rtec_lint::codes::INVALID_CLAUSE
        })
        .collect();
    if semantic.is_empty() {
        let _ = writeln!(out, "lint: clean");
    } else {
        let _ = writeln!(
            out,
            "lint: {} error(s), {} warning(s)",
            semantic
                .iter()
                .filter(|d| d.severity == rtec::error::Severity::Error)
                .count(),
            semantic
                .iter()
                .filter(|d| d.severity == rtec::error::Severity::Warning)
                .count()
        );
        for d in &semantic {
            let _ = writeln!(out, "{}", d.render());
        }
    }
    if !desc.parse_errors.is_empty() || compiled.report.has_errors() || lint.has_errors() {
        return Err(CliError::new(out, 1));
    }
    if deny_warnings && !lint.diagnostics.is_empty() {
        let _ = writeln!(
            out,
            "deny-warnings: {} warning(s) promoted to failure",
            lint.diagnostics.len()
        );
        return Err(CliError::new(out, 1));
    }
    Ok(out)
}

/// `check --format json` over description source text: one JSON array of
/// lint diagnostics (syntax, validation and semantic findings alike) in
/// the stable shape documented in docs/LINTS.md. The boolean is `false`
/// when any error-severity diagnostic fired (process exit code 1), or —
/// with `deny_warnings` — when any diagnostic fired at all.
pub fn check_source_json(src: &str, deny_warnings: bool) -> (String, bool) {
    let report = rtec_lint::analyze_source(src);
    let json = serde_json::to_string(&report.to_json()).unwrap_or_else(|_| "[]".into());
    let ok = if deny_warnings {
        report.diagnostics.is_empty()
    } else {
        !report.has_errors()
    };
    (json, ok)
}

/// `analyze` subcommand over description source text: compiles the
/// description to its evaluation plan, runs the `rtec-analysis` abstract
/// interpreter, and renders the per-fluent / per-rule facts table
/// (value domains, emptiness proofs, reachability, productivity).
pub fn analyze_source(src: &str) -> Result<String, CliError> {
    let desc = EventDescription::parse_lenient(src);
    if !desc.parse_errors.is_empty() {
        let mut message = String::from("analyze: description does not parse\n");
        for e in &desc.parse_errors {
            let _ = writeln!(message, "syntax error: {e}");
        }
        return Err(CliError::new(message.trim_end().to_string(), 1));
    }
    let compiled = desc
        .compile()
        .map_err(|e| CliError::new(format!("fatal: {e}"), 1))?;
    let analysis = rtec_analysis::analyze(&compiled);
    let mut out = analysis.render_table();
    let proofs = analysis.proofs();
    let _ = write!(
        out,
        "\noptimizer proofs: {} unsatisfiable clause(s), {} unreachable clause(s), {} never-holding fluent(s)",
        proofs.unsat_clauses.len(),
        proofs.unreachable_clauses.len(),
        proofs.never_holds.len()
    );
    Ok(out)
}

/// `run` subcommand over in-memory inputs. Returns the rendered output.
/// With `profile`, a per-rule evaluation profile table is appended
/// after the summary; the recognised rows themselves are identical
/// either way.
pub fn run_source(
    desc_src: &str,
    events_src: &str,
    window: Option<Timepoint>,
    horizon: Option<Timepoint>,
    eval: rtec::engine::EvalMode,
    profile: bool,
) -> Result<String, CliError> {
    let desc = EventDescription::parse_lenient(desc_src);
    let compiled = desc
        .compile()
        .map_err(|e| CliError::new(format!("fatal: {e}"), 1))?;
    let stream = parse_event_file(events_src)?;
    let horizon = horizon.unwrap_or_else(|| stream.horizon() + 1);
    let config = match window {
        Some(w) => EngineConfig::windowed(w),
        None => EngineConfig::default(),
    };
    let mut engine = match eval {
        rtec::engine::EvalMode::Interpreter => Engine::new(&compiled, config),
        rtec::engine::EvalMode::Plan => {
            use rtec_plan::WithPlan as _;
            Engine::with_plan(&compiled, config)
        }
        rtec::engine::EvalMode::Optimized => Engine::with_evaluator(
            &compiled,
            config,
            Box::new(rtec_analysis::optimized_plan(&compiled)),
        ),
    };
    if profile {
        engine.enable_profiler();
    }
    stream.load_into(&mut engine);
    engine.run_to(horizon);
    let profile_table = engine
        .profile()
        .map(|agg| agg.render_table(rtec_obs::profile::DEFAULT_TOP_N));
    let symbols = engine.symbols().clone();
    let stats = engine.stats();
    let output = engine.into_output();

    rtec_obs::info(
        "run.summary",
        &[
            ("events", stats.events_processed.into()),
            ("windows", stats.windows.into()),
            ("events_dropped", stats.events_dropped.into()),
            ("fvps", output.len().into()),
            ("warnings", output.warnings.len().into()),
        ],
    );
    let mut rows: Vec<String> = output
        .iter()
        .map(|(fvp, list)| format!("holdsFor({}) = {}", fvp.display(&symbols), list))
        .collect();
    rows.sort();
    let mut out = rows.join("\n");
    let _ = write!(
        out,
        "\n\n{} events in {} window(s); {} fluent-value pair(s) recognised",
        stats.events_processed,
        stats.windows,
        output.len()
    );
    for w in &output.warnings {
        let _ = write!(out, "\nwarning: {w}");
    }
    if let Some(table) = profile_table {
        let _ = write!(out, "\n\n{table}");
    }
    Ok(out)
}

/// `stream` subcommand: replays an event file against a running server.
///
/// Returns the recognised output in the exact shape `run` prints (so the
/// two can be diffed byte for byte); the streaming summary (ticks,
/// backpressure, tick latency) is emitted as a `stream.summary` event on
/// the diagnostic stream.
pub fn stream_against(
    addr: &str,
    desc_src: &str,
    events_src: &str,
    opts: &rtec_service::StreamOptions,
) -> Result<String, CliError> {
    let file = rtec_service::parse_stream_file(events_src).map_err(|e| CliError::new(e, 3))?;
    let mut client = rtec_service::Client::connect(addr).map_err(|e| CliError::new(e, 4))?;
    let report = rtec_service::stream_file(&mut client, desc_src, &file, opts)
        .map_err(|e| CliError::new(e, 4))?;
    let stats = &report.stats;
    let latency = &stats["tick_latency"];
    rtec_obs::info(
        "stream.summary",
        &[
            ("session", opts.session.as_str().into()),
            ("events", report.events.into()),
            ("intervals", report.intervals.into()),
            ("ticks", report.ticks.into()),
            (
                "backpressure_waits",
                stats["backpressure_waits"].as_i64().unwrap_or(0).into(),
            ),
            (
                "late_couplings",
                stats["late_couplings"].as_i64().unwrap_or(0).into(),
            ),
            (
                "tick_latency_mean_us",
                latency["mean_us"].as_i64().unwrap_or(0).into(),
            ),
            (
                "tick_latency_max_us",
                latency["max_us"].as_i64().unwrap_or(0).into(),
            ),
            (
                "tick_latency_count",
                latency["count"].as_i64().unwrap_or(0).into(),
            ),
        ],
    );
    Ok(report.render())
}

/// `dataset` subcommand over AIS CSV text.
///
/// Lossy by default: corrupt rows are skipped and summarised (so one
/// garbled transponder line never sinks an hour-long import); the
/// command fails (exit 3) only when *no* row survives. `--strict`
/// aborts on the first corrupt row instead, as the pre-PR-5 importer
/// did.
pub fn dataset_source(csv: &str, strict: bool, max_diagnostics: usize) -> Result<String, CliError> {
    use maritime::csv::{parse_ais_csv, parse_ais_csv_lossy, RowDiagnostic};
    let (trajectories, mapping, diagnostics): (_, _, Vec<RowDiagnostic>) = if strict {
        let (trajectories, mapping) =
            parse_ais_csv(csv).map_err(|e| CliError::new(e.to_string(), 3))?;
        (trajectories, mapping, Vec::new())
    } else {
        parse_ais_csv_lossy(csv)
    };
    let points: usize = trajectories
        .iter()
        .map(maritime::ais::Trajectory::len)
        .sum();
    rtec_obs::info(
        "dataset.summary",
        &[
            ("vessels", (mapping.len() as i64).into()),
            ("points", (points as i64).into()),
            ("skipped_rows", (diagnostics.len() as i64).into()),
        ],
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "vessels: {}; points: {}; skipped rows: {}",
        mapping.len(),
        points,
        diagnostics.len()
    );
    for (mmsi, id) in &mapping {
        let span = trajectories
            .get(id.0 as usize)
            .and_then(|tr| Some((tr.start()?, tr.end()?, tr.len())));
        match span {
            Some((start, end, n)) => {
                let _ = writeln!(
                    out,
                    "  mmsi {mmsi} -> v{}: {n} point(s), t {start}..{end}",
                    id.0
                );
            }
            None => {
                let _ = writeln!(out, "  mmsi {mmsi} -> v{}: empty", id.0);
            }
        }
    }
    if !diagnostics.is_empty() {
        let shown = diagnostics.len().min(max_diagnostics);
        let _ = writeln!(
            out,
            "skipped rows ({} of {} shown):",
            shown,
            diagnostics.len()
        );
        for d in diagnostics.iter().take(max_diagnostics) {
            let _ = writeln!(out, "  {d}");
        }
        if diagnostics.len() > max_diagnostics {
            let _ = writeln!(
                out,
                "  ... {} more (raise --max-diagnostics)",
                diagnostics.len() - max_diagnostics
            );
        }
    }
    let out = out.trim_end().to_string();
    if points == 0 && !diagnostics.is_empty() {
        // Every row failed: that is an import failure, not a lossy one.
        return Err(CliError::new(
            format!("{out}\nno row survived the import"),
            3,
        ));
    }
    Ok(out)
}

/// The rendered output of `dataset synth`.
pub struct SynthSources {
    /// The event file (one `TIME EVENT_TERM` per line, time-ordered).
    pub events: String,
    /// The gold description over the generated fleet's background.
    pub description: String,
    /// Total events rendered.
    pub total: usize,
    /// Fleet size.
    pub vessels: usize,
    /// Last event time.
    pub horizon: i64,
}

/// `dataset synth`: renders a seeded Brest-scale synthetic stream (see
/// `maritime::synth` and docs/SCALE.md) to the CLI event-file format,
/// plus the gold description the stream runs under. Deterministic per
/// tier and seed.
pub fn dataset_synth_sources(
    tier: Option<&str>,
    seed: Option<u64>,
) -> Result<SynthSources, CliError> {
    use maritime::synth::{ScaleTier, SynthStats};
    let bad_tier = |name: &str| {
        CliError::new(
            format!("dataset synth: unknown tier {name:?} (small|smoke|brest)"),
            2,
        )
    };
    let tier = match tier {
        Some(name) => ScaleTier::parse(name).ok_or_else(|| bad_tier(name))?,
        None => match std::env::var("RTEC_SCALE_TIER") {
            Ok(name) => ScaleTier::parse(&name).ok_or_else(|| bad_tier(&name))?,
            Err(_) => ScaleTier::Small,
        },
    };
    let mut config = tier.config();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    let mut events = String::new();
    let mut stats = SynthStats::default();
    for (ev, t) in config.stream() {
        stats.count(&ev);
        let _ = writeln!(events, "{t} {}", ev.render());
    }
    let description = format!("{}\n{}", maritime::gold::GOLD_RULES, config.background());
    rtec_obs::info(
        "dataset.synth",
        &[
            ("tier", tier.name().into()),
            ("seed", (config.seed as i64).into()),
            ("vessels", (config.vessels as i64).into()),
            ("events", (stats.total as i64).into()),
            ("horizon", config.horizon().into()),
        ],
    );
    Ok(SynthSources {
        events,
        description,
        total: stats.total,
        vessels: config.vessels,
        horizon: config.horizon(),
    })
}

/// `similarity` subcommand over two description sources.
///
/// Following the paper's Definition 4.14, the metric is defined over the
/// *rules defining FVPs*; background facts and declarations are filtered
/// out before comparison (otherwise a missing `areaType/2` fact would be
/// penalised like a missing rule).
pub fn similarity_sources(a_src: &str, b_src: &str) -> String {
    let a = rules_only(EventDescription::parse_lenient(a_src));
    let b = rules_only(EventDescription::parse_lenient(b_src));
    let explanation = simdist::explain(&a, &b);
    explanation.render()
}

/// Keeps only the clauses whose head is `initiatedAt`, `terminatedAt` or
/// `holdsFor`.
fn rules_only(mut desc: EventDescription) -> EventDescription {
    let keep: Vec<rtec::Symbol> = ["initiatedAt", "terminatedAt", "holdsFor"]
        .iter()
        .filter_map(|n| desc.symbols.get(n))
        .collect();
    desc.clauses
        .retain(|c| c.head.functor().is_some_and(|f| keep.contains(&f)));
    desc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn arg_parsing_all_commands() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&s(&["check", "a.rtec"])).unwrap(),
            Command::Check {
                desc: "a.rtec".into(),
                format: CheckFormat::Text,
                deny_warnings: false
            }
        );
        assert_eq!(
            parse_args(&s(&["check", "a.rtec", "--format", "json"])).unwrap(),
            Command::Check {
                desc: "a.rtec".into(),
                format: CheckFormat::Json,
                deny_warnings: false
            }
        );
        assert_eq!(
            parse_args(&s(&[
                "check",
                "a.rtec",
                "--deny-warnings",
                "--format",
                "json"
            ]))
            .unwrap(),
            Command::Check {
                desc: "a.rtec".into(),
                format: CheckFormat::Json,
                deny_warnings: true
            }
        );
        assert!(parse_args(&s(&["check", "a.rtec", "--format", "yaml"])).is_err());
        assert!(parse_args(&s(&["check", "a.rtec", "--nope"])).is_err());
        assert_eq!(
            parse_args(&s(&["analyze", "a.rtec"])).unwrap(),
            Command::Analyze {
                desc: "a.rtec".into()
            }
        );
        assert!(parse_args(&s(&["analyze"])).is_err());
        assert!(parse_args(&s(&["analyze", "a.rtec", "--nope"])).is_err());
        assert_eq!(
            parse_args(&s(&["run", "a.rtec", "e.evt", "--window", "3600"])).unwrap(),
            Command::Run {
                desc: "a.rtec".into(),
                events: "e.evt".into(),
                window: Some(3600),
                horizon: None,
                eval: rtec::engine::EvalMode::from_env(),
                profile: false
            }
        );
        assert_eq!(
            parse_args(&s(&[
                "run",
                "a.rtec",
                "e.evt",
                "--eval",
                "plan",
                "--profile"
            ]))
            .unwrap(),
            Command::Run {
                desc: "a.rtec".into(),
                events: "e.evt".into(),
                window: None,
                horizon: None,
                eval: rtec::engine::EvalMode::Plan,
                profile: true
            }
        );
        assert_eq!(
            parse_args(&s(&["run", "a.rtec", "e.evt", "--eval", "optimized"])).unwrap(),
            Command::Run {
                desc: "a.rtec".into(),
                events: "e.evt".into(),
                window: None,
                horizon: None,
                eval: rtec::engine::EvalMode::Optimized,
                profile: false
            }
        );
        let err = parse_args(&s(&["run", "a.rtec", "e.evt", "--eval", "magic"])).unwrap_err();
        assert!(
            err.message.contains("interpreter|plan|optimized"),
            "{err:?}"
        );
        assert_eq!(
            parse_args(&s(&["similarity", "a.rtec", "b.rtec"])).unwrap(),
            Command::Similarity {
                a: "a.rtec".into(),
                b: "b.rtec".into()
            }
        );
        assert!(parse_args(&s(&["bogus"])).is_err());
        assert!(parse_args(&s(&["run", "a.rtec"])).is_err());
        assert!(parse_args(&s(&["run", "a", "b", "--window"])).is_err());
    }

    #[test]
    fn arg_parsing_service_commands() {
        assert_eq!(
            parse_args(&s(&["serve", "--addr", "0.0.0.0:9000", "--threads", "8"])).unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                threads: 8,
                stdio: false,
                metrics_addr: None,
                checkpoint_dir: None,
                max_worker_restarts: None,
                journal_dir: None,
                journal_fsync: rtec_service::FsyncPolicy::default()
            }
        );
        assert_eq!(
            parse_args(&s(&["serve", "--stdio"])).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                threads: 4,
                stdio: true,
                metrics_addr: None,
                checkpoint_dir: None,
                max_worker_restarts: None,
                journal_dir: None,
                journal_fsync: rtec_service::FsyncPolicy::default()
            }
        );
        assert_eq!(
            parse_args(&s(&["serve", "--metrics-addr", "127.0.0.1:9100"])).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                threads: 4,
                stdio: false,
                metrics_addr: Some("127.0.0.1:9100".into()),
                checkpoint_dir: None,
                max_worker_restarts: None,
                journal_dir: None,
                journal_fsync: rtec_service::FsyncPolicy::default()
            }
        );
        assert_eq!(
            parse_args(&s(&[
                "serve",
                "--checkpoint-dir",
                "/var/lib/rtec",
                "--max-worker-restarts",
                "5"
            ]))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                threads: 4,
                stdio: false,
                metrics_addr: None,
                checkpoint_dir: Some("/var/lib/rtec".into()),
                max_worker_restarts: Some(5),
                journal_dir: None,
                journal_fsync: rtec_service::FsyncPolicy::default()
            }
        );
        assert_eq!(
            parse_args(&s(&[
                "serve",
                "--journal-dir",
                "/var/lib/rtec/journal",
                "--journal-fsync",
                "interval:50"
            ]))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                threads: 4,
                stdio: false,
                metrics_addr: None,
                checkpoint_dir: None,
                max_worker_restarts: None,
                journal_dir: Some("/var/lib/rtec/journal".into()),
                journal_fsync: rtec_service::FsyncPolicy::Interval { millis: 50 }
            }
        );
        assert!(parse_args(&s(&["serve", "--checkpoint-dir"])).is_err());
        assert!(parse_args(&s(&["serve", "--max-worker-restarts", "nope"])).is_err());
        assert!(parse_args(&s(&["serve", "--journal-fsync", "sometimes"])).is_err());
        assert_eq!(
            parse_args(&s(&[
                "cluster",
                "--backend",
                "127.0.0.1:7001@127.0.0.1:9001",
                "--backend",
                "127.0.0.1:7002",
                "--addr",
                "127.0.0.1:7900",
                "--vnodes",
                "64",
                "--health-interval-ms",
                "250"
            ]))
            .unwrap(),
            Command::Cluster {
                addr: "127.0.0.1:7900".into(),
                backends: vec![
                    "127.0.0.1:7001@127.0.0.1:9001".into(),
                    "127.0.0.1:7002".into()
                ],
                vnodes: 64,
                health_interval_ms: 250
            }
        );
        assert!(parse_args(&s(&["cluster"])).is_err(), "needs a backend");
        assert!(parse_args(&s(&["cluster", "--backend"])).is_err());
        let cmd = parse_args(&s(&[
            "stream",
            "a.rtec",
            "e.evt",
            "--addr",
            "127.0.0.1:1234",
            "--session",
            "vessels",
            "--shards",
            "4",
            "--window",
            "3600",
            "--tick-every",
            "600",
            "--batch",
            "16",
            "--rate",
            "1000",
            "--no-close",
        ]))
        .unwrap();
        match cmd {
            Command::Stream {
                desc,
                events,
                addr,
                opts,
            } => {
                assert_eq!(desc, "a.rtec");
                assert_eq!(events, "e.evt");
                assert_eq!(addr, "127.0.0.1:1234");
                assert_eq!(opts.session, "vessels");
                assert_eq!(opts.shards, 4);
                assert_eq!(opts.window, Some(3600));
                assert_eq!(opts.tick_every, Some(600));
                assert_eq!(opts.batch_size, 16);
                assert_eq!(opts.rate, Some(1000.0));
                assert!(!opts.close);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse_args(&s(&["serve", "--threads", "zero"])).is_err());
        assert!(parse_args(&s(&["stream", "a.rtec"])).is_err());
        assert!(parse_args(&s(&["stream", "a", "b", "--shards", "x"])).is_err());
    }

    #[test]
    fn arg_parsing_stream_reorder_flags() {
        let cmd = parse_args(&s(&[
            "stream",
            "a.rtec",
            "e.evt",
            "--reorder-slack",
            "30",
            "--dedup",
        ]))
        .unwrap();
        match cmd {
            Command::Stream { opts, .. } => {
                assert_eq!(opts.reorder_slack, Some(30));
                assert!(opts.dedup);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse_args(&s(&["stream", "a", "b", "--reorder-slack", "x"])).is_err());
    }

    #[test]
    fn arg_parsing_dataset() {
        assert_eq!(
            parse_args(&s(&["dataset", "ais.csv"])).unwrap(),
            Command::Dataset {
                csv: "ais.csv".into(),
                strict: false,
                max_diagnostics: 20
            }
        );
        assert_eq!(
            parse_args(&s(&[
                "dataset",
                "ais.csv",
                "--strict",
                "--max-diagnostics",
                "3"
            ]))
            .unwrap(),
            Command::Dataset {
                csv: "ais.csv".into(),
                strict: true,
                max_diagnostics: 3
            }
        );
        assert!(parse_args(&s(&["dataset"])).is_err());
        assert!(parse_args(&s(&["dataset", "a.csv", "--max-diagnostics", "x"])).is_err());
        assert!(parse_args(&s(&["dataset", "a.csv", "--nope"])).is_err());
    }

    #[test]
    fn arg_parsing_dataset_synth() {
        assert_eq!(
            parse_args(&s(&["dataset", "synth"])).unwrap(),
            Command::DatasetSynth {
                tier: None,
                seed: None,
                out: None,
                desc_out: None
            }
        );
        assert_eq!(
            parse_args(&s(&[
                "dataset", "synth", "--tier", "smoke", "--seed", "7", "--out", "e.evt", "--desc",
                "d.rtec"
            ]))
            .unwrap(),
            Command::DatasetSynth {
                tier: Some("smoke".into()),
                seed: Some(7),
                out: Some("e.evt".into()),
                desc_out: Some("d.rtec".into())
            }
        );
        assert!(parse_args(&s(&["dataset", "synth", "--seed", "x"])).is_err());
        assert!(parse_args(&s(&["dataset", "synth", "--tier"])).is_err());
        assert!(parse_args(&s(&["dataset", "synth", "--nope"])).is_err());
    }

    #[test]
    fn dataset_synth_renders_runnable_sources() {
        let synth = dataset_synth_sources(Some("small"), Some(5)).unwrap();
        assert_eq!(synth.events.lines().count(), synth.total);
        assert!(synth.total > 1_000);
        // Deterministic per seed; a different seed diverges.
        assert_eq!(
            dataset_synth_sources(Some("small"), Some(5))
                .unwrap()
                .events,
            synth.events
        );
        assert_ne!(
            dataset_synth_sources(Some("small"), Some(6))
                .unwrap()
                .events,
            synth.events
        );
        assert!(dataset_synth_sources(Some("galactic"), None).is_err());
        // The emitted pair must feed straight into `run`.
        let compiled = EventDescription::parse(&synth.description)
            .unwrap()
            .compile()
            .unwrap();
        assert!(
            !compiled.report.has_errors(),
            "{:?}",
            compiled.report.errors().collect::<Vec<_>>()
        );
        let first = synth.events.lines().next().unwrap();
        let (t, term) = first.split_once(' ').unwrap();
        assert!(t.parse::<i64>().is_ok(), "bad time in {first:?}");
        assert!(term.contains('('), "bad term in {first:?}");
    }

    const AIS: &str = "\
sourcemmsi,speedoverground,courseoverground,trueheading,lon,lat,t
227002330,9.5,91.0,90.0,-4.45,48.35,1443650400
227002330,NaNopes,91.0,90.0,-4.44,48.35,1443650460
227002330,9.7,91.0,90.0,-4.43,48.35,1443650520
";

    #[test]
    fn dataset_lossy_summarises_skipped_rows() {
        let out = dataset_source(AIS, false, 20).unwrap();
        assert!(
            out.contains("vessels: 1; points: 2; skipped rows: 1"),
            "{out}"
        );
        assert!(out.contains("mmsi 227002330 -> v0"), "{out}");
        assert!(out.contains("line 3:"), "{out}");
        // Strict mode aborts on that same row.
        let err = dataset_source(AIS, true, 20).unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("line 3"), "{}", err.message);
    }

    #[test]
    fn dataset_caps_diagnostics_but_counts_all() {
        let mut csv = String::from("sourcemmsi,speedoverground,courseoverground,lon,lat,t\n");
        csv.push_str("227002330,9.5,91.0,-4.45,48.35,1443650400\n");
        for _ in 0..5 {
            csv.push_str("bad row\n");
        }
        let out = dataset_source(&csv, false, 2).unwrap();
        assert!(out.contains("skipped rows: 5"), "{out}");
        assert!(out.contains("(2 of 5 shown)"), "{out}");
        assert!(out.contains("... 3 more"), "{out}");
    }

    #[test]
    fn dataset_fails_only_when_no_row_survives() {
        let all_bad = "sourcemmsi,speedoverground,courseoverground,lon,lat,t\nbad\nworse\n";
        let err = dataset_source(all_bad, false, 20).unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("no row survived"), "{}", err.message);
        // A single surviving row keeps the exit code at zero.
        let one_good = "sourcemmsi,speedoverground,courseoverground,lon,lat,t\n\
                        227002330,9.5,91.0,-4.45,48.35,1443650400\nbad\n";
        assert!(dataset_source(one_good, false, 20).is_ok());
    }

    #[test]
    fn event_file_parsing() {
        let stream = parse_event_file(
            "% a comment\n\
             10 entersArea(v1, a1)\n\
             \n\
             25 velocity(v1, 9.5, 91.0, 90.0).\n",
        )
        .unwrap();
        assert_eq!(stream.len(), 2);
        assert_eq!(stream.horizon(), 25);
        assert!(parse_event_file("nonsense").is_err());
        assert!(parse_event_file("abc entersArea(v1, a1)").is_err());
    }

    const DESC: &str = "
        inputEvent(entersArea/2).
        inputEvent(leavesArea/2).
        initiatedAt(inside(V, A)=true, T) :- happensAt(entersArea(V, A), T).
        terminatedAt(inside(V, A)=true, T) :- happensAt(leavesArea(V, A), T).
    ";

    #[test]
    fn check_reports_structure_and_schema() {
        let report = check_source(DESC, false).unwrap();
        assert!(report.contains("rules: 2 simple, 0 holdsFor"));
        assert!(report.contains("schema check: ok"));
        assert!(report.contains("evaluation order: inside/2"));
    }

    #[test]
    fn check_fails_on_bad_rules() {
        let err = check_source("initiatedAt(f(V), T) :- happensAt(e(V), T).", false).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("fluent-value pair"));
    }

    #[test]
    fn check_reports_lint_findings() {
        let report = check_source(DESC, false).unwrap();
        assert!(report.contains("lint: clean"), "{report}");
        // An undefined fluent is a lint warning (schema open for fluents
        // is closed here by the declarations, so it is an error).
        let err = check_source(
            "inputEvent(e/1).\n\
             initiatedAt(f(V)=true, T) :- happensAt(e(V), T), holdsAt(ghost(V)=true, T).",
            false,
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("RL0101"), "{}", err.message);
        // A cyclic description fails with the analyzer's diagnostic
        // attached to the fatal compile error.
        let err = check_source(
            "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).\n\
             initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).",
            false,
        )
        .unwrap_err();
        assert!(err.message.contains("RL0301"), "{}", err.message);
    }

    #[test]
    fn check_json_emits_stable_array() {
        let (json, ok) = check_source_json(
            "initiatedAt(moving(V)=true, T) :- happensAt(go(V), T), holdsAt(engine(V)=on, T).",
            false,
        );
        assert!(ok, "warnings only: exit 0");
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().expect("array");
        assert!(!arr.is_empty());
        for d in arr {
            for key in [
                "code",
                "severity",
                "clause",
                "line",
                "col",
                "message",
                "suggestion",
            ] {
                assert!(d.get(key).is_some(), "missing {key}: {d:?}");
            }
        }
        assert_eq!(arr[0]["code"], "RL0101");
        // Errors flip the exit status.
        let (json, ok) = check_source_json("initiatedAt(broken", false);
        assert!(!ok);
        assert!(json.contains("RL0001"));
        // A clean description is an empty array.
        let (json, ok) = check_source_json(DESC, false);
        assert!(ok);
        assert_eq!(json, "[]");
    }

    #[test]
    fn deny_warnings_promotes_warnings_to_failure() {
        // Warning-only description: undefined fluents under an open
        // schema pass plain `check` but fail `--deny-warnings`.
        let src =
            "initiatedAt(moving(V)=true, T) :- happensAt(go(V), T), holdsAt(engine(V)=on, T).";
        assert!(check_source(src, false).is_ok());
        let err = check_source(src, true).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("deny-warnings"), "{}", err.message);
        let (_, ok) = check_source_json(src, true);
        assert!(!ok, "deny-warnings must flip the JSON exit status too");
        // A clean description stays clean under the gate.
        assert!(check_source(DESC, true).is_ok());
    }

    #[test]
    fn gold_description_is_clean_under_deny_warnings() {
        let src = format!(
            "{}\n{}",
            maritime::gold::GOLD_RULES,
            maritime::gold::input_declarations()
        );
        let report = check_source(&src, true).unwrap();
        assert!(report.contains("lint: clean"), "{report}");
        let (json, ok) = check_source_json(&src, true);
        assert!(ok, "{json}");
    }

    #[test]
    fn analyze_renders_facts_and_proofs() {
        let out = analyze_source(DESC).unwrap();
        assert!(out.contains("schema: closed"), "{out}");
        assert!(out.contains("inside/2"), "{out}");
        assert!(
            out.contains("optimizer proofs: 0 unsatisfiable clause(s)"),
            "{out}"
        );
        // A contradictory rule shows up as EMPTY with an unsat proof.
        let out = analyze_source(
            "inputEvent(e/1).\n\
             initiatedAt(f(V)=true, T) :- happensAt(e(V), T), T >= 50, T < 10.",
        )
        .unwrap();
        assert!(out.contains("EMPTY"), "{out}");
        assert!(
            out.contains("optimizer proofs: 1 unsatisfiable clause(s)"),
            "{out}"
        );
        // Unparseable or cyclic input fails with exit 1.
        assert_eq!(analyze_source("initiatedAt(broken").unwrap_err().code, 1);
        assert_eq!(
            analyze_source(
                "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).\n\
                 initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).",
            )
            .unwrap_err()
            .code,
            1
        );
    }

    #[test]
    fn run_end_to_end() {
        use rtec::engine::EvalMode;
        let events = "10 entersArea(v1, a1)\n30 leavesArea(v1, a1)\n";
        let out = run_source(DESC, events, None, None, EvalMode::Interpreter, false).unwrap();
        assert!(
            out.contains("holdsFor(inside(v1, a1)=true) = [[11, 31)]"),
            "{out}"
        );
        assert!(out.contains("2 events in 1 window(s)"));
        // Windowed run gives the same intervals.
        let windowed =
            run_source(DESC, events, Some(7), None, EvalMode::Interpreter, false).unwrap();
        assert!(windowed.contains("[[11, 31)]"));
        // The plan and optimized evaluators render byte-identical
        // output in both shapes.
        for eval in [EvalMode::Plan, EvalMode::Optimized] {
            assert_eq!(
                out,
                run_source(DESC, events, None, None, eval, false).unwrap(),
                "{eval:?}"
            );
            assert_eq!(
                windowed,
                run_source(DESC, events, Some(7), None, eval, false).unwrap(),
                "{eval:?}"
            );
        }
    }

    #[test]
    fn run_profile_appends_a_table_without_changing_rows() {
        use rtec::engine::EvalMode;
        let events = "10 entersArea(v1, a1)\n30 leavesArea(v1, a1)\n";
        for eval in [EvalMode::Interpreter, EvalMode::Plan, EvalMode::Optimized] {
            let plain = run_source(DESC, events, Some(7), None, eval, false).unwrap();
            let profiled = run_source(DESC, events, Some(7), None, eval, true).unwrap();
            // The profiled output is the plain output plus the table.
            assert!(profiled.starts_with(&plain), "{eval:?}: rows diverged");
            let table = &profiled[plain.len()..];
            assert!(table.contains("rule"), "{eval:?}: no table header: {table}");
            assert!(
                table.contains("inside/2"),
                "{eval:?}: no attributed rule: {table}"
            );
        }
    }

    #[test]
    fn similarity_ignores_background_facts() {
        let a = "inputEvent(e/1).\nareaType(a1, fishing).\n\
                 initiatedAt(f(V)=true, T) :- happensAt(e(V), T).";
        let b = "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).";
        let report = similarity_sources(a, b);
        assert!(report.contains("similarity: 1.0000"), "{report}");
        assert!(!report.contains("inputEvent"));
    }

    #[test]
    fn similarity_renders_report() {
        let a = "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).";
        let b = "initiatedAt(f(V)=true, T) :- happensAt(renamed(V), T).";
        let report = similarity_sources(a, b);
        assert!(report.contains("similarity:"));
        assert!(report.contains("distance:"));
    }
}
