//! Multi-process cluster front-end: a consistent-hashing NDJSON proxy
//! over N backend `rtec-cli serve` processes that share a checkpoint
//! and journal directory.
//!
//! The front-end owns no recognition state. Sessions are placed on a
//! consistent-hash ring (FNV-1a over the session name, virtual nodes
//! per backend), every request line is forwarded to the placed backend,
//! and replies stream back verbatim — a client cannot tell the proxy
//! from a single server. What the proxy adds is failover: when a
//! backend stops answering (or answers `no_such_session` for a session
//! the cluster knows it placed there, i.e. the process was replaced),
//! the front-end marks it dead, re-opens the session on the next alive
//! ring owner with a `restore` — rebuilt from the shared checkpoint +
//! write-ahead journal, so every acked event survives — and retries
//! the original request once. The same restore path drives the two
//! admin operations: `drain` (migrate everything off one backend) and
//! `rebalance` (move every session back to its ring home).
//!
//! Health is observed two ways: a periodic NDJSON `metrics` probe on
//! the data port, plus — when a backend is declared as
//! `ADDR@METRICS_ADDR` — an HTTP `GET /readyz` that must return 200.
//! Probes flip the per-backend alive bit both ways, so a killed
//! backend that is respawned on the same port rejoins automatically.

use rtec_service::protocol::{codes, error_frame};
use serde_json::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Error code for a request that failed because no backend could take
/// it (connection refused everywhere, or failover restore failed).
pub const BACKEND_UNAVAILABLE: &str = "backend_unavailable";

/// How long a single backend round-trip may take before the proxy
/// declares the backend unhealthy for this request.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One backend process: its NDJSON address plus an optional metrics
/// address whose `/readyz` gates health probes.
#[derive(Debug)]
struct Backend {
    addr: String,
    metrics_addr: Option<String>,
    alive: AtomicBool,
    /// A drained backend stays probed but receives no placements until
    /// explicitly rebalanced onto again (draining clears on restart of
    /// the front-end, not of the backend).
    draining: AtomicBool,
}

/// Consistent-hash ring: `vnodes` pseudo-random points per backend on
/// the FNV-1a u64 circle. Placement walks clockwise from the session's
/// hash to the first point owned by a live, non-draining backend.
#[derive(Debug)]
struct Ring {
    /// Sorted (point, backend index).
    points: Vec<(u64, usize)>,
}

/// FNV-1a pushed through the SplitMix64 finalizer: FNV alone leaves
/// structured keys (near-identical address strings) clustered on the
/// circle; the finalizer spreads them uniformly.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Ring {
    fn new(backends: &[String], vnodes: usize) -> Ring {
        let mut points = Vec::with_capacity(backends.len() * vnodes);
        for (i, addr) in backends.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a64(format!("{addr}#{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The ring owner for `session` among backends accepted by `ok`.
    /// Returns `None` when no backend qualifies.
    fn place(&self, session: &str, ok: impl Fn(usize) -> bool) -> Option<usize> {
        let h = fnv1a64(session.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        (0..self.points.len())
            .map(|i| self.points[(start + i) % self.points.len()].1)
            .find(|&b| ok(b))
    }
}

/// The shared cluster state; [`Cluster`] is a cheap clone handle.
struct ClusterState {
    backends: Vec<Backend>,
    ring: Ring,
    /// Where each open session currently lives (backend index). Differs
    /// from the ring home after a failover or drain.
    placements: Mutex<HashMap<String, usize>>,
    shutting_down: AtomicBool,
}

/// The cluster front-end. Usable in-process (tests drive [`dispatch`])
/// or as a TCP server via [`Cluster::serve`].
///
/// [`dispatch`]: Cluster::dispatch
#[derive(Clone)]
pub struct Cluster {
    state: Arc<ClusterState>,
}

/// One backend's status row in `cluster stats` output.
fn backend_row(b: &Backend, sessions: usize) -> Value {
    let mut map = std::collections::BTreeMap::new();
    map.insert("addr".to_string(), Value::from(b.addr.as_str()));
    map.insert(
        "alive".to_string(),
        Value::from(b.alive.load(Ordering::SeqCst)),
    );
    map.insert(
        "draining".to_string(),
        Value::from(b.draining.load(Ordering::SeqCst)),
    );
    map.insert("sessions".to_string(), Value::from(sessions as i64));
    Value::Object(map)
}

impl Cluster {
    /// Builds a front-end over `backends`, each `ADDR` or
    /// `ADDR@METRICS_ADDR`. All backends start presumed alive; the
    /// first failed round-trip or probe corrects that.
    pub fn new(backends: &[String], vnodes: usize) -> Result<Cluster, String> {
        if backends.is_empty() {
            return Err("cluster: at least one --backend is required".to_string());
        }
        let parsed: Vec<Backend> = backends
            .iter()
            .map(|spec| {
                let (addr, metrics) = match spec.split_once('@') {
                    Some((a, m)) => (a.to_string(), Some(m.to_string())),
                    None => (spec.clone(), None),
                };
                Backend {
                    addr,
                    metrics_addr: metrics,
                    alive: AtomicBool::new(true),
                    draining: AtomicBool::new(false),
                }
            })
            .collect();
        let addrs: Vec<String> = parsed.iter().map(|b| b.addr.clone()).collect();
        Ok(Cluster {
            state: Arc::new(ClusterState {
                ring: Ring::new(&addrs, vnodes.max(1)),
                backends: parsed,
                placements: Mutex::new(HashMap::new()),
                shutting_down: AtomicBool::new(false),
            }),
        })
    }

    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down.load(Ordering::SeqCst)
    }

    fn placeable(&self, i: usize) -> bool {
        self.state.backends[i].alive.load(Ordering::SeqCst)
            && !self.state.backends[i].draining.load(Ordering::SeqCst)
    }

    /// One synchronous health sweep: probe every backend and update its
    /// alive bit. Returns the number of live backends. Tests call this
    /// directly; [`Cluster::serve`] calls it on a timer.
    pub fn probe(&self) -> usize {
        let mut live = 0;
        for b in &self.state.backends {
            let mut ok = roundtrip(&b.addr, "{\"cmd\":\"metrics\"}").is_ok();
            if ok {
                if let Some(metrics) = &b.metrics_addr {
                    ok = http_ready(metrics);
                }
            }
            b.alive.store(ok, Ordering::SeqCst);
            live += usize::from(ok);
        }
        live
    }

    /// Handles one request line, proxying to the placed backend with
    /// one failover retry. Always returns a complete reply frame.
    pub fn dispatch(&self, line: &str) -> String {
        let req: Value = match serde_json::from_str(line.trim()) {
            Ok(v) => v,
            Err(e) => return error_frame(codes::BAD_FRAME, &format!("malformed request: {e}")),
        };
        let cmd = req.get("cmd").and_then(Value::as_str).unwrap_or_default();
        match cmd {
            "cluster" => self.admin(&req),
            "shutdown" => self.shutdown(),
            // Sessionless pass-through: any live backend can answer.
            "metrics" => match self.any_alive() {
                Some(i) => self
                    .forward(i, line)
                    .unwrap_or_else(|e| error_frame(BACKEND_UNAVAILABLE, &e)),
                None => error_frame(BACKEND_UNAVAILABLE, "no live backend"),
            },
            _ => {
                let Some(session) = req.get("session").and_then(Value::as_str) else {
                    return error_frame(codes::BAD_REQUEST, "missing required field \"session\"");
                };
                self.proxy_session(session.to_string(), cmd, line)
            }
        }
    }

    fn any_alive(&self) -> Option<usize> {
        (0..self.state.backends.len())
            .find(|&i| self.state.backends[i].alive.load(Ordering::SeqCst))
    }

    /// Where `session` should be served right now: its recorded
    /// placement if that backend is alive, else its ring home among
    /// placeable backends.
    fn target_for(&self, session: &str) -> Result<usize, String> {
        if let Some(&i) = self.state.placements.lock().unwrap().get(session) {
            if self.state.backends[i].alive.load(Ordering::SeqCst) {
                return Ok(i);
            }
        }
        self.state
            .ring
            .place(session, |i| self.placeable(i))
            .ok_or_else(|| "no live backend".to_string())
    }

    /// Forwards a session command, restoring the session on a fresh
    /// backend and retrying once when the placed backend fails.
    fn proxy_session(&self, session: String, cmd: &str, line: &str) -> String {
        let target = match self.target_for(&session) {
            Ok(t) => t,
            Err(e) => return error_frame(BACKEND_UNAVAILABLE, &e),
        };
        match self.forward(target, line) {
            Ok(reply) => {
                // A backend that answers `no_such_session` for a session
                // the cluster placed on it has lost its state (the
                // process was replaced). Recover it in place.
                if reply_code(&reply) == Some(codes::NO_SUCH_SESSION.to_string())
                    && self.knows(&session)
                    && cmd != "restore"
                    && cmd != "open"
                {
                    return self.failover(&session, line, Some(target));
                }
                self.note_placement(&session, cmd, target, &reply);
                reply
            }
            Err(_) => {
                self.state.backends[target]
                    .alive
                    .store(false, Ordering::SeqCst);
                if cmd == "open" {
                    // Nothing durable exists yet; just place elsewhere.
                    return match self.target_for(&session) {
                        Ok(next) => match self.forward(next, line) {
                            Ok(reply) => {
                                self.note_placement(&session, cmd, next, &reply);
                                reply
                            }
                            Err(e) => error_frame(BACKEND_UNAVAILABLE, &e),
                        },
                        Err(e) => error_frame(BACKEND_UNAVAILABLE, &e),
                    };
                }
                self.failover(&session, line, None)
            }
        }
    }

    fn knows(&self, session: &str) -> bool {
        self.state.placements.lock().unwrap().contains_key(session)
    }

    /// Records placement changes implied by a successful reply.
    fn note_placement(&self, session: &str, cmd: &str, target: usize, reply: &str) {
        if reply_code(reply).is_some() {
            return; // errored replies change nothing
        }
        let mut placements = self.state.placements.lock().unwrap();
        match cmd {
            "close" => {
                placements.remove(session);
            }
            _ => {
                placements.insert(session.to_string(), target);
            }
        }
    }

    /// Re-opens `session` from durable state on a live backend
    /// (`on`, or the ring's pick) and retries the original line there.
    fn failover(&self, session: &str, line: &str, on: Option<usize>) -> String {
        let target = match on.map(Ok).unwrap_or_else(|| self.target_for(session)) {
            Ok(t) => t,
            Err(e) => return error_frame(BACKEND_UNAVAILABLE, &e),
        };
        let restore = format!(
            "{{\"cmd\":\"restore\",\"session\":{}}}",
            serde_json::to_string(&Value::from(session)).unwrap()
        );
        match self.forward(target, &restore) {
            Ok(reply) => {
                let code = reply_code(&reply);
                // `session_exists` means another client's failover won
                // the race — the session is there, proceed.
                if let Some(code) = code {
                    if code != codes::SESSION_EXISTS {
                        return error_frame(
                            BACKEND_UNAVAILABLE,
                            &format!(
                                "failover restore failed on {}: {reply}",
                                self.state.backends[target].addr
                            ),
                        );
                    }
                }
            }
            Err(e) => {
                self.state.backends[target]
                    .alive
                    .store(false, Ordering::SeqCst);
                return error_frame(BACKEND_UNAVAILABLE, &format!("failover restore: {e}"));
            }
        }
        self.state
            .placements
            .lock()
            .unwrap()
            .insert(session.to_string(), target);
        rtec_obs::warn(
            "cluster.failover",
            &[
                ("session", session.into()),
                ("to", self.state.backends[target].addr.as_str().into()),
            ],
        );
        match self.forward(target, line) {
            Ok(reply) => reply,
            Err(e) => error_frame(BACKEND_UNAVAILABLE, &format!("retry after failover: {e}")),
        }
    }

    fn forward(&self, backend: usize, line: &str) -> Result<String, String> {
        roundtrip(&self.state.backends[backend].addr, line)
    }

    /// `{"cmd":"cluster","op":...}` admin commands.
    fn admin(&self, req: &Value) -> String {
        match req.get("op").and_then(Value::as_str) {
            Some("stats") => {
                let placements = self.state.placements.lock().unwrap();
                let rows: Vec<Value> = self
                    .state
                    .backends
                    .iter()
                    .enumerate()
                    .map(|(i, b)| backend_row(b, placements.values().filter(|&&p| p == i).count()))
                    .collect();
                let mut map = std::collections::BTreeMap::new();
                map.insert("ok".to_string(), Value::from(true));
                map.insert("backends".to_string(), Value::Array(rows));
                map.insert("sessions".to_string(), Value::from(placements.len() as i64));
                serde_json::to_string(&Value::Object(map)).unwrap_or_default()
            }
            Some("drain") => {
                let Some(addr) = req.get("backend").and_then(Value::as_str) else {
                    return error_frame(codes::BAD_REQUEST, "drain: missing field \"backend\"");
                };
                match self.drain(addr) {
                    Ok(moved) => format!("{{\"ok\":true,\"moved\":{moved}}}"),
                    Err(e) => error_frame(BACKEND_UNAVAILABLE, &e),
                }
            }
            Some("rebalance") => match self.rebalance() {
                Ok(moved) => format!("{{\"ok\":true,\"moved\":{moved}}}"),
                Err(e) => error_frame(BACKEND_UNAVAILABLE, &e),
            },
            Some(other) => error_frame(
                codes::BAD_REQUEST,
                &format!("unknown cluster op \"{other}\" (stats|drain|rebalance)"),
            ),
            None => error_frame(codes::BAD_REQUEST, "cluster: missing field \"op\""),
        }
    }

    /// Migrates one session: graceful close (keeping durable state) at
    /// the source when it still answers, then restore at `to`.
    fn migrate(&self, session: &str, from: usize, to: usize) -> Result<(), String> {
        let name = serde_json::to_string(&Value::from(session)).unwrap();
        if self.state.backends[from].alive.load(Ordering::SeqCst) {
            let close = format!("{{\"cmd\":\"close\",\"session\":{name},\"keep_durable\":true}}");
            match self.forward(from, &close) {
                Ok(reply) => {
                    // A session the source no longer has is fine — the
                    // durable state is what we migrate from.
                    if let Some(code) = reply_code(&reply) {
                        if code != codes::NO_SUCH_SESSION {
                            return Err(format!("drain close failed: {reply}"));
                        }
                    }
                }
                Err(_) => {
                    self.state.backends[from]
                        .alive
                        .store(false, Ordering::SeqCst);
                }
            }
        }
        let restore = format!("{{\"cmd\":\"restore\",\"session\":{name}}}");
        let reply = self.forward(to, &restore)?;
        if let Some(code) = reply_code(&reply) {
            if code != codes::SESSION_EXISTS {
                return Err(format!(
                    "restore on {} failed: {reply}",
                    self.state.backends[to].addr
                ));
            }
        }
        self.state
            .placements
            .lock()
            .unwrap()
            .insert(session.to_string(), to);
        Ok(())
    }

    /// Moves every session off the backend at `addr` (checkpoint-based
    /// migration through the shared durable dirs) and marks it
    /// non-placeable until the next `rebalance`.
    fn drain(&self, addr: &str) -> Result<usize, String> {
        let from = self
            .state
            .backends
            .iter()
            .position(|b| b.addr == addr)
            .ok_or_else(|| format!("unknown backend \"{addr}\""))?;
        self.state.backends[from]
            .draining
            .store(true, Ordering::SeqCst);
        let victims: Vec<String> = {
            let placements = self.state.placements.lock().unwrap();
            placements
                .iter()
                .filter(|&(_, &p)| p == from)
                .map(|(s, _)| s.clone())
                .collect()
        };
        let mut moved = 0;
        for session in victims {
            let to = self
                .state
                .ring
                .place(&session, |i| i != from && self.placeable(i))
                .ok_or_else(|| "no live backend to drain onto".to_string())?;
            self.migrate(&session, from, to)?;
            moved += 1;
        }
        Ok(moved)
    }

    /// Moves every session back to its current ring home (e.g. after a
    /// drained backend has been serviced). Clears draining flags first
    /// so serviced backends are placeable again.
    fn rebalance(&self) -> Result<usize, String> {
        for b in &self.state.backends {
            b.draining.store(false, Ordering::SeqCst);
        }
        self.probe();
        let snapshot: Vec<(String, usize)> = self
            .state
            .placements
            .lock()
            .unwrap()
            .iter()
            .map(|(s, &p)| (s.clone(), p))
            .collect();
        let mut moved = 0;
        for (session, at) in snapshot {
            let home = self
                .state
                .ring
                .place(&session, |i| self.placeable(i))
                .ok_or_else(|| "no live backend".to_string())?;
            if home != at {
                self.migrate(&session, at, home)?;
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Relays `shutdown` to every live backend, then stops the proxy.
    fn shutdown(&self) -> String {
        let mut closed = 0i64;
        for b in &self.state.backends {
            if !b.alive.load(Ordering::SeqCst) {
                continue;
            }
            if let Ok(reply) = roundtrip(&b.addr, "{\"cmd\":\"shutdown\"}") {
                let v: Result<Value, _> = serde_json::from_str(&reply);
                if let Ok(v) = v {
                    closed += v
                        .get("closed_sessions")
                        .and_then(Value::as_i64)
                        .unwrap_or(0);
                }
            }
        }
        self.state.shutting_down.store(true, Ordering::SeqCst);
        format!("{{\"ok\":true,\"closed_sessions\":{closed}}}")
    }

    /// Serves the NDJSON front-end on `listener`, probing backend
    /// health every `health_interval`. Blocks until `shutdown`.
    pub fn serve(self, listener: TcpListener, health_interval: Duration) -> Result<(), String> {
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        rtec_obs::info(
            "cluster.listening",
            &[
                ("addr", local.to_string().into()),
                ("backends", (self.state.backends.len() as i64).into()),
            ],
        );
        let prober = {
            let cluster = self.clone();
            std::thread::spawn(move || {
                while !cluster.is_shutting_down() {
                    cluster.probe();
                    std::thread::sleep(health_interval);
                }
            })
        };
        for stream in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let cluster = self.clone();
            std::thread::spawn(move || {
                let _ = cluster.handle_connection(stream, local);
            });
        }
        let _ = prober.join();
        rtec_obs::info("cluster.stopped", &[]);
        Ok(())
    }

    fn handle_connection(&self, stream: TcpStream, local: SocketAddr) -> Result<(), String> {
        let reader = stream.try_clone().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(reader);
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
            if n == 0 {
                return Ok(());
            }
            if line.trim().is_empty() {
                continue;
            }
            let reply = self.dispatch(&line);
            writer
                .write_all(reply.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .map_err(|e| e.to_string())?;
            if self.is_shutting_down() {
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(local);
                return Ok(());
            }
        }
    }
}

/// Extracts the error code from a reply frame, `None` for `ok` replies.
fn reply_code(reply: &str) -> Option<String> {
    let v: Value = serde_json::from_str(reply).ok()?;
    if v.get("ok") == Some(&Value::from(true)) {
        return None;
    }
    Some(
        v.get("code")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string(),
    )
}

/// One-shot NDJSON round-trip with connect/read timeouts, so one hung
/// backend cannot wedge the proxy.
fn roundtrip(addr: &str, line: &str) -> Result<String, String> {
    let sock: SocketAddr = addr
        .parse()
        .map_err(|e| format!("bad backend addr {addr}: {e}"))?;
    let stream = TcpStream::connect_timeout(&sock, IO_TIMEOUT)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    reader.read_line(&mut reply).map_err(|e| e.to_string())?;
    if reply.is_empty() {
        return Err(format!("{addr}: connection closed mid-request"));
    }
    Ok(reply.trim_end().to_string())
}

/// `GET /readyz` against a backend's metrics endpoint; readiness means
/// HTTP 200 (no quarantined sessions, no replay in flight).
fn http_ready(addr: &str) -> bool {
    let Ok(sock) = addr.parse::<SocketAddr>() else {
        return false;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&sock, IO_TIMEOUT) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    if stream
        .write_all(b"GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n")
        .is_err()
    {
        return false;
    }
    let mut response = String::new();
    if stream.read_to_string(&mut response).is_err() {
        return false;
    }
    response.starts_with("HTTP/1.1 200")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_backends() {
        let backends: Vec<String> = (0..4).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect();
        let ring = Ring::new(&backends, 32);
        let mut hits = vec![0usize; backends.len()];
        for s in 0..200 {
            let session = format!("session-{s}");
            let a = ring.place(&session, |_| true).unwrap();
            let b = ring.place(&session, |_| true).unwrap();
            assert_eq!(a, b, "placement must be deterministic");
            hits[a] += 1;
        }
        assert!(
            hits.iter().all(|&h| h > 0),
            "every backend owns some sessions: {hits:?}"
        );
    }

    #[test]
    fn ring_skips_filtered_backends() {
        let backends: Vec<String> = (0..3).map(|i| format!("127.0.0.1:{}", 7100 + i)).collect();
        let ring = Ring::new(&backends, 16);
        for s in 0..50 {
            let session = format!("s{s}");
            let placed = ring.place(&session, |i| i != 1).unwrap();
            assert_ne!(placed, 1, "dead backend must never be placed on");
        }
        assert_eq!(ring.place("x", |_| false), None);
    }

    #[test]
    fn placement_is_stable_under_unrelated_death() {
        // Consistent hashing: killing one backend only moves the
        // sessions that lived there.
        let backends: Vec<String> = (0..4).map(|i| format!("127.0.0.1:{}", 7200 + i)).collect();
        let ring = Ring::new(&backends, 64);
        for s in 0..100 {
            let session = format!("job-{s}");
            let before = ring.place(&session, |_| true).unwrap();
            let after = ring.place(&session, |i| i != 2).unwrap();
            if before != 2 {
                assert_eq!(before, after, "unaffected session must not move");
            } else {
                assert_ne!(after, 2);
            }
        }
    }

    #[test]
    fn cluster_reports_structured_errors_without_backends() {
        // Point at a port nothing listens on: every path must yield a
        // structured error frame, never a panic or empty reply.
        let cluster = Cluster::new(&["127.0.0.1:1".to_string()], 8).unwrap();
        assert_eq!(cluster.probe(), 0);
        let reply = cluster.dispatch(r#"{"cmd":"event","session":"s","t":1,"event":"up(a)"}"#);
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["ok"], false);
        assert_eq!(v["code"], BACKEND_UNAVAILABLE);
        let reply = cluster.dispatch(r#"{"cmd":"cluster","op":"stats"}"#);
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["ok"], true);
        assert_eq!(v["backends"][0]["alive"], false);
        let reply = cluster.dispatch("not json");
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["code"], "bad_frame");
    }
}
