//! The `rtec` command-line tool; see [`rtec_cli`] for the subcommands.

use rtec_cli::{check_source, parse_args, run_source, similarity_sources, Command, USAGE};
use std::io::Write;
use std::process::ExitCode;

/// Prints to stdout, exiting quietly when the consumer closed the pipe
/// (e.g. `rtec-cli similarity a b | head`).
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    if writeln!(out, "{text}").is_err() {
        std::process::exit(0);
    }
}

fn read(path: &str) -> Result<String, rtec_cli::CliError> {
    std::fs::read_to_string(path).map_err(|e| rtec_cli::CliError {
        message: format!("cannot read {path}: {e}"),
        code: 2,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}", e.message);
            eprintln!("{USAGE}");
            return ExitCode::from(e.code as u8);
        }
    };
    let result = match command {
        Command::Help => {
            emit(USAGE);
            return ExitCode::SUCCESS;
        }
        Command::Check { desc } => read(&desc).and_then(|src| check_source(&src)),
        Command::Run {
            desc,
            events,
            window,
            horizon,
        } => read(&desc)
            .and_then(|d| read(&events).and_then(|e| run_source(&d, &e, window, horizon))),
        Command::Similarity { a, b } => {
            read(&a).and_then(|sa| read(&b).map(|sb| similarity_sources(&sa, &sb)))
        }
    };
    match result {
        Ok(out) => {
            emit(&out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.message);
            ExitCode::from(e.code as u8)
        }
    }
}
