//! The `rtec` command-line tool; see [`rtec_cli`] for the subcommands.
//!
//! Diagnostics (parse errors, streaming summaries, service lifecycle)
//! are emitted as JSON-line events on stderr via [`rtec_obs`], filtered
//! by the `RTEC_LOG` environment variable; recognised output goes to
//! stdout.

use rtec_cli::{
    check_source, parse_args, run_source, similarity_sources, stream_against, Command, USAGE,
};
use std::io::Write;
use std::process::ExitCode;

/// Runs the NDJSON service until `shutdown` (TCP or stdio transport).
#[allow(clippy::too_many_arguments)]
fn serve(
    addr: &str,
    threads: usize,
    stdio: bool,
    metrics_addr: Option<&str>,
    checkpoint_dir: Option<&str>,
    max_worker_restarts: Option<usize>,
    journal_dir: Option<&str>,
    journal_fsync: rtec_service::FsyncPolicy,
) -> Result<(), rtec_cli::CliError> {
    let fail = |message: String| rtec_cli::CliError { message, code: 4 };
    if stdio {
        let registry = rtec_service::Registry::with_options(
            checkpoint_dir.map(Into::into),
            max_worker_restarts,
        )
        .with_journal(journal_dir.map(Into::into), journal_fsync);
        let stdin = std::io::stdin().lock();
        let stdout = std::io::stdout().lock();
        return rtec_service::serve_stdio(&registry, stdin, stdout).map_err(fail);
    }
    let server = rtec_service::Server::bind(&rtec_service::ServerConfig {
        addr: addr.to_string(),
        threads,
        metrics_addr: metrics_addr.map(str::to_string),
        checkpoint_dir: checkpoint_dir.map(str::to_string),
        max_worker_restarts,
        journal_dir: journal_dir.map(str::to_string),
        journal_fsync,
    })
    .map_err(fail)?;
    server.serve().map_err(fail)
}

/// Runs the cluster front-end until `shutdown`.
fn serve_cluster(
    addr: &str,
    backends: &[String],
    vnodes: usize,
    health_interval_ms: u64,
) -> Result<(), rtec_cli::CliError> {
    let fail = |message: String| rtec_cli::CliError { message, code: 4 };
    let cluster = rtec_cli::cluster::Cluster::new(backends, vnodes).map_err(fail)?;
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| fail(format!("bind {addr}: {e}")))?;
    cluster
        .serve(
            listener,
            std::time::Duration::from_millis(health_interval_ms.max(1)),
        )
        .map_err(fail)
}

/// Prints to stdout, exiting quietly when the consumer closed the pipe
/// (e.g. `rtec-cli similarity a b | head`).
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    if writeln!(out, "{text}").is_err() {
        std::process::exit(0);
    }
}

/// Emits a `cli.error` event and returns the process exit code.
fn report_error(e: &rtec_cli::CliError) -> ExitCode {
    rtec_obs::error(
        "cli.error",
        &[
            ("message", e.message.as_str().into()),
            ("code", i64::from(e.code).into()),
        ],
    );
    ExitCode::from(e.code as u8)
}

fn read(path: &str) -> Result<String, rtec_cli::CliError> {
    std::fs::read_to_string(path).map_err(|e| rtec_cli::CliError {
        message: format!("cannot read {path}: {e}"),
        code: 2,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            rtec_obs::error(
                "cli.usage",
                &[
                    ("message", e.message.as_str().into()),
                    ("hint", "run 'rtec-cli help' for usage".into()),
                ],
            );
            return ExitCode::from(e.code as u8);
        }
    };
    let result = match command {
        Command::Help => {
            emit(USAGE);
            return ExitCode::SUCCESS;
        }
        Command::Check {
            desc,
            format,
            deny_warnings,
        } => match format {
            rtec_cli::CheckFormat::Text => {
                read(&desc).and_then(|src| check_source(&src, deny_warnings))
            }
            rtec_cli::CheckFormat::Json => match read(&desc) {
                Ok(src) => {
                    let (json, ok) = rtec_cli::check_source_json(&src, deny_warnings);
                    emit(&json);
                    return if ok {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    };
                }
                Err(e) => Err(e),
            },
        },
        Command::Analyze { desc } => read(&desc).and_then(|src| rtec_cli::analyze_source(&src)),
        Command::Run {
            desc,
            events,
            window,
            horizon,
            eval,
            profile,
        } => read(&desc).and_then(|d| {
            read(&events).and_then(|e| run_source(&d, &e, window, horizon, eval, profile))
        }),
        Command::Similarity { a, b } => {
            read(&a).and_then(|sa| read(&b).map(|sb| similarity_sources(&sa, &sb)))
        }
        Command::Serve {
            addr,
            threads,
            stdio,
            metrics_addr,
            checkpoint_dir,
            max_worker_restarts,
            journal_dir,
            journal_fsync,
        } => {
            return match serve(
                &addr,
                threads,
                stdio,
                metrics_addr.as_deref(),
                checkpoint_dir.as_deref(),
                max_worker_restarts,
                journal_dir.as_deref(),
                journal_fsync,
            ) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => report_error(&e),
            };
        }
        Command::Cluster {
            addr,
            backends,
            vnodes,
            health_interval_ms,
        } => {
            return match serve_cluster(&addr, &backends, vnodes, health_interval_ms) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => report_error(&e),
            };
        }
        Command::Stream {
            desc,
            events,
            addr,
            opts,
        } => read(&desc)
            .and_then(|d| read(&events).and_then(|e| stream_against(&addr, &d, &e, &opts))),
        Command::Dataset {
            csv,
            strict,
            max_diagnostics,
        } => read(&csv).and_then(|c| rtec_cli::dataset_source(&c, strict, max_diagnostics)),
        Command::DatasetSynth {
            tier,
            seed,
            out,
            desc_out,
        } => {
            let write = |path: &str, text: &str| {
                std::fs::write(path, text).map_err(|e| rtec_cli::CliError {
                    message: format!("cannot write {path}: {e}"),
                    code: 2,
                })
            };
            rtec_cli::dataset_synth_sources(tier.as_deref(), seed).and_then(|s| {
                if let Some(path) = &desc_out {
                    write(path, &s.description)?;
                }
                match &out {
                    Some(path) => {
                        write(path, &s.events)?;
                        Ok(format!(
                            "wrote {} events from {} vessels (horizon {}) to {path}",
                            s.total, s.vessels, s.horizon
                        ))
                    }
                    // Piped use: the event file itself is the output.
                    None => Ok(s.events),
                }
            })
        }
    };
    match result {
        Ok(out) => {
            emit(&out);
            ExitCode::SUCCESS
        }
        Err(e) => report_error(&e),
    }
}
