//! Process-level chaos: real `rtec-cli serve` backend processes,
//! SIGKILLed mid-stream under a seeded schedule, fronted by the
//! cluster proxy.
//!
//! The invariant under test is the tentpole claim of the write-ahead
//! journal: after any kill, the client-observed recognition output
//! converges **byte-identically** to a fault-free run of the same feed
//! — zero acked-event loss. The client model is explicit: a frame that
//! fails with `backend_unavailable` (or on the wire) is retried after
//! the harness performs recovery (respawn the sole backend, or let the
//! proxy fail the session over to the survivor); an acked frame is
//! never re-sent. Anything the backend acked before dying must
//! therefore come back from checkpoint + journal alone.
//!
//! Seeds come from `RTEC_CLUSTER_SEED` (the CI matrix sweeps several,
//! plus one random seed whose value is logged); without it a small
//! fixed sweep runs so plain `cargo test` exercises both topologies.

use rtec_cli::cluster::Cluster;
use serde_json::Value;
use std::net::TcpListener;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                    terminatedAt(on(X)=true, T) :- happensAt(down(X), T).";

const TICK_EVERY: i64 = 30;
const TICKS: i64 = 5;

fn events_for_tick(k: i64) -> Vec<(i64, String)> {
    (k * TICK_EVERY..(k + 1) * TICK_EVERY)
        .map(|t| {
            let entity = ["a", "b", "c"][(t % 3) as usize];
            let ev = if t % 10 < 5 { "up" } else { "down" };
            (t, format!("{ev}({entity})"))
        })
        .collect()
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A port the OS just considered free. Bound-then-dropped, so a tiny
/// race window exists; fine for a test harness.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// One backend `serve` process. Killed on drop.
struct Backend {
    child: Child,
    addr: String,
    spec: String,
}

impl Backend {
    fn spawn(port: u16, metrics_port: Option<u16>, cp: &Path, jnl: &Path) -> Backend {
        let addr = format!("127.0.0.1:{port}");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_rtec-cli"));
        cmd.args([
            "serve",
            "--addr",
            &addr,
            "--threads",
            "2",
            "--checkpoint-dir",
            cp.to_str().unwrap(),
            "--journal-dir",
            jnl.to_str().unwrap(),
            "--journal-fsync",
            "never",
        ])
        .env("RTEC_LOG", "error")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
        let spec = match metrics_port {
            Some(mp) => {
                cmd.args(["--metrics-addr", &format!("127.0.0.1:{mp}")]);
                format!("{addr}@127.0.0.1:{mp}")
            }
            None => addr.clone(),
        };
        let child = cmd.spawn().expect("spawn backend");
        let backend = Backend { child, addr, spec };
        backend.wait_ready();
        backend
    }

    /// Polls the NDJSON port until the server answers a `metrics`
    /// frame (startup is fast; generous deadline for loaded CI boxes).
    fn wait_ready(&self) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            if ndjson(&self.addr, "{\"cmd\":\"metrics\"}").is_ok() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("backend {} never became ready", self.addr);
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Raw one-shot NDJSON round-trip (the harness's own client, separate
/// from the proxy's, so readiness polling doesn't disturb it).
fn ndjson(addr: &str, line: &str) -> Result<String, String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    reader.read_line(&mut reply).map_err(|e| e.to_string())?;
    if reply.is_empty() {
        return Err("closed".into());
    }
    Ok(reply.trim_end().to_string())
}

fn open_line(session: &str) -> String {
    format!(
        "{{\"cmd\":\"open\",\"session\":\"{session}\",\"description\":{},\"shards\":2,\"window\":{TICK_EVERY}}}",
        serde_json::to_string(&Value::from(DESC)).unwrap()
    )
}

/// The fault-free oracle: the identical feed and tick schedule through
/// one in-process registry.
fn oracle_rows() -> Vec<(String, String)> {
    let registry = rtec_service::Registry::new();
    let ok = |line: &str| {
        let v: Value = serde_json::from_str(&registry.dispatch(line)).unwrap();
        assert_eq!(v["ok"], true, "oracle dispatch failed: {line}");
        v
    };
    ok(&open_line("o"));
    for k in 0..TICKS {
        for (t, ev) in events_for_tick(k) {
            ok(&format!(
                "{{\"cmd\":\"event\",\"session\":\"o\",\"t\":{t},\"event\":\"{ev}\"}}"
            ));
        }
        ok(&format!(
            "{{\"cmd\":\"tick\",\"session\":\"o\",\"to\":{}}}",
            (k + 1) * TICK_EVERY
        ));
    }
    rows_of(&ok("{\"cmd\":\"query\",\"session\":\"o\"}"))
}

fn rows_of(v: &Value) -> Vec<(String, String)> {
    let mut rows: Vec<(String, String)> = v["rows"]
        .as_array()
        .expect("rows")
        .iter()
        .map(|r| {
            (
                r["fvp"].as_str().unwrap_or_default().to_string(),
                r["intervals"].as_str().unwrap_or_default().to_string(),
            )
        })
        .collect();
    rows.sort();
    rows
}

/// Drives one chaos case: `n_backends` real processes, one SIGKILL at
/// a seeded point mid-feed, then asserts byte-identical convergence.
fn run_case(seed: u64, n_backends: usize) {
    let base = std::env::temp_dir().join(format!(
        "rtec-cluster-chaos-{}-{seed}-{n_backends}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let cp = base.join("checkpoints");
    let jnl = base.join("journal");

    // The 2-backend topology exercises /readyz health probing; the
    // 1-backend topology skips metrics ports so the respawned process
    // can rebind cleanly.
    let mut backends: Vec<Backend> = (0..n_backends)
        .map(|_| {
            let metrics = (n_backends > 1).then(free_port);
            Backend::spawn(free_port(), metrics, &cp, &jnl)
        })
        .collect();
    let specs: Vec<String> = backends.iter().map(|b| b.spec.clone()).collect();
    let cluster = Cluster::new(&specs, 32).unwrap();
    assert_eq!(cluster.probe(), n_backends, "all backends start healthy");

    // Seeded kill point: somewhere in the middle three ticks, so the
    // kill lands after some durable state exists in most schedules.
    let kill_tick = 1 + (splitmix(seed) % (TICKS as u64 - 2)) as i64;
    let kill_offset = (splitmix(seed ^ 0xdead) % TICK_EVERY as u64) as i64;
    let mut killed = false;

    // The client model: dispatch through the proxy; on failure run
    // recovery (respawn the sole backend; multi-backend failover is the
    // proxy's job) and retry the same frame. Acked frames are final.
    let send = |cluster: &Cluster, backends: &mut Vec<Backend>, line: &str| -> Value {
        for attempt in 0..50 {
            let reply = cluster.dispatch(line);
            let v: Value = serde_json::from_str(&reply).expect("reply parses");
            if v["ok"] == true {
                return v;
            }
            assert_eq!(
                v["code"], "backend_unavailable",
                "unexpected error for {line}: {reply}"
            );
            // Recovery: make sure at least one backend lives, then let
            // the proxy's next attempt fail the session over.
            if cluster.probe() == 0 {
                let port = backends[0]
                    .addr
                    .rsplit(':')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap();
                backends[0] = Backend::spawn(port, None, &cp, &jnl);
                cluster.probe();
            }
            std::thread::sleep(Duration::from_millis(10 * (attempt + 1)));
        }
        panic!("frame never succeeded: {line}");
    };

    send(&cluster, &mut backends, &open_line("s"));
    for k in 0..TICKS {
        for (t, ev) in events_for_tick(k) {
            if !killed && k == kill_tick && t % TICK_EVERY == kill_offset {
                // SIGKILL the backend that owns the session (with one
                // backend there is no choice; with two, ask the proxy).
                let owner = owner_index(&cluster, &backends);
                backends[owner].kill();
                killed = true;
            }
            send(
                &cluster,
                &mut backends,
                &format!("{{\"cmd\":\"event\",\"session\":\"s\",\"t\":{t},\"event\":\"{ev}\"}}"),
            );
        }
        send(
            &cluster,
            &mut backends,
            &format!(
                "{{\"cmd\":\"tick\",\"session\":\"s\",\"to\":{}}}",
                (k + 1) * TICK_EVERY
            ),
        );
    }
    assert!(killed, "the kill schedule must fire (seed {seed})");

    let rows = rows_of(&send(
        &cluster,
        &mut backends,
        "{\"cmd\":\"query\",\"session\":\"s\"}",
    ));
    assert_eq!(
        rows,
        oracle_rows(),
        "seed {seed} x {n_backends} backends: output diverged from the fault-free run"
    );

    // Shutdown through the proxy reaches every surviving backend.
    let v: Value = serde_json::from_str(&cluster.dispatch("{\"cmd\":\"shutdown\"}")).unwrap();
    assert_eq!(v["ok"], true, "{v:?}");
    let _ = std::fs::remove_dir_all(&base);
}

/// The backend currently holding session "s", per cluster stats.
fn owner_index(cluster: &Cluster, backends: &[Backend]) -> usize {
    let v: Value =
        serde_json::from_str(&cluster.dispatch("{\"cmd\":\"cluster\",\"op\":\"stats\"}"))
            .expect("stats parse");
    let rows = v["backends"].as_array().expect("backends");
    for (i, row) in rows.iter().enumerate() {
        if row["sessions"].as_i64().unwrap_or(0) > 0 {
            assert_eq!(row["addr"].as_str().unwrap(), backends[i].addr);
            return i;
        }
    }
    0
}

#[test]
fn killed_backends_converge_byte_identically() {
    let seeds: Vec<u64> = match std::env::var("RTEC_CLUSTER_SEED") {
        Ok(v) => vec![v.parse().expect("RTEC_CLUSTER_SEED must be a u64")],
        Err(_) => vec![1, 2],
    };
    for seed in seeds {
        for n_backends in [1usize, 2] {
            eprintln!("cluster chaos: seed={seed} backends={n_backends}");
            run_case(seed, n_backends);
        }
    }
}

/// Drain + rebalance use the same checkpoint/journal migration path as
/// failover — a planned migration must also be output-invariant.
#[test]
fn drain_and_rebalance_migrate_without_output_change() {
    let base = std::env::temp_dir().join(format!("rtec-cluster-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cp = base.join("checkpoints");
    let jnl = base.join("journal");
    let backends: Vec<Backend> = (0..2)
        .map(|_| Backend::spawn(free_port(), None, &cp, &jnl))
        .collect();
    let specs: Vec<String> = backends.iter().map(|b| b.spec.clone()).collect();
    let cluster = Cluster::new(&specs, 32).unwrap();
    assert_eq!(cluster.probe(), 2);

    let ok = |line: &str| -> Value {
        let v: Value = serde_json::from_str(&cluster.dispatch(line)).unwrap();
        assert_eq!(v["ok"], true, "dispatch failed: {line} -> {v:?}");
        v
    };
    ok(&open_line("s"));
    for (t, ev) in events_for_tick(0) {
        ok(&format!(
            "{{\"cmd\":\"event\",\"session\":\"s\",\"t\":{t},\"event\":\"{ev}\"}}"
        ));
    }
    ok(&format!(
        "{{\"cmd\":\"tick\",\"session\":\"s\",\"to\":{TICK_EVERY}}}"
    ));
    // Events past the checkpoint: the migration must carry them in the
    // journal, not lose them with the drained process.
    for (t, ev) in events_for_tick(1) {
        ok(&format!(
            "{{\"cmd\":\"event\",\"session\":\"s\",\"t\":{t},\"event\":\"{ev}\"}}"
        ));
    }

    let owner = owner_index(&cluster, &backends);
    let v = ok(&format!(
        "{{\"cmd\":\"cluster\",\"op\":\"drain\",\"backend\":\"{}\"}}",
        backends[owner].addr
    ));
    assert_eq!(v["moved"], 1i64, "{v:?}");
    let v = ok("{\"cmd\":\"cluster\",\"op\":\"stats\"}");
    assert_eq!(
        v["backends"][owner]["sessions"], 0i64,
        "drained backend must hold nothing: {v:?}"
    );

    // Rebalance sends the session back to its ring home; either way the
    // recognised output must match the fault-free run.
    let v = ok("{\"cmd\":\"cluster\",\"op\":\"rebalance\"}");
    assert!(v["moved"].as_i64().unwrap() <= 1, "{v:?}");
    ok(&format!(
        "{{\"cmd\":\"tick\",\"session\":\"s\",\"to\":{}}}",
        2 * TICK_EVERY
    ));
    for k in 2..TICKS {
        for (t, ev) in events_for_tick(k) {
            ok(&format!(
                "{{\"cmd\":\"event\",\"session\":\"s\",\"t\":{t},\"event\":\"{ev}\"}}"
            ));
        }
        ok(&format!(
            "{{\"cmd\":\"tick\",\"session\":\"s\",\"to\":{}}}",
            (k + 1) * TICK_EVERY
        ));
    }
    let rows = rows_of(&ok("{\"cmd\":\"query\",\"session\":\"s\"}"));
    assert_eq!(rows, oracle_rows(), "migration changed the output");
    let v: Value = serde_json::from_str(&cluster.dispatch("{\"cmd\":\"shutdown\"}")).unwrap();
    assert_eq!(v["ok"], true);
    let _ = std::fs::remove_dir_all(&base);
}
