//! Differential tests: the compiled plan must be *observationally
//! identical* to the AST interpreter — same recognised intervals, same
//! inertia carries, same warnings in first-occurrence order, and
//! byte-identical checkpoint state — over randomized descriptions and
//! event streams, over the maritime gold description, and across
//! checkpoint/restore boundaries that switch evaluation mode mid-stream.

use proptest::prelude::*;
use rtec::checkpoint::EngineCheckpoint;
use rtec::description::CompiledDescription;
use rtec::engine::{Engine, EngineConfig};
use rtec::{EventDescription, Timepoint};
use rtec_plan::WithPlan;

/// Everything observable about an engine at a point in time: sorted
/// rendered output rows, the warning log, and the canonical checkpoint
/// state JSON (symbols, pending, inputs, inertia, frontier, output,
/// warnings, counters — everything `restore` consumes).
fn observe(engine: &Engine<'_>) -> (Vec<String>, Vec<String>, String) {
    let symbols = engine.symbols();
    let out = engine.output();
    let mut rows: Vec<String> = out
        .iter()
        .map(|(fvp, list)| format!("{} = {}", fvp.display(symbols), list))
        .collect();
    rows.sort();
    let state = serde_json::to_string(&engine.checkpoint().to_value())
        .expect("checkpoint state serializes");
    (rows, out.warnings.clone(), state)
}

/// Asserts full observational equality between two engines, labelling
/// the failure with `what`.
fn assert_identical(interp: &Engine<'_>, plan: &Engine<'_>, what: &str) {
    let (irows, iwarns, istate) = observe(interp);
    let (prows, pwarns, pstate) = observe(plan);
    assert_eq!(irows, prows, "{what}: output rows diverge");
    assert_eq!(iwarns, pwarns, "{what}: warnings diverge");
    assert_eq!(istate, pstate, "{what}: checkpoint state diverges");
}

// ---------------------------------------------------------------------
// Randomized descriptions and streams
// ---------------------------------------------------------------------

/// A randomly generated recognition scenario: an event-description
/// source, a raw event feed, a window configuration, and the `run_to`
/// milestones.
#[derive(Debug, Clone)]
struct Scenario {
    desc_src: String,
    /// `(event index 0..4, entity index 0..3, time)` triples, unsorted.
    events: Vec<(usize, usize, Timepoint)>,
    window: Option<Timepoint>,
    milestones: Vec<Timepoint>,
}

/// Optional body literals appended to simple-fluent rules. Index 5
/// (`r(V)`, a predicate with no background facts) exists to exercise the
/// precomputed "no background facts" warning.
const EXTRAS: [&str; 6] = [
    ",\n    not happensAt(e3(V), T)",
    ",\n    q(V)",
    ",\n    not q(V)",
    ",\n    p(V, c0)",
    ",\n    T >= 5",
    ",\n    r(V)",
];

/// Interval-algebra tails for the `st0` static fluent, over `I1`
/// (`s0=lo`) and `I2` (`s1=true`). Shapes 1, 2 and 4 contain chains the
/// plan compiler fuses; the interpreter executes them literally.
const STATIC_SHAPES: [&str; 6] = [
    "union_all([I1, I2], I)",
    "union_all([I1, I2], I3),\n    relative_complement_all(I3, [I2], I)",
    "union_all([I1, I2], I3),\n    union_all([I3, I1], I)",
    "intersect_all([I1, I2], I)",
    "intersect_all([I1, I2], I3),\n    intersect_all([I3, I1], I)",
    "relative_complement_all(I1, [I2], I)",
];

fn render_description(
    extras_lo: &[usize],
    extras_hi: &[usize],
    // Bit 0: terminate-lo rule; bit 1: pattern termination; bit 2:
    // negated holdsAt in the s1 initiation.
    flips: u8,
    static_shape: usize,
    facts_p: &[(usize, usize)],
    facts_q: &[usize],
) -> String {
    let (term_lo, pattern_term, s1_neg) = (flips & 1 != 0, flips & 2 != 0, flips & 4 != 0);
    let mut src = String::new();
    for &(v, c) in facts_p {
        src.push_str(&format!("p(v{v}, c{c}).\n"));
    }
    for &v in facts_q {
        src.push_str(&format!("q(v{v}).\n"));
    }
    let extra = |ix: &[usize]| -> String { ix.iter().map(|&i| EXTRAS[i]).collect() };
    src.push_str(&format!(
        "initiatedAt(s0(V)=lo, T) :-\n    happensAt(e0(V), T){}.\n",
        extra(extras_lo)
    ));
    // Cross-value initiation: starting `hi` must terminate a running
    // `lo` (and vice versa), the edge the inertia collector handles.
    src.push_str(&format!(
        "initiatedAt(s0(V)=hi, T) :-\n    happensAt(e1(V), T){}.\n",
        extra(extras_hi)
    ));
    if term_lo {
        src.push_str("terminatedAt(s0(V)=lo, T) :-\n    happensAt(e2(V), T).\n");
    }
    if pattern_term {
        // Value left as a variable: terminates whichever value holds.
        src.push_str("terminatedAt(s0(V)=_X, T) :-\n    happensAt(e3(V), T).\n");
    }
    let maybe_not = if s1_neg { "not " } else { "" };
    src.push_str(&format!(
        "initiatedAt(s1(V)=true, T) :-\n    happensAt(e1(V), T),\n    \
         {maybe_not}holdsAt(s0(V)=lo, T).\n"
    ));
    src.push_str("terminatedAt(s1(V)=true, T) :-\n    happensAt(e0(V), T),\n    T >= 3.\n");
    src.push_str(&format!(
        "holdsFor(st0(V)=true, I) :-\n    holdsFor(s0(V)=lo, I1),\n    \
         holdsFor(s1(V)=true, I2),\n    {}.\n",
        STATIC_SHAPES[static_shape]
    ));
    src
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let structure = (
        prop::collection::vec(0usize..EXTRAS.len(), 0..3),
        prop::collection::vec(0usize..EXTRAS.len(), 0..3),
        // Three independent coin flips: terminate-lo rule, pattern
        // termination, negated holdsAt in the s1 initiation.
        0u8..8,
        0usize..STATIC_SHAPES.len(),
    );
    let facts = (
        prop::collection::vec((0usize..3, 0usize..2), 0..4),
        prop::collection::vec(0usize..3, 0..3),
    );
    let feed = (
        prop::collection::vec((0usize..4, 0usize..3, 0i64..60), 0..40),
        // Below 6 means "unwindowed".
        0i64..25,
        prop::collection::vec(1i64..70, 1..4),
    );
    (structure, facts, feed).prop_map(
        |(
            (extras_lo, extras_hi, flips, static_shape),
            (facts_p, facts_q),
            (events, window, mut milestones),
        )| {
            milestones.sort_unstable();
            milestones.dedup();
            Scenario {
                desc_src: render_description(
                    &extras_lo,
                    &extras_hi,
                    flips,
                    static_shape,
                    &facts_p,
                    &facts_q,
                ),
                events,
                window: (window >= 6).then_some(window),
                milestones,
            }
        },
    )
}

/// Builds the engine pair and replays the scenario feed into both,
/// checking observational equality at every milestone.
fn run_differential(sc: &Scenario) {
    let desc = EventDescription::parse(&sc.desc_src)
        .unwrap_or_else(|e| panic!("parse: {e}\n{}", sc.desc_src));
    let compiled = match desc.compile() {
        Ok(c) => c,
        // Rejected descriptions (e.g. a generated cycle) are out of
        // scope: both evaluators only ever see compiled descriptions.
        Err(_) => return,
    };
    let config = match sc.window {
        Some(w) => EngineConfig::windowed(w),
        None => EngineConfig::default(),
    };
    let mut interp = Engine::new(&compiled, config);
    let mut plan = Engine::with_plan(&compiled, config);
    let mut syms = rtec::SymbolTable::new();
    // Events are fed unsorted and may be stale relative to the
    // processed frontier; both engines must reject identically.
    for &(ev, v, t) in &sc.events {
        let term =
            rtec::parser::parse_term(&format!("e{ev}(v{v})"), &mut syms).expect("event parses");
        interp.add_event_from(&term, &syms, t);
        plan.add_event_from(&term, &syms, t);
    }
    for (i, &milestone) in sc.milestones.iter().enumerate() {
        interp.run_to(milestone);
        plan.run_to(milestone);
        assert_identical(
            &interp,
            &plan,
            &format!("milestone {i} (run_to {milestone})"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over randomized descriptions (cross-value terminations, pattern
    /// terminations, negation, comparisons, background facts, fusable
    /// interval chains) and randomized unsorted event feeds, the plan
    /// evaluator is observationally identical to the interpreter at
    /// every window boundary.
    #[test]
    fn plan_matches_interpreter_on_random_descriptions(sc in scenario()) {
        run_differential(&sc);
    }
}

// ---------------------------------------------------------------------
// Maritime gold description
// ---------------------------------------------------------------------

/// The full gold maritime description over a generated Brest scenario:
/// identical intervals, warnings and checkpoint state, windowed and
/// unwindowed.
#[test]
fn plan_matches_interpreter_on_maritime_gold() {
    let dataset = maritime::Dataset::generate(&maritime::BrestScenario::small());
    let compiled = dataset.gold_description().compile().expect("gold compiles");
    let horizon = dataset.horizon() + 1;
    for config in [EngineConfig::default(), EngineConfig::windowed(3600)] {
        let mut interp = Engine::new(&compiled, config);
        let mut plan = Engine::with_plan(&compiled, config);
        dataset.stream.load_into(&mut interp);
        dataset.stream.load_into(&mut plan);
        interp.run_to(horizon);
        plan.run_to(horizon);
        assert_identical(&interp, &plan, "maritime gold");
        assert!(
            !interp.output().is_empty(),
            "gold run must recognise something for the comparison to bite"
        );
    }
}

// ---------------------------------------------------------------------
// Cross-mode checkpoint restore
// ---------------------------------------------------------------------

const CKPT_DESC: &str = "
initiatedAt(s0(V)=lo, T) :- happensAt(e0(V), T).
initiatedAt(s0(V)=hi, T) :- happensAt(e1(V), T).
terminatedAt(s0(V)=_X, T) :- happensAt(e3(V), T).
initiatedAt(s1(V)=true, T) :- happensAt(e1(V), T), holdsAt(s0(V)=lo, T).
terminatedAt(s1(V)=true, T) :- happensAt(e0(V), T).
holdsFor(st0(V)=true, I) :-
    holdsFor(s0(V)=lo, I1),
    holdsFor(s1(V)=true, I2),
    union_all([I1, I2], I3),
    relative_complement_all(I3, [I2], I).
";

fn ckpt_feed() -> Vec<(&'static str, Timepoint)> {
    vec![
        ("e0(v0)", 2),
        ("e1(v0)", 7),
        ("e0(v1)", 9),
        ("e1(v1)", 14),
        ("e3(v0)", 21),
        ("e0(v0)", 26),
        ("e1(v0)", 33),
        ("e3(v1)", 38),
        ("e0(v1)", 44),
        ("e3(v0)", 52),
    ]
}

fn feed_range(engine: &mut Engine<'_>, from: Timepoint, to: Timepoint) {
    let mut syms = rtec::SymbolTable::new();
    for (src, t) in ckpt_feed() {
        if t >= from && t < to {
            let term = rtec::parser::parse_term(src, &mut syms).expect("event parses");
            engine.add_event_from(&term, &syms, t);
        }
    }
}

/// Runs the checkpoint scenario: the first half under `first_plan`
/// (plan evaluator iff true), checkpoint at the boundary, restore and
/// finish under `second_plan`. Returns the boundary document and the
/// final observation.
fn run_with_handover(
    compiled: &CompiledDescription,
    first_plan: bool,
    second_plan: bool,
) -> (String, (Vec<String>, Vec<String>, String)) {
    let config = EngineConfig::windowed(10);
    let mut engine = if first_plan {
        Engine::with_plan(compiled, config)
    } else {
        Engine::new(compiled, config)
    };
    feed_range(&mut engine, 0, 30);
    engine.run_to(30);
    let checkpoint = engine.checkpoint();
    let expected_label = if first_plan { "plan" } else { "interpreter" };
    assert_eq!(checkpoint.eval_mode(), Some(expected_label));

    // Round-trip through the JSON envelope: the label survives, and the
    // checksummed state parses back.
    let doc = checkpoint.to_json();
    let parsed = EngineCheckpoint::from_json(&doc).expect("envelope parses");
    assert_eq!(parsed.eval_mode(), Some(expected_label));

    let mut resumed = Engine::restore(compiled, config, &parsed).expect("restore");
    if second_plan {
        resumed.set_evaluator(Box::new(rtec_plan::Plan::compile(compiled)));
    }
    feed_range(&mut resumed, 30, 60);
    resumed.run_to(60);
    (doc, observe(&resumed))
}

/// Checkpoints are portable across evaluation modes, both directions:
/// every handover combination finishes with byte-identical state, and
/// the boundary documents written by the two modes differ only in the
/// informational `eval_mode` envelope field.
#[test]
fn checkpoints_restore_across_eval_modes() {
    let compiled = EventDescription::parse(CKPT_DESC)
        .expect("parses")
        .compile()
        .expect("compiles");

    let (doc_interp, baseline) = run_with_handover(&compiled, false, false);
    let (doc_plan, plan_plan) = run_with_handover(&compiled, true, true);
    let (_, interp_to_plan) = run_with_handover(&compiled, false, true);
    let (_, plan_to_interp) = run_with_handover(&compiled, true, false);

    assert_eq!(baseline, plan_plan, "pure plan run diverges");
    assert_eq!(
        baseline, interp_to_plan,
        "interpreter→plan handover diverges"
    );
    assert_eq!(
        baseline, plan_to_interp,
        "plan→interpreter handover diverges"
    );
    assert!(
        !baseline.0.is_empty(),
        "scenario must recognise something for the comparison to bite"
    );

    // The two boundary documents: identical modulo the envelope label.
    assert_ne!(doc_interp, doc_plan);
    assert_eq!(
        doc_interp.replace("\"eval_mode\":\"interpreter\"", ""),
        doc_plan.replace("\"eval_mode\":\"plan\"", ""),
        "checkpoint state must not depend on the evaluation mode"
    );
}
