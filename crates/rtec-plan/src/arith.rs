//! Frame-backed arithmetic evaluation.
//!
//! The interpreter's [`rtec::eval::arith`] resolves variables through
//! `Bindings`; these mirrors resolve through a [`Frame`] and are kept
//! structurally identical so that every outcome — including the exact
//! failure strings that become engine warnings, which display *unapplied*
//! sub-terms — matches byte for byte.

use crate::frame::{resolve, Frame};
use rtec::ast::CmpOp;
use rtec::eval::arith::{ArithIssue, CompareOutcome};
use rtec::symbol::SymbolTable;
use rtec::term::Term;

/// Evaluates `term` to a number under the frame — the frame-backed
/// mirror of [`rtec::eval::arith::eval_num`].
pub fn eval_num_frame(
    term: &Term,
    frame: &Frame<'_>,
    symbols: &SymbolTable,
) -> Result<f64, ArithIssue> {
    match term {
        Term::Int(i) => Ok(*i as f64),
        Term::Float(f) => Ok(*f),
        Term::Var(v) => match frame.lookup_sym(*v) {
            Some(bound) => eval_num_frame(&bound.clone(), frame, symbols),
            None => Err(ArithIssue::Unbound(symbols.name(*v).to_owned())),
        },
        Term::Compound(f, args) => {
            let name = symbols.name(*f);
            match (name, args.len()) {
                ("+", 2) => Ok(eval_num_frame(&args[0], frame, symbols)?
                    + eval_num_frame(&args[1], frame, symbols)?),
                ("-", 2) => Ok(eval_num_frame(&args[0], frame, symbols)?
                    - eval_num_frame(&args[1], frame, symbols)?),
                ("*", 2) => Ok(eval_num_frame(&args[0], frame, symbols)?
                    * eval_num_frame(&args[1], frame, symbols)?),
                ("/", 2) => {
                    let d = eval_num_frame(&args[1], frame, symbols)?;
                    if d == 0.0 {
                        return Err(ArithIssue::DivisionByZero);
                    }
                    Ok(eval_num_frame(&args[0], frame, symbols)? / d)
                }
                ("abs", 1) => Ok(eval_num_frame(&args[0], frame, symbols)?.abs()),
                ("min", 2) => Ok(eval_num_frame(&args[0], frame, symbols)?
                    .min(eval_num_frame(&args[1], frame, symbols)?)),
                ("max", 2) => Ok(eval_num_frame(&args[0], frame, symbols)?
                    .max(eval_num_frame(&args[1], frame, symbols)?)),
                _ => Err(ArithIssue::NotNumeric(term.display(symbols).to_string())),
            }
        }
        _ => Err(ArithIssue::NotNumeric(term.display(symbols).to_string())),
    }
}

/// Evaluates `lhs op rhs` under the frame — the frame-backed mirror of
/// [`rtec::eval::arith::compare`], including `=`-as-assignment binding
/// the evaluated number rather than the raw expression.
pub fn compare_frame(
    op: CmpOp,
    lhs: &Term,
    rhs: &Term,
    frame: &mut Frame<'_>,
    symbols: &SymbolTable,
) -> CompareOutcome {
    let ln = eval_num_frame(lhs, frame, symbols);
    let rn = eval_num_frame(rhs, frame, symbols);
    if let (Ok(l), Ok(r)) = (&ln, &rn) {
        let v = match op {
            CmpOp::Eq => l == r,
            CmpOp::Neq => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Gt => l > r,
            CmpOp::Le => l <= r,
            CmpOp::Ge => l >= r,
        };
        return CompareOutcome::Decided(v);
    }
    let la = resolve(lhs, frame);
    let ra = resolve(rhs, frame);
    let as_value = |side: Term, num: Result<f64, ArithIssue>| -> Term {
        match (&side, num) {
            (Term::Compound(..), Ok(x)) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    Term::Int(x as i64)
                } else {
                    Term::Float(x)
                }
            }
            _ => side,
        }
    };
    match op {
        CmpOp::Eq => {
            if la.is_ground() && ra.is_ground() {
                CompareOutcome::Decided(la == ra)
            } else if let (Term::Var(v), true) = (&la, ra.is_ground()) {
                let v = *v;
                let value = as_value(ra, rn);
                frame.bind_sym(v, value);
                CompareOutcome::Bound
            } else if let (true, Term::Var(v)) = (la.is_ground(), &ra) {
                let v = *v;
                let value = as_value(la, ln);
                frame.bind_sym(v, value);
                CompareOutcome::Bound
            } else {
                CompareOutcome::Failed(ArithIssue::Unbound(format!(
                    "{} = {}",
                    la.display(symbols),
                    ra.display(symbols)
                )))
            }
        }
        CmpOp::Neq => {
            if la.is_ground() && ra.is_ground() {
                CompareOutcome::Decided(la != ra)
            } else {
                CompareOutcome::Failed(ArithIssue::Unbound(format!(
                    "{} \\= {}",
                    la.display(symbols),
                    ra.display(symbols)
                )))
            }
        }
        _ => CompareOutcome::Failed(match (ln, rn) {
            (Err(e), _) | (_, Err(e)) => e,
            _ => unreachable!("numeric fast path handled Ok/Ok"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::VarTable;
    use rtec::eval::arith::{compare, eval_num};
    use rtec::parser::parse_term;
    use rtec::term::Bindings;

    /// Every outcome of the frame-backed mirrors must match the
    /// binding-backed originals, including failure strings.
    #[test]
    fn mirrors_agree_with_bindings_arith() {
        let mut sym = SymbolTable::new();
        let exprs = [
            "X + 1",
            "abs(X - Y) * 2",
            "f(X)",
            "Speed / 0",
            "min(X, 3) + max(Y, 4)",
            "Unknown",
        ];
        let x = sym.intern("X");
        let y = sym.intern("Y");
        let mut vars = VarTable::default();
        let sx = vars.intern(x);
        let sy = vars.intern(y);
        for src in exprs {
            let t = parse_term(src, &mut sym).unwrap();
            let mut b = Bindings::new();
            b.bind(x, Term::Int(5));
            b.bind(y, Term::Float(2.5));
            let mut frame = Frame::new(&vars);
            frame.bind_slot(sx, Term::Int(5));
            frame.bind_slot(sy, Term::Float(2.5));
            let via_bindings = eval_num(&t, &b, &sym);
            let via_frame = eval_num_frame(&t, &frame, &sym);
            assert_eq!(via_bindings, via_frame, "{src}");
        }
    }

    #[test]
    fn compare_mirror_binds_same_values() {
        let mut sym = SymbolTable::new();
        let lhs = parse_term("D", &mut sym).unwrap();
        let rhs = parse_term("X + 1", &mut sym).unwrap();
        let d = sym.get("D").unwrap();
        let x = sym.get("X").unwrap();
        let mut vars = VarTable::default();
        let sd = vars.intern(d);
        let sx = vars.intern(x);

        let mut b = Bindings::new();
        b.bind(x, Term::Int(5));
        let mut frame = Frame::new(&vars);
        frame.bind_slot(sx, Term::Int(5));

        assert!(matches!(
            compare(CmpOp::Eq, &lhs, &rhs, &mut b, &sym),
            CompareOutcome::Bound
        ));
        assert!(matches!(
            compare_frame(CmpOp::Eq, &lhs, &rhs, &mut frame, &sym),
            CompareOutcome::Bound
        ));
        assert_eq!(b.lookup(d), frame.get_slot(sd));
        assert_eq!(frame.get_slot(sd), Some(&Term::Int(6)));
    }
}
