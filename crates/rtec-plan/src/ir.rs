//! The lowered, nameless rule representation executed by the plan
//! evaluator.
//!
//! Lowering replaces every logic variable with a dense per-rule *slot*
//! index, so unification reads and writes a flat array instead of
//! scanning a name→term association list. Terms that never contain
//! variables of the rule (comparison operands, original patterns kept
//! for warning texts) stay as [`Term`]s and are resolved through the
//! frame on demand.

use rtec::ast::{CmpOp, FluentKey, SimpleRule, StaticRule};
use rtec::symbol::Symbol;
use rtec::term::Term;

/// A lowered term: like [`Term`], but variables are slot indices.
#[derive(Clone, Debug, PartialEq)]
pub enum LTerm {
    /// A rule variable, identified by its slot in the rule's [`VarTable`].
    Slot(u16),
    /// A constant.
    Atom(Symbol),
    /// An integer constant.
    Int(i64),
    /// A floating-point constant.
    Float(f64),
    /// A compound term.
    Compound(Symbol, Vec<LTerm>),
    /// A Prolog list.
    List(Vec<LTerm>),
}

/// Per-rule variable table: maps each distinct variable symbol of the
/// rule to a slot index (its position in `syms`).
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    /// The variable symbols, indexed by slot.
    pub syms: Vec<Symbol>,
}

impl VarTable {
    /// Interns `sym`, returning its (possibly pre-existing) slot.
    pub fn intern(&mut self, sym: Symbol) -> u16 {
        if let Some(i) = self.slot(sym) {
            return i;
        }
        let i = u16::try_from(self.syms.len()).expect("more than 65535 variables in one rule");
        self.syms.push(sym);
        i
    }

    /// The slot of `sym`, if it is a variable of this rule.
    ///
    /// Rules rarely have more than ten variables, so a linear scan beats
    /// a hash map (mirroring the argument for [`rtec::term::Bindings`]).
    pub fn slot(&self, sym: Symbol) -> Option<u16> {
        self.syms.iter().position(|s| *s == sym).map(|i| i as u16)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the rule has no variables.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

/// A lowered body literal of a simple-fluent rule (everything after the
/// leading `happensAt`).
#[derive(Clone, Debug)]
pub enum LBody {
    /// `[not] happensAt(E, T)`.
    HappensAt {
        /// Whether the literal is negated.
        negated: bool,
        /// The lowered event pattern.
        event: LTerm,
        /// The event signature when the pattern is a predicate
        /// (precomputed: applying bindings never changes functor or
        /// arity); `None` when the pattern is a bare variable and the
        /// signature must be taken from the materialized term.
        sig: Option<(Symbol, usize)>,
    },
    /// `[not] holdsAt(F=V, T)`.
    HoldsAt {
        /// Whether the literal is negated.
        negated: bool,
        /// The lowered fluent pattern.
        fluent: LTerm,
        /// The lowered value pattern.
        value: LTerm,
    },
    /// `[not] p(args...)` background lookup.
    Atemporal {
        /// Whether the literal is negated.
        negated: bool,
        /// The lowered fact pattern.
        pattern: LTerm,
        /// Pre-rendered "no background facts" warning. `Some` iff the
        /// description's fact store (immutable after compilation) has no
        /// fact with this pattern's signature — exactly the condition the
        /// interpreter re-checks on every evaluation. Emitted only for
        /// positive literals, matching the interpreter.
        sig_warn: Option<String>,
    },
    /// An arithmetic comparison. Operands stay as raw [`Term`]s and are
    /// resolved through the frame: the interpreter's warning texts
    /// display the *unapplied* sub-term at the point of failure, which a
    /// pre-substituted operand could not reproduce.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
}

/// A lowered simple-fluent rule.
#[derive(Clone, Debug)]
pub struct LoweredSimple {
    /// The original rule, kept for head-warning texts ([`rtec::ast::Fvp::display`])
    /// and the initiation/termination kind.
    pub rule: SimpleRule,
    /// The rule's variable table.
    pub vars: VarTable,
    /// The leading positive `happensAt` pattern, lowered.
    pub first_event: LTerm,
    /// The leading pattern's signature (validation guarantees a
    /// predicate here; rules without one are dropped at lowering like
    /// the interpreter skips them).
    pub first_sig: (Symbol, usize),
    /// Slot of the rule's time variable.
    pub time_slot: u16,
    /// The remaining body literals, lowered.
    pub body: Vec<LBody>,
    /// The lowered head fluent pattern.
    pub head_fluent: LTerm,
    /// The lowered head value pattern.
    pub head_value: LTerm,
}

/// A lowered body element of a statically-determined-fluent rule.
#[derive(Clone, Debug)]
pub enum LStatic {
    /// `holdsFor(F=V, I)`.
    HoldsFor {
        /// The lowered fluent pattern.
        fluent: LTerm,
        /// The lowered value pattern.
        value: LTerm,
        /// Destination interval register.
        out: u16,
    },
    /// `union_all([...], Out)`, possibly with fused upstream inputs.
    Union {
        /// Source interval registers.
        inputs: Vec<u16>,
        /// Destination interval register.
        out: u16,
    },
    /// `intersect_all([...], Out)`, possibly with fused upstream inputs.
    Intersect {
        /// Source interval registers.
        inputs: Vec<u16>,
        /// Destination interval register.
        out: u16,
    },
    /// `relative_complement_all(I, [...], Out)`; fused unions feed the
    /// subtrahend list directly.
    RelComplement {
        /// Base interval register.
        base: u16,
        /// Interval registers whose union is subtracted.
        subtract: Vec<u16>,
        /// Destination interval register.
        out: u16,
    },
    /// `[not] p(args...)` background lookup.
    Atemporal {
        /// Whether the literal is negated.
        negated: bool,
        /// The lowered fact pattern.
        pattern: LTerm,
        /// Pre-rendered "no background facts" warning (see
        /// [`LBody::Atemporal::sig_warn`]).
        sig_warn: Option<String>,
    },
    /// An arithmetic comparison over raw terms (see [`LBody::Compare`]).
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
}

/// A lowered statically-determined-fluent rule.
#[derive(Clone, Debug)]
pub struct LoweredStatic {
    /// The original rule, kept for candidate seeding (which matches the
    /// raw `holdsFor` patterns against the cache) and warning texts.
    pub rule: StaticRule,
    /// The rule's variable table.
    pub vars: VarTable,
    /// The lowered body, with fused interval operators.
    pub body: Vec<LStatic>,
    /// The lowered head fluent pattern.
    pub head_fluent: LTerm,
    /// The lowered head value pattern.
    pub head_value: LTerm,
    /// Register holding the head's interval list at emission time.
    pub out_reg: u16,
    /// Number of interval registers.
    pub n_regs: usize,
}

/// One entry of the precomputed bottom-up evaluation order: a defined
/// fluent plus its lowered rules. A fluent is either simple or static,
/// never both (enforced at description compilation).
#[derive(Clone, Debug)]
pub struct Stratum {
    /// The fluent this stratum derives.
    pub key: FluentKey,
    /// Whether the description defines this fluent with simple rules.
    /// Kept separate from `simple.is_empty()`: a simple fluent whose
    /// every rule was dropped at lowering must still run interval
    /// assembly, which re-emits intervals carried open by inertia.
    pub has_simple: bool,
    /// Whether the description defines this fluent with `holdsFor` rules.
    pub has_static: bool,
    /// Lowered `initiatedAt`/`terminatedAt` rules, in description order.
    pub simple: Vec<LoweredSimple>,
    /// Lowered `holdsFor` rules, in description order.
    pub statics: Vec<LoweredStatic>,
    /// Optimizer-installed trigger pre-filter: the deduplicated first
    /// `happensAt` signatures of the stratum's simple rules. When
    /// `Some` and none of the signatures occur in a window's event
    /// index, the per-rule scan is skipped wholesale (interval
    /// assembly and the inertia carry still run). `None` on
    /// unoptimized plans.
    pub prefilter: Option<Vec<(Symbol, usize)>>,
}
