//! Slot-indexed binding frames.
//!
//! A [`Frame`] replaces [`rtec::term::Bindings`] during plan execution:
//! the rule's own variables live in a flat slot array (O(1) access by
//! compile-time index), while variables that only appear at run time —
//! degenerate streams can carry variables inside event terms — fall back
//! to an overflow `Bindings`. A trail records slot writes so a failed
//! branch unwinds in LIFO order, exactly like `Bindings::truncate`.

use crate::ir::{LTerm, VarTable};
use rtec::symbol::Symbol;
use rtec::term::{Bindings, Term};

/// Undo point of a [`Frame`]; see [`Frame::mark`].
#[derive(Clone, Copy, Debug)]
pub struct FrameMark {
    trail: usize,
    overflow: usize,
}

/// The run-time variable store of one rule activation.
#[derive(Debug)]
pub struct Frame<'v> {
    vars: &'v VarTable,
    slots: Vec<Option<Term>>,
    trail: Vec<u16>,
    overflow: Bindings,
}

impl<'v> Frame<'v> {
    /// Creates an empty frame for a rule's variable table.
    pub fn new(vars: &'v VarTable) -> Frame<'v> {
        Frame {
            vars,
            slots: vec![None; vars.len()],
            trail: Vec::new(),
            overflow: Bindings::new(),
        }
    }

    /// The variable table this frame indexes into.
    pub fn vars(&self) -> &VarTable {
        self.vars
    }

    /// A restore point capturing the current binding state.
    pub fn mark(&self) -> FrameMark {
        FrameMark {
            trail: self.trail.len(),
            overflow: self.overflow.len(),
        }
    }

    /// Unwinds all bindings made after `mark`.
    pub fn undo(&mut self, mark: FrameMark) {
        while self.trail.len() > mark.trail {
            let slot = self.trail.pop().expect("trail length checked");
            self.slots[slot as usize] = None;
        }
        self.overflow.truncate(mark.overflow);
    }

    /// Unwinds every binding (reuse between rule activations).
    pub fn clear(&mut self) {
        self.undo(FrameMark {
            trail: 0,
            overflow: 0,
        });
    }

    /// The value bound to `slot`, if any.
    pub fn get_slot(&self, slot: u16) -> Option<&Term> {
        self.slots[slot as usize].as_ref()
    }

    /// Binds `slot` to `value`.
    ///
    /// # Panics
    /// Panics in debug builds if the slot is already bound (mirroring
    /// [`Bindings::bind`]).
    pub fn bind_slot(&mut self, slot: u16, value: Term) {
        debug_assert!(self.slots[slot as usize].is_none(), "slot already bound");
        self.slots[slot as usize] = Some(value);
        self.trail.push(slot);
    }

    /// The value bound to variable symbol `sym` — slot first, overflow
    /// second. This is the frame's equivalent of `Bindings::lookup`.
    pub fn lookup_sym(&self, sym: Symbol) -> Option<&Term> {
        match self.vars.slot(sym) {
            Some(i) => self.slots[i as usize].as_ref(),
            None => self.overflow.lookup(sym),
        }
    }

    /// Binds variable symbol `sym` (slot if it is a rule variable,
    /// overflow otherwise).
    pub fn bind_sym(&mut self, sym: Symbol, value: Term) {
        match self.vars.slot(sym) {
            Some(i) => self.bind_slot(i, value),
            None => self.overflow.bind(sym, value),
        }
    }

    /// Loads a `Bindings` produced by candidate seeding into the frame.
    pub fn load(&mut self, bindings: &Bindings) {
        for (v, t) in bindings.iter() {
            self.bind_sym(v, t.clone());
        }
    }
}

/// Matches a lowered pattern against a fact term, extending `frame`. On
/// failure the frame is restored and `false` returned — the lowered
/// mirror of [`rtec::term::match_term`].
pub fn match_lterm(pattern: &LTerm, fact: &Term, frame: &mut Frame<'_>) -> bool {
    let mark = frame.mark();
    if match_lterm_inner(pattern, fact, frame) {
        true
    } else {
        frame.undo(mark);
        false
    }
}

fn match_lterm_inner(pattern: &LTerm, fact: &Term, frame: &mut Frame<'_>) -> bool {
    match pattern {
        LTerm::Slot(i) => {
            if let Some(bound) = frame.get_slot(*i).cloned() {
                match_resolved_inner(&bound, fact, frame)
            } else {
                frame.bind_slot(*i, fact.clone());
                true
            }
        }
        LTerm::Atom(a) => matches!(fact, Term::Atom(b) if a == b),
        LTerm::Int(i) => match fact {
            Term::Int(j) => i == j,
            Term::Float(f) => (*i as f64) == *f,
            _ => false,
        },
        LTerm::Float(x) => match fact {
            Term::Float(y) => x == y,
            Term::Int(j) => *x == (*j as f64),
            _ => false,
        },
        LTerm::Compound(f, args) => match fact {
            Term::Compound(g, fargs) if f == g && args.len() == fargs.len() => args
                .iter()
                .zip(fargs)
                .all(|(p, q)| match_lterm_inner(p, q, frame)),
            _ => false,
        },
        LTerm::List(items) => match fact {
            Term::List(fitems) if items.len() == fitems.len() => items
                .iter()
                .zip(fitems)
                .all(|(p, q)| match_lterm_inner(p, q, frame)),
            _ => false,
        },
    }
}

/// Matches a plain [`Term`] pattern against a fact, resolving variables
/// through the frame — the frame-backed mirror of the interpreter's
/// `match_term`, used for materialized patterns (atemporal lookups,
/// fluent-instance enumeration) and for terms a slot was bound to.
pub fn match_resolved(pattern: &Term, fact: &Term, frame: &mut Frame<'_>) -> bool {
    let mark = frame.mark();
    if match_resolved_inner(pattern, fact, frame) {
        true
    } else {
        frame.undo(mark);
        false
    }
}

fn match_resolved_inner(pattern: &Term, fact: &Term, frame: &mut Frame<'_>) -> bool {
    match pattern {
        Term::Var(v) => {
            if let Some(bound) = frame.lookup_sym(*v).cloned() {
                match_resolved_inner(&bound, fact, frame)
            } else {
                frame.bind_sym(*v, fact.clone());
                true
            }
        }
        Term::Atom(a) => matches!(fact, Term::Atom(b) if a == b),
        Term::Int(i) => match fact {
            Term::Int(j) => i == j,
            Term::Float(f) => (*i as f64) == *f,
            _ => false,
        },
        Term::Float(x) => match fact {
            Term::Float(y) => x == y,
            Term::Int(j) => *x == (*j as f64),
            _ => false,
        },
        Term::Compound(f, args) => match fact {
            Term::Compound(g, fargs) if f == g && args.len() == fargs.len() => args
                .iter()
                .zip(fargs)
                .all(|(p, q)| match_resolved_inner(p, q, frame)),
            _ => false,
        },
        Term::List(items) => match fact {
            Term::List(fitems) if items.len() == fitems.len() => items
                .iter()
                .zip(fitems)
                .all(|(p, q)| match_resolved_inner(p, q, frame)),
            _ => false,
        },
    }
}

/// Instantiates a lowered pattern under the frame, producing the same
/// term `pattern.apply(bindings)` would: bound variables are replaced
/// (resolving chains), unbound ones reappear as their original symbols.
pub fn materialize(pattern: &LTerm, frame: &Frame<'_>) -> Term {
    match pattern {
        LTerm::Slot(i) => match frame.get_slot(*i) {
            Some(t) => resolve(t, frame),
            None => Term::Var(frame.vars().syms[*i as usize]),
        },
        LTerm::Atom(s) => Term::Atom(*s),
        LTerm::Int(i) => Term::Int(*i),
        LTerm::Float(f) => Term::Float(*f),
        LTerm::Compound(f, args) => {
            Term::Compound(*f, args.iter().map(|a| materialize(a, frame)).collect())
        }
        LTerm::List(items) => Term::List(items.iter().map(|a| materialize(a, frame)).collect()),
    }
}

/// Applies the frame to a plain term — the frame-backed mirror of
/// [`Term::apply`].
pub fn resolve(term: &Term, frame: &Frame<'_>) -> Term {
    match term {
        Term::Var(v) => match frame.lookup_sym(*v) {
            Some(bound) => resolve(bound, frame),
            None => term.clone(),
        },
        Term::Compound(f, args) => {
            Term::Compound(*f, args.iter().map(|a| resolve(a, frame)).collect())
        }
        Term::List(items) => Term::List(items.iter().map(|a| resolve(a, frame)).collect()),
        _ => term.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::symbol::SymbolTable;

    #[test]
    fn slot_binding_and_undo() {
        let mut sym = SymbolTable::new();
        let x = sym.intern("X");
        let mut vars = VarTable::default();
        let sx = vars.intern(x);
        let mut frame = Frame::new(&vars);
        let mark = frame.mark();
        frame.bind_slot(sx, Term::Int(7));
        assert_eq!(frame.get_slot(sx), Some(&Term::Int(7)));
        assert_eq!(frame.lookup_sym(x), Some(&Term::Int(7)));
        frame.undo(mark);
        assert!(frame.get_slot(sx).is_none());
    }

    #[test]
    fn overflow_for_foreign_symbols() {
        let mut sym = SymbolTable::new();
        let x = sym.intern("X");
        let y = sym.intern("Y");
        let mut vars = VarTable::default();
        vars.intern(x);
        let mut frame = Frame::new(&vars);
        let mark = frame.mark();
        frame.bind_sym(y, Term::Int(1));
        assert_eq!(frame.lookup_sym(y), Some(&Term::Int(1)));
        frame.undo(mark);
        assert!(frame.lookup_sym(y).is_none());
    }

    #[test]
    fn match_and_materialize_round_trip() {
        let mut sym = SymbolTable::new();
        let f = sym.intern("f");
        let x = sym.intern("X");
        let a = sym.intern("a");
        let mut vars = VarTable::default();
        let sx = vars.intern(x);
        let pattern = LTerm::Compound(f, vec![LTerm::Slot(sx), LTerm::Atom(a)]);
        let fact = Term::Compound(f, vec![Term::Int(3), Term::Atom(a)]);
        let mut frame = Frame::new(&vars);
        assert!(match_lterm(&pattern, &fact, &mut frame));
        assert_eq!(materialize(&pattern, &frame), fact);
        // Mismatch restores the frame.
        let clash = Term::Compound(f, vec![Term::Int(4), Term::Atom(a)]);
        assert!(!match_lterm(&pattern, &clash, &mut frame));
        assert_eq!(frame.get_slot(sx), Some(&Term::Int(3)));
    }

    #[test]
    fn unbound_slot_materializes_as_variable() {
        let mut sym = SymbolTable::new();
        let x = sym.intern("X");
        let mut vars = VarTable::default();
        let sx = vars.intern(x);
        let frame = Frame::new(&vars);
        assert_eq!(materialize(&LTerm::Slot(sx), &frame), Term::Var(x));
    }
}
