//! Compilation of RTEC event descriptions into stratified, slot-indexed
//! evaluation plans.
//!
//! The engine's default evaluator walks the validated rule AST, paying
//! for name-based variable lookups, per-literal signature recomputation
//! and interval-list intermediaries on every window. [`Plan::compile`]
//! pays those costs once, ahead of time:
//!
//! * **Slots instead of names** — every rule variable becomes a dense
//!   index into a flat [`frame::Frame`], so unification reads an array
//!   element instead of scanning an association list.
//! * **Precomputed dispatch** — event signatures, the "no background
//!   facts" warning condition and the stratified bottom-up fluent order
//!   (derived from the same dependency graph `rtec::semantics` hands to
//!   `rtec-lint`) are resolved at compile time.
//! * **Fused interval algebra** — adjacent `union_all` /
//!   `intersect_all` / `relative_complement_all` chains whose
//!   intermediate list is consumed exactly once collapse into a single
//!   operator application ([`lower::fuse_interval_ops`]).
//!
//! The resulting [`Plan`] implements [`WindowEvaluator`] and is
//! installed with [`WithPlan::with_plan`] or
//! [`rtec::engine::Engine::set_evaluator`]; `RTEC_EVAL=plan` selects it
//! throughout the toolchain. A plan is *observationally identical* to
//! the interpreter — same derived intervals, same inertia carries, same
//! warnings in the same order — so checkpoints and recognition output
//! are byte-for-byte independent of the evaluation mode.
//!
//! ```
//! use rtec::description::EventDescription;
//! use rtec::engine::{Engine, EngineConfig};
//! use rtec_plan::WithPlan;
//!
//! let mut src = EventDescription::parse(
//!     "initiatedAt(moored(V)=true, T) :- happensAt(stop_start(V), T).
//!      terminatedAt(moored(V)=true, T) :- happensAt(stop_end(V), T).",
//! )
//! .unwrap();
//! let start = src.term("stop_start(v1)").unwrap();
//! let stop = src.term("stop_end(v1)").unwrap();
//! let moored = src.fvp("moored(v1)=true").unwrap();
//! let desc = src.compile().unwrap();
//!
//! let config = EngineConfig::default();
//! let mut interp = Engine::new(&desc, config.clone());
//! let mut plan = Engine::with_plan(&desc, config);
//! for engine in [&mut interp, &mut plan] {
//!     engine.add_event(start.clone(), 3);
//!     engine.add_event(stop.clone(), 9);
//!     engine.run_to(10);
//! }
//! assert!(plan.output().holds_at(&moored, 5));
//! assert_eq!(
//!     interp.output().intervals(&moored),
//!     plan.output().intervals(&moored)
//! );
//! ```

#![forbid(unsafe_code)]

pub mod arith;
mod exec;
pub mod frame;
pub mod ir;
pub mod lower;
pub mod optimize;

pub use optimize::OptimizeProofs;

use crate::ir::Stratum;
use rtec::ast::FluentKey;
use rtec::background::FactStore;
use rtec::description::CompiledDescription;
use rtec::engine::{Engine, EngineConfig, WindowEvaluator};
use rtec::eval::cache::FluentCache;
use rtec::eval::events::EventIndex;
use rtec::eval::simple::InertiaState;
use rtec::eval::WarningSink;
use rtec::symbol::{Symbol, SymbolTable};
use std::collections::HashSet;

/// Size and fusion counters of a compiled plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Number of strata (defined fluents) in evaluation order.
    pub strata: usize,
    /// Lowered `initiatedAt`/`terminatedAt` rules.
    pub simple_rules: usize,
    /// Lowered `holdsFor` rules.
    pub static_rules: usize,
    /// Total variable slots across all rules.
    pub slots: usize,
    /// Interval operators eliminated by fusion.
    pub fused_ops: usize,
    /// Malformed simple rules dropped at lowering (the interpreter skips
    /// the same rules defensively at run time).
    pub dropped_rules: usize,
    /// Rules deleted by the analysis-driven optimizer (statically empty
    /// or unreachable, with a warning-free body). Zero on unoptimized
    /// plans.
    pub deleted_rules: usize,
    /// Interval-algebra input registers folded away by the optimizer
    /// because their producer is statically empty. Zero on unoptimized
    /// plans.
    pub folded_inputs: usize,
    /// Strata carrying an optimizer-installed trigger-signature
    /// pre-filter. Zero on unoptimized plans.
    pub prefiltered_strata: usize,
}

/// A compiled, self-contained evaluation plan.
///
/// The plan owns copies of everything it needs (symbols, facts, lowered
/// rules), so it is `'static` and can be boxed into an engine whose
/// description it was compiled from. Compiling against one description
/// and installing into an engine over another is a logic error; the
/// differential tests only ever pair them.
pub struct Plan {
    symbols: SymbolTable,
    eq: Symbol,
    facts: FactStore,
    defined: HashSet<FluentKey>,
    strata: Vec<Stratum>,
    stats: PlanStats,
    /// Evaluator label recorded in checkpoints: `"plan"` after
    /// [`Plan::compile`], `"optimized"` after [`Plan::optimize`].
    label: &'static str,
}

impl Plan {
    /// Compiles a validated description into a plan.
    pub fn compile(desc: &CompiledDescription) -> Plan {
        let mut stats = PlanStats::default();
        let mut strata = Vec::with_capacity(desc.strata.len());
        for key in &desc.strata {
            let mut stratum = Stratum {
                key: *key,
                has_simple: desc.simple_by_fluent.contains_key(key),
                has_static: desc.static_by_fluent.contains_key(key),
                simple: Vec::new(),
                statics: Vec::new(),
                prefilter: None,
            };
            if let Some(rids) = desc.simple_by_fluent.get(key) {
                for &rid in rids {
                    match lower::lower_simple(&desc.simple[rid], &desc.facts, &desc.symbols) {
                        Some(l) => {
                            stats.simple_rules += 1;
                            stats.slots += l.vars.len();
                            stratum.simple.push(l);
                        }
                        None => stats.dropped_rules += 1,
                    }
                }
            }
            if let Some(rids) = desc.static_by_fluent.get(key) {
                for &rid in rids {
                    let (l, fused) =
                        lower::lower_static(&desc.statics[rid], &desc.facts, &desc.symbols);
                    stats.static_rules += 1;
                    stats.slots += l.vars.len();
                    stats.fused_ops += fused;
                    stratum.statics.push(l);
                }
            }
            strata.push(stratum);
        }
        stats.strata = strata.len();
        let defined: HashSet<FluentKey> = desc
            .simple_by_fluent
            .keys()
            .chain(desc.static_by_fluent.keys())
            .copied()
            .collect();
        Plan {
            symbols: desc.symbols.clone(),
            eq: desc.sys.eq,
            facts: desc.facts.clone(),
            defined,
            strata,
            stats,
            label: "plan",
        }
    }

    /// Size and fusion counters.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// The strata in bottom-up evaluation order.
    pub fn strata(&self) -> &[Stratum] {
        &self.strata
    }

    /// The plan's interned symbol table (a copy of the description's).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The plan's background fact store (a copy of the description's).
    pub fn facts(&self) -> &FactStore {
        &self.facts
    }

    /// The fluent keys defined by some rule of the description.
    pub fn defined(&self) -> &HashSet<FluentKey> {
        &self.defined
    }

    /// The rules of `stratum` that can fire given this window's events:
    /// the full slice normally, the empty slice when an
    /// optimizer-installed pre-filter proves no rule's trigger signature
    /// occurs in the index. Running `eval_simple_stratum` over an empty
    /// slice still performs interval assembly and the inertia carry, so
    /// the skip is observationally identical.
    fn live_simple<'s>(stratum: &'s Stratum, events: &EventIndex) -> &'s [ir::LoweredSimple] {
        if let Some(sigs) = &stratum.prefilter {
            if sigs.iter().all(|sig| events.all(*sig).is_empty()) {
                return &[];
            }
        }
        &stratum.simple
    }
}

impl WindowEvaluator for Plan {
    fn label(&self) -> &'static str {
        self.label
    }

    fn evaluate_window(
        &mut self,
        events: &EventIndex,
        cache: &mut FluentCache<'_>,
        inertia: &mut InertiaState,
        warnings: &mut WarningSink,
    ) {
        let ctx = exec::ExecCtx {
            symbols: &self.symbols,
            eq: self.eq,
            facts: &self.facts,
            defined: &self.defined,
            events,
        };
        for stratum in &self.strata {
            if stratum.has_simple {
                exec::eval_simple_stratum(
                    &ctx,
                    stratum.key,
                    Plan::live_simple(stratum, events),
                    cache,
                    inertia,
                    warnings,
                );
            }
            if stratum.has_static {
                exec::eval_static_stratum(&ctx, &stratum.statics, cache, warnings);
            }
        }
    }

    /// Delta-aware evaluation: strata whose simple fluent is provably
    /// unaffected by the window's events scan an empty index — zero
    /// candidates, so only the inertia carry is folded, identically to
    /// scanning the real index (the engine's delta analysis guarantees
    /// no rule of the key matches any event). Statics always run: they
    /// read the cache and input intervals, not the event index.
    fn evaluate_window_incremental(
        &mut self,
        events: &EventIndex,
        delta: &rtec::eval::delta::WindowDelta,
        cache: &mut FluentCache<'_>,
        inertia: &mut InertiaState,
        warnings: &mut WarningSink,
        mut profile: Option<&mut rtec_obs::profile::WindowProfile>,
    ) {
        let empty = EventIndex::default();
        let ctx = exec::ExecCtx {
            symbols: &self.symbols,
            eq: self.eq,
            facts: &self.facts,
            defined: &self.defined,
            events,
        };
        let ctx_clean = exec::ExecCtx {
            symbols: &self.symbols,
            eq: self.eq,
            facts: &self.facts,
            defined: &self.defined,
            events: &empty,
        };
        for stratum in &self.strata {
            if stratum.has_simple {
                let simple_ctx = if delta.is_dirty(stratum.key) {
                    &ctx
                } else {
                    &ctx_clean
                };
                let ops_before = rtec::profile::interval_ops();
                let started = std::time::Instant::now();
                exec::eval_simple_stratum(
                    simple_ctx,
                    stratum.key,
                    Plan::live_simple(stratum, simple_ctx.events),
                    cache,
                    inertia,
                    warnings,
                );
                if let Some(p) = profile.as_deref_mut() {
                    p.record(
                        rtec::profile::rule_name(&self.symbols, stratum.key),
                        rtec_obs::profile::RuleKind::Simple,
                        started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                        rtec::profile::interval_ops().wrapping_sub(ops_before),
                    );
                }
            }
            if stratum.has_static {
                let ops_before = rtec::profile::interval_ops();
                let started = std::time::Instant::now();
                exec::eval_static_stratum(&ctx, &stratum.statics, cache, warnings);
                if let Some(p) = profile.as_deref_mut() {
                    p.record(
                        rtec::profile::rule_name(&self.symbols, stratum.key),
                        rtec_obs::profile::RuleKind::Static,
                        started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                        rtec::profile::interval_ops().wrapping_sub(ops_before),
                    );
                }
            }
        }
    }

    fn evaluate_window_profiled(
        &mut self,
        events: &EventIndex,
        cache: &mut FluentCache<'_>,
        inertia: &mut InertiaState,
        warnings: &mut WarningSink,
        profile: &mut rtec_obs::profile::WindowProfile,
    ) {
        // Identical control flow to `evaluate_window`, with a timer and
        // an interval-op snapshot around each stratum. Attribution must
        // never reorder or alter the calls — observational identity to
        // the unprofiled path is part of the evaluator contract.
        let ctx = exec::ExecCtx {
            symbols: &self.symbols,
            eq: self.eq,
            facts: &self.facts,
            defined: &self.defined,
            events,
        };
        for stratum in &self.strata {
            if stratum.has_simple {
                let ops_before = rtec::profile::interval_ops();
                let started = std::time::Instant::now();
                exec::eval_simple_stratum(
                    &ctx,
                    stratum.key,
                    Plan::live_simple(stratum, events),
                    cache,
                    inertia,
                    warnings,
                );
                profile.record(
                    rtec::profile::rule_name(&self.symbols, stratum.key),
                    rtec_obs::profile::RuleKind::Simple,
                    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                    rtec::profile::interval_ops().wrapping_sub(ops_before),
                );
            }
            if stratum.has_static {
                let ops_before = rtec::profile::interval_ops();
                let started = std::time::Instant::now();
                exec::eval_static_stratum(&ctx, &stratum.statics, cache, warnings);
                profile.record(
                    rtec::profile::rule_name(&self.symbols, stratum.key),
                    rtec_obs::profile::RuleKind::Static,
                    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                    rtec::profile::interval_ops().wrapping_sub(ops_before),
                );
            }
        }
    }
}

/// Extension constructor: an engine that evaluates windows with a plan
/// compiled from its description.
pub trait WithPlan<'a>: Sized {
    /// Equivalent to `Engine::with_evaluator(desc, config,
    /// Box::new(Plan::compile(desc)))`.
    fn with_plan(desc: &'a CompiledDescription, config: EngineConfig) -> Self;
}

impl<'a> WithPlan<'a> for Engine<'a> {
    fn with_plan(desc: &'a CompiledDescription, config: EngineConfig) -> Engine<'a> {
        Engine::with_evaluator(desc, config, Box::new(Plan::compile(desc)))
    }
}
