//! Lowering from validated rules to the slot-indexed plan IR, including
//! interval-operator fusion.

use crate::ir::{LBody, LStatic, LTerm, LoweredSimple, LoweredStatic, VarTable};
use rtec::ast::{BodyLiteral, SimpleRule, StaticLiteral, StaticRule};
use rtec::background::FactStore;
use rtec::symbol::{Symbol, SymbolTable};
use rtec::term::Term;

/// Lowers a term, interning its variables into the rule's table.
fn lower_term(term: &Term, vars: &mut VarTable) -> LTerm {
    match term {
        Term::Var(v) => LTerm::Slot(vars.intern(*v)),
        Term::Atom(s) => LTerm::Atom(*s),
        Term::Int(i) => LTerm::Int(*i),
        Term::Float(f) => LTerm::Float(*f),
        Term::Compound(f, args) => {
            LTerm::Compound(*f, args.iter().map(|a| lower_term(a, vars)).collect())
        }
        Term::List(items) => LTerm::List(items.iter().map(|a| lower_term(a, vars)).collect()),
    }
}

/// Pre-renders the interpreter's "no background facts" warning for a
/// positive atemporal literal. The condition — no fact shares the
/// pattern's signature — depends only on the fact store, which is
/// immutable after compilation, so it can be decided once here instead
/// of on every evaluation.
fn atemporal_warning(pattern: &Term, facts: &FactStore, symbols: &SymbolTable) -> Option<String> {
    if facts.has_signature_of(pattern) {
        return None;
    }
    pattern
        .signature()
        .map(|(f, a)| format!("no background facts for '{}/{}'", symbols.name(f), a))
}

/// Lowers one simple-fluent rule. Returns `None` for rules the
/// interpreter would skip up front: a first literal that is not a
/// positive `happensAt` over a predicate (validation normally prevents
/// both; the interpreter `continue`s defensively).
pub fn lower_simple(
    rule: &SimpleRule,
    facts: &FactStore,
    symbols: &SymbolTable,
) -> Option<LoweredSimple> {
    let BodyLiteral::HappensAt {
        negated: false,
        event,
    } = rule.body.first()?
    else {
        return None;
    };
    let first_sig = event.signature()?;

    let mut vars = VarTable::default();
    let head_fluent = lower_term(&rule.fvp.fluent, &mut vars);
    let head_value = lower_term(&rule.fvp.value, &mut vars);
    let time_slot = vars.intern(rule.time_var);
    let first_event = lower_term(event, &mut vars);

    let body = rule.body[1..]
        .iter()
        .map(|lit| match lit {
            BodyLiteral::HappensAt { negated, event } => LBody::HappensAt {
                negated: *negated,
                event: lower_term(event, &mut vars),
                sig: event.signature(),
            },
            BodyLiteral::HoldsAt { negated, fvp } => LBody::HoldsAt {
                negated: *negated,
                fluent: lower_term(&fvp.fluent, &mut vars),
                value: lower_term(&fvp.value, &mut vars),
            },
            BodyLiteral::Atemporal { negated, pattern } => LBody::Atemporal {
                negated: *negated,
                pattern: lower_term(pattern, &mut vars),
                sig_warn: if *negated {
                    None
                } else {
                    atemporal_warning(pattern, facts, symbols)
                },
            },
            BodyLiteral::Compare { op, lhs, rhs } => {
                // Intern comparison variables so they resolve via slots.
                for v in lhs.variables().into_iter().chain(rhs.variables()) {
                    vars.intern(v);
                }
                LBody::Compare {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                }
            }
        })
        .collect();

    Some(LoweredSimple {
        rule: rule.clone(),
        vars,
        first_event,
        first_sig,
        time_slot,
        body,
        head_fluent,
        head_value,
    })
}

/// How many times interval variable `v` is *read* by the body, and
/// whether any literal other than index `skip` *writes* it.
fn interval_reads(body: &[StaticLiteral], v: Symbol, skip: usize) -> (usize, bool) {
    let mut reads = 0;
    let mut foreign_write = false;
    for (i, lit) in body.iter().enumerate() {
        let (ins, base, out) = match lit {
            StaticLiteral::HoldsFor { out, .. } => (None, None, Some(*out)),
            StaticLiteral::Union { inputs, out } | StaticLiteral::Intersect { inputs, out } => {
                (Some(inputs), None, Some(*out))
            }
            StaticLiteral::RelComplement {
                base,
                subtract,
                out,
            } => (Some(subtract), Some(*base), Some(*out)),
            _ => (None, None, None),
        };
        if let Some(ins) = ins {
            reads += ins.iter().filter(|x| **x == v).count();
        }
        if base == Some(v) {
            reads += 1;
        }
        if out == Some(v) && i != skip {
            foreign_write = true;
        }
    }
    (reads, foreign_write)
}

/// Fuses adjacent interval-operator chains: a `union_all`/`intersect_all`
/// whose result feeds exactly one compatible consumer in the *next*
/// literal is inlined into that consumer's input list, eliminating the
/// intermediate list.
///
/// Soundness: over normalized maximal interval lists, `union_all` and
/// `intersect_all` are associative (`union_all([union_all(xs), y]) =
/// union_all(xs ++ [y])`), and `relative_complement_all(b, ls)` subtracts
/// `union_all(ls)`, so a union feeding a subtrahend flattens losslessly.
/// The interval operators emit no warnings and read only their input
/// registers, and adjacency guarantees no literal observes the
/// eliminated intermediate, so evaluation stays observationally
/// identical — including the empty-register pruning: a missing input
/// prunes the branch at the producer in the interpreter and at the fused
/// consumer here, with nothing emitted either way.
///
/// Returns the fused body plus the number of operators eliminated.
pub fn fuse_interval_ops(body: &[StaticLiteral], head_out: Symbol) -> (Vec<StaticLiteral>, usize) {
    let mut body: Vec<StaticLiteral> = body.to_vec();
    let mut fused = 0;
    'outer: loop {
        for i in 0..body.len().saturating_sub(1) {
            let (kind_union, inputs, out) = match &body[i] {
                StaticLiteral::Union { inputs, out } => (true, inputs.clone(), *out),
                StaticLiteral::Intersect { inputs, out } => (false, inputs.clone(), *out),
                _ => continue,
            };
            if out == head_out || inputs.contains(&out) {
                continue;
            }
            let (reads, foreign_write) = interval_reads(&body, out, i);
            if reads != 1 || foreign_write {
                continue;
            }
            // The single read must sit in the immediately following
            // literal, in a position where flattening is associative.
            let consumer_inputs: Option<&mut Vec<Symbol>> = match &mut body[i + 1] {
                StaticLiteral::Union {
                    inputs: consumer, ..
                } if kind_union => Some(consumer),
                StaticLiteral::Intersect {
                    inputs: consumer, ..
                } if !kind_union => Some(consumer),
                StaticLiteral::RelComplement {
                    subtract: consumer, ..
                } if kind_union => Some(consumer),
                _ => None,
            };
            let Some(consumer) = consumer_inputs else {
                continue;
            };
            let Some(pos) = consumer.iter().position(|x| *x == out) else {
                continue;
            };
            consumer.splice(pos..=pos, inputs.iter().copied());
            body.remove(i);
            fused += 1;
            continue 'outer;
        }
        break;
    }
    (body, fused)
}

/// Lowers one statically-determined-fluent rule (with fusion).
pub fn lower_static(
    rule: &StaticRule,
    facts: &FactStore,
    symbols: &SymbolTable,
) -> (LoweredStatic, usize) {
    let (fused_body, fused) = fuse_interval_ops(&rule.body, rule.out);

    let mut vars = VarTable::default();
    let head_fluent = lower_term(&rule.fvp.fluent, &mut vars);
    let head_value = lower_term(&rule.fvp.value, &mut vars);

    // Dense interval registers, in first-appearance order.
    let mut regs: Vec<Symbol> = Vec::new();
    let reg = |regs: &mut Vec<Symbol>, v: Symbol| -> u16 {
        if let Some(i) = regs.iter().position(|s| *s == v) {
            return i as u16;
        }
        regs.push(v);
        (regs.len() - 1) as u16
    };

    let body = fused_body
        .iter()
        .map(|lit| match lit {
            StaticLiteral::HoldsFor { fvp, out } => LStatic::HoldsFor {
                fluent: lower_term(&fvp.fluent, &mut vars),
                value: lower_term(&fvp.value, &mut vars),
                out: reg(&mut regs, *out),
            },
            StaticLiteral::Union { inputs, out } => LStatic::Union {
                inputs: inputs.iter().map(|v| reg(&mut regs, *v)).collect(),
                out: reg(&mut regs, *out),
            },
            StaticLiteral::Intersect { inputs, out } => LStatic::Intersect {
                inputs: inputs.iter().map(|v| reg(&mut regs, *v)).collect(),
                out: reg(&mut regs, *out),
            },
            StaticLiteral::RelComplement {
                base,
                subtract,
                out,
            } => LStatic::RelComplement {
                base: reg(&mut regs, *base),
                subtract: subtract.iter().map(|v| reg(&mut regs, *v)).collect(),
                out: reg(&mut regs, *out),
            },
            StaticLiteral::Atemporal { negated, pattern } => LStatic::Atemporal {
                negated: *negated,
                pattern: lower_term(pattern, &mut vars),
                sig_warn: if *negated {
                    None
                } else {
                    atemporal_warning(pattern, facts, symbols)
                },
            },
            StaticLiteral::Compare { op, lhs, rhs } => {
                for v in lhs.variables().into_iter().chain(rhs.variables()) {
                    vars.intern(v);
                }
                LStatic::Compare {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                }
            }
        })
        .collect();

    let out_reg = reg(&mut regs, rule.out);
    (
        LoweredStatic {
            rule: rule.clone(),
            vars,
            body,
            head_fluent,
            head_value,
            out_reg,
            n_regs: regs.len(),
        },
        fused,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::description::EventDescription;

    fn static_rule(src: &str) -> StaticRule {
        let desc = EventDescription::parse(src).unwrap();
        let compiled = desc.compile().unwrap();
        compiled.statics[0].clone()
    }

    #[test]
    fn adjacent_unions_fuse() {
        let rule = static_rule(
            "holdsFor(g(V)=true, I) :- holdsFor(a(V)=true, I1), holdsFor(b(V)=true, I2), \
             holdsFor(c(V)=true, I3), union_all([I1, I2], U), union_all([U, I3], I).",
        );
        let (fused, n) = fuse_interval_ops(&rule.body, rule.out);
        assert_eq!(n, 1);
        let ops: Vec<_> = fused
            .iter()
            .filter(|l| matches!(l, StaticLiteral::Union { .. }))
            .collect();
        assert_eq!(ops.len(), 1);
        if let StaticLiteral::Union { inputs, out } = ops[0] {
            assert_eq!(inputs.len(), 3);
            assert_eq!(*out, rule.out);
        }
    }

    #[test]
    fn union_fuses_into_relative_complement_subtrahend() {
        let rule = static_rule(
            "holdsFor(g(V)=true, I) :- holdsFor(a(V)=true, I1), holdsFor(b(V)=true, I2), \
             holdsFor(c(V)=true, I3), union_all([I2, I3], U), \
             relative_complement_all(I1, [U], I).",
        );
        let (fused, n) = fuse_interval_ops(&rule.body, rule.out);
        assert_eq!(n, 1);
        assert!(fused.iter().any(
            |l| matches!(l, StaticLiteral::RelComplement { subtract, .. } if subtract.len() == 2)
        ));
    }

    #[test]
    fn head_output_is_never_fused_away() {
        let rule = static_rule(
            "holdsFor(g(V)=true, I) :- holdsFor(a(V)=true, I1), holdsFor(b(V)=true, I2), \
             union_all([I1, I2], I).",
        );
        let (fused, n) = fuse_interval_ops(&rule.body, rule.out);
        assert_eq!(n, 0);
        assert_eq!(fused.len(), rule.body.len());
    }

    #[test]
    fn intermediate_read_twice_is_kept() {
        let rule = static_rule(
            "holdsFor(g(V)=true, I) :- holdsFor(a(V)=true, I1), holdsFor(b(V)=true, I2), \
             union_all([I1, I2], U), intersect_all([U, U], I).",
        );
        let (_, n) = fuse_interval_ops(&rule.body, rule.out);
        assert_eq!(n, 0);
    }

    #[test]
    fn cross_kind_chains_do_not_fuse() {
        let rule = static_rule(
            "holdsFor(g(V)=true, I) :- holdsFor(a(V)=true, I1), holdsFor(b(V)=true, I2), \
             holdsFor(c(V)=true, I3), intersect_all([I1, I2], X), union_all([X, I3], I).",
        );
        let (_, n) = fuse_interval_ops(&rule.body, rule.out);
        assert_eq!(n, 0);
    }
}
