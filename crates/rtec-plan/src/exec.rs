//! The plan evaluator: executes lowered rules over one window.
//!
//! Every function here is a structural mirror of an interpreter path
//! (`rtec::eval::simple`, `rtec::eval::body`, `rtec::eval::statics`)
//! with `Bindings` replaced by slot-indexed [`Frame`]s and the per-rule
//! interval environment replaced by a dense register file. The mirrors
//! must stay *observationally identical* — same cache inserts, same
//! inertia updates, same warning texts in the same first-occurrence
//! order — which the differential tests pin down. Where this module
//! interleaves work the interpreter staged (matching candidates while
//! recursing instead of collecting clones first), the interleaving is
//! safe because matching never emits warnings and the fluent cache is
//! immutable while a rule body is being solved.

use crate::arith::compare_frame;
use crate::frame::{match_lterm, match_resolved, materialize, Frame};
use crate::ir::{LBody, LStatic, LoweredSimple, LoweredStatic};
use rtec::ast::{FluentKey, SimpleKind, StaticLiteral, StaticRule};
use rtec::background::FactStore;
use rtec::eval::arith::CompareOutcome;
use rtec::eval::cache::FluentCache;
use rtec::eval::events::EventIndex;
use rtec::eval::simple::{finalize_simple_fluent, InertiaState, PointCollector};
use rtec::eval::WarningSink;
use rtec::interval::{IntervalList, Timepoint};
use rtec::symbol::{Symbol, SymbolTable};
use rtec::term::{match_term, Bindings, GroundFvp, Term};
use std::collections::HashSet;

/// Read-only evaluation context shared by all rules of one window.
pub(crate) struct ExecCtx<'a> {
    pub(crate) symbols: &'a SymbolTable,
    pub(crate) eq: Symbol,
    pub(crate) facts: &'a FactStore,
    /// Fluent keys the description defines (simple or static).
    pub(crate) defined: &'a HashSet<FluentKey>,
    pub(crate) events: &'a EventIndex,
}

/// Evaluates all lowered rules of simple fluent `key` for one window —
/// the plan mirror of [`rtec::eval::simple::evaluate_simple_fluent`].
/// Interval assembly and inertia are shared verbatim through
/// [`finalize_simple_fluent`].
pub(crate) fn eval_simple_stratum(
    ctx: &ExecCtx<'_>,
    key: FluentKey,
    rules: &[LoweredSimple],
    cache: &mut FluentCache<'_>,
    inertia: &mut InertiaState,
    warnings: &mut WarningSink,
) {
    let mut collector = PointCollector::new();
    // Warnings raised inside the solution callback (which already borrows
    // the main sink) are buffered, matching the interpreter's ordering.
    let mut deferred_warnings: Vec<String> = Vec::new();

    for rule in rules {
        let mut frame = Frame::new(&rule.vars);
        for (t, ev) in ctx.events.all(rule.first_sig) {
            frame.clear();
            if !match_lterm(&rule.first_event, ev, &mut frame) {
                continue;
            }
            // The head's time variable is visible to comparisons.
            if frame.get_slot(rule.time_slot).is_none() {
                frame.bind_slot(rule.time_slot, Term::Int(*t));
            }
            let t = *t;
            solve_body(
                ctx,
                cache,
                &rule.body,
                0,
                t,
                &mut frame,
                warnings,
                &mut |fr: &mut Frame<'_>| {
                    let fluent = materialize(&rule.head_fluent, fr);
                    let value = materialize(&rule.head_value, fr);
                    if !fluent.is_ground() || !value.is_ground() {
                        if rule.rule.kind == SimpleKind::Terminated {
                            let pat = Term::Compound(ctx.eq, vec![fluent, value]);
                            collector.record_pattern_termination(pat, t);
                        } else {
                            deferred_warnings.push(format!(
                                "initiatedAt head '{}' not fully instantiated; \
                                 instance dropped",
                                rule.rule.fvp.display(ctx.symbols)
                            ));
                        }
                        return;
                    }
                    collector.record(rule.rule.kind, fluent, value, t);
                },
            );
        }
    }

    for w in deferred_warnings {
        warnings.push(w);
    }

    finalize_simple_fluent(key, ctx.eq, collector, cache, inertia);
}

/// Solves `body[idx..]` at time `t` under `frame` — the plan mirror of
/// [`rtec::eval::body::solve`]. The frame is restored on return.
#[allow(clippy::too_many_arguments)]
fn solve_body(
    ctx: &ExecCtx<'_>,
    cache: &FluentCache<'_>,
    body: &[LBody],
    idx: usize,
    t: Timepoint,
    frame: &mut Frame<'_>,
    warnings: &mut WarningSink,
    on_solution: &mut dyn FnMut(&mut Frame<'_>),
) {
    let Some(lit) = body.get(idx) else {
        on_solution(frame);
        return;
    };
    let mark = frame.mark();
    match lit {
        LBody::HappensAt {
            negated: false,
            event,
            sig,
        } => {
            let sig = match sig {
                Some(s) => Some(*s),
                None => materialize(event, frame).signature(),
            };
            if let Some(sig) = sig {
                for (_, ev) in ctx.events.at(sig, t) {
                    if match_lterm(event, ev, frame) {
                        solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                        frame.undo(mark);
                    }
                }
            }
        }
        LBody::HappensAt {
            negated: true,
            event,
            sig,
        } => {
            let exists = match sig {
                Some(s) => {
                    let evs = ctx.events.at(*s, t);
                    !evs.is_empty() && {
                        let pattern = materialize(event, frame);
                        evs.iter()
                            .any(|(_, ev)| match_term(&pattern, ev, &mut Bindings::new()))
                    }
                }
                None => {
                    let pattern = materialize(event, frame);
                    pattern.signature().is_some_and(|s| {
                        ctx.events
                            .at(s, t)
                            .iter()
                            .any(|(_, ev)| match_term(&pattern, ev, &mut Bindings::new()))
                    })
                }
            };
            if !exists {
                solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                frame.undo(mark);
            }
        }
        LBody::HoldsAt {
            negated,
            fluent,
            value,
        } => {
            let fluent = materialize(fluent, frame);
            let value = materialize(value, frame);
            let Some(key) = fluent.signature() else {
                warnings.push("holdsAt over a non-predicate fluent".to_string());
                return;
            };
            if !ctx.defined.contains(&key) && !cache.knows_key(key) {
                warnings.push(format!(
                    "undefined fluent '{}/{}' referenced in a rule body; it never holds",
                    ctx.symbols.name(key.0),
                    key.1
                ));
                // Negation-by-failure: an undefined fluent never holds.
                if *negated {
                    solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                    frame.undo(mark);
                }
                return;
            }
            if fluent.is_ground() && value.is_ground() {
                let g = GroundFvp { fluent, value };
                if cache.holds_at(&g, t) != *negated {
                    solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                    frame.undo(mark);
                }
                return;
            }
            let pattern = Term::Compound(ctx.eq, vec![fluent, value]);
            if *negated {
                let mut any = false;
                for inst in cache.instances(key) {
                    if !cache.holds_at(inst, t) {
                        continue;
                    }
                    let inst_term =
                        Term::Compound(ctx.eq, vec![inst.fluent.clone(), inst.value.clone()]);
                    if match_resolved(&pattern, &inst_term, frame) {
                        frame.undo(mark);
                        any = true;
                        break;
                    }
                }
                if !any {
                    solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                    frame.undo(mark);
                }
            } else {
                for inst in cache.instances(key) {
                    if !cache.holds_at(inst, t) {
                        continue;
                    }
                    let inst_term =
                        Term::Compound(ctx.eq, vec![inst.fluent.clone(), inst.value.clone()]);
                    if match_resolved(&pattern, &inst_term, frame) {
                        solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                        frame.undo(mark);
                    }
                }
            }
        }
        LBody::Atemporal {
            negated: false,
            pattern,
            sig_warn,
        } => {
            let applied = materialize(pattern, frame);
            if let Some(w) = sig_warn {
                warnings.push(w.clone());
            }
            for fact in ctx.facts.candidates(&applied) {
                if match_resolved(&applied, fact, frame) {
                    solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                    frame.undo(mark);
                }
            }
        }
        LBody::Atemporal {
            negated: true,
            pattern,
            ..
        } => {
            let applied = materialize(pattern, frame);
            let exists = ctx
                .facts
                .candidates(&applied)
                .iter()
                .any(|fact| match_term(&applied, fact, &mut Bindings::new()));
            if !exists {
                solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                frame.undo(mark);
            }
        }
        LBody::Compare { op, lhs, rhs } => match compare_frame(*op, lhs, rhs, frame, ctx.symbols) {
            CompareOutcome::Decided(true) | CompareOutcome::Bound => {
                solve_body(ctx, cache, body, idx + 1, t, frame, warnings, on_solution);
                frame.undo(mark);
            }
            CompareOutcome::Decided(false) => {}
            CompareOutcome::Failed(issue) => {
                warnings.push(format!("comparison skipped: {issue}"));
            }
        },
    }
}

/// Evaluates all lowered `holdsFor` rules of one static fluent — the
/// plan mirror of [`rtec::eval::statics::evaluate_static_fluent`].
pub(crate) fn eval_static_stratum(
    ctx: &ExecCtx<'_>,
    rules: &[LoweredStatic],
    cache: &mut FluentCache<'_>,
    warnings: &mut WarningSink,
) {
    for rule in rules {
        let candidates = seed_candidates(ctx, &rule.rule, cache, warnings);
        let mut results: Vec<(GroundFvp, IntervalList)> = Vec::new();
        let mut frame = Frame::new(&rule.vars);
        // Interval register file, reused across candidates: every literal
        // restores its output register to `None` after backtracking, so
        // the file is all-`None` between candidates.
        let mut env: Vec<Option<IntervalList>> = vec![None; rule.n_regs];
        for cand in &candidates {
            frame.clear();
            frame.load(cand);
            exec_static(
                ctx,
                rule,
                0,
                &mut frame,
                &mut env,
                cache,
                warnings,
                &mut results,
            );
        }
        for (g, list) in results {
            cache.insert(g, list);
        }
    }
}

/// Phase 1 of static evaluation, shared logic-for-logic with the
/// interpreter's `seed_candidates`: bindings obtained by matching every
/// `holdsFor` condition of the *original* rule against the cached ground
/// instances, deduplicated. Seeding works on names (`Bindings`); the
/// result is loaded into the frame per candidate.
fn seed_candidates(
    ctx: &ExecCtx<'_>,
    rule: &StaticRule,
    cache: &FluentCache<'_>,
    warnings: &mut WarningSink,
) -> Vec<Bindings> {
    let eq = ctx.eq;
    let mut out: Vec<Bindings> = Vec::new();
    let mut seen: HashSet<Vec<(Symbol, Term)>> = HashSet::new();
    let push = |b: Bindings, seen: &mut HashSet<Vec<(Symbol, Term)>>, out: &mut Vec<Bindings>| {
        let mut sig: Vec<(Symbol, Term)> = b.iter().map(|(v, t)| (v, t.clone())).collect();
        sig.sort_by_key(|(v, _)| *v);
        if seen.insert(sig) {
            out.push(b);
        }
    };

    for lit in &rule.body {
        let StaticLiteral::HoldsFor { fvp, .. } = lit else {
            continue;
        };
        let Some(k) = fvp.key() else { continue };
        if !ctx.defined.contains(&k) && !cache.knows_key(k) {
            warnings.push(format!(
                "undefined fluent '{}/{}' referenced in a holdsFor rule; it never holds",
                ctx.symbols.name(k.0),
                k.1
            ));
            continue;
        }
        if fvp.fluent.is_ground() && fvp.value.is_ground() {
            push(Bindings::new(), &mut seen, &mut out);
            continue;
        }
        let pattern = Term::Compound(eq, vec![fvp.fluent.clone(), fvp.value.clone()]);
        for inst in cache.instances(k) {
            let inst_term = Term::Compound(eq, vec![inst.fluent.clone(), inst.value.clone()]);
            let mut b = Bindings::new();
            if match_term(&pattern, &inst_term, &mut b) {
                push(b, &mut seen, &mut out);
            }
        }
    }
    out
}

/// Phase 2: left-to-right evaluation with backtracking — the plan mirror
/// of the interpreter's `eval_literals`, with the name-keyed interval
/// environment replaced by the register file.
#[allow(clippy::too_many_arguments)]
fn exec_static(
    ctx: &ExecCtx<'_>,
    rule: &LoweredStatic,
    idx: usize,
    frame: &mut Frame<'_>,
    env: &mut Vec<Option<IntervalList>>,
    cache: &FluentCache<'_>,
    warnings: &mut WarningSink,
    results: &mut Vec<(GroundFvp, IntervalList)>,
) {
    let Some(lit) = rule.body.get(idx) else {
        // All conditions satisfied: emit the head instance.
        let fluent = materialize(&rule.head_fluent, frame);
        let value = materialize(&rule.head_value, frame);
        if !fluent.is_ground() || !value.is_ground() {
            warnings.push(format!(
                "holdsFor head '{}' not fully instantiated; instance dropped",
                rule.rule.fvp.display(ctx.symbols)
            ));
            return;
        }
        let Some(list) = env[rule.out_reg as usize].as_ref() else {
            return; // validation guarantees presence; defensive
        };
        if !list.is_empty() {
            results.push((GroundFvp { fluent, value }, list.clone()));
        }
        return;
    };

    match lit {
        LStatic::HoldsFor { fluent, value, out } => {
            let fluent = materialize(fluent, frame);
            let value = materialize(value, frame);
            if fluent.is_ground() && value.is_ground() {
                let g = GroundFvp { fluent, value };
                let list = cache.get(&g).cloned().unwrap_or_default();
                env[*out as usize] = Some(list);
                exec_static(ctx, rule, idx + 1, frame, env, cache, warnings, results);
                env[*out as usize] = None;
            } else {
                let Some(k) = fluent.signature() else { return };
                let pattern = Term::Compound(ctx.eq, vec![fluent, value]);
                let mark = frame.mark();
                for inst in cache.instances(k) {
                    let inst_term =
                        Term::Compound(ctx.eq, vec![inst.fluent.clone(), inst.value.clone()]);
                    if match_resolved(&pattern, &inst_term, frame) {
                        let list = cache.get(inst).cloned().unwrap_or_default();
                        env[*out as usize] = Some(list);
                        exec_static(ctx, rule, idx + 1, frame, env, cache, warnings, results);
                        env[*out as usize] = None;
                        frame.undo(mark);
                    }
                }
            }
        }
        LStatic::Union { inputs, out } => {
            let u = {
                let mut lists: Vec<&IntervalList> = Vec::with_capacity(inputs.len());
                for r in inputs {
                    match env[*r as usize].as_ref() {
                        Some(l) => lists.push(l),
                        None => return, // undefined interval register; validation rejects this
                    }
                }
                IntervalList::union_all(&lists)
            };
            env[*out as usize] = Some(u);
            exec_static(ctx, rule, idx + 1, frame, env, cache, warnings, results);
            env[*out as usize] = None;
        }
        LStatic::Intersect { inputs, out } => {
            let i = {
                let mut lists: Vec<&IntervalList> = Vec::with_capacity(inputs.len());
                for r in inputs {
                    match env[*r as usize].as_ref() {
                        Some(l) => lists.push(l),
                        None => return,
                    }
                }
                IntervalList::intersect_all(&lists)
            };
            env[*out as usize] = Some(i);
            exec_static(ctx, rule, idx + 1, frame, env, cache, warnings, results);
            env[*out as usize] = None;
        }
        LStatic::RelComplement {
            base,
            subtract,
            out,
        } => {
            let rc = {
                let Some(base_list) = env[*base as usize].as_ref() else {
                    return;
                };
                let mut lists: Vec<&IntervalList> = Vec::with_capacity(subtract.len());
                for r in subtract {
                    match env[*r as usize].as_ref() {
                        Some(l) => lists.push(l),
                        None => return,
                    }
                }
                base_list.relative_complement_all(&lists)
            };
            env[*out as usize] = Some(rc);
            exec_static(ctx, rule, idx + 1, frame, env, cache, warnings, results);
            env[*out as usize] = None;
        }
        LStatic::Atemporal {
            negated: false,
            pattern,
            sig_warn,
        } => {
            let applied = materialize(pattern, frame);
            if let Some(w) = sig_warn {
                warnings.push(w.clone());
            }
            let mark = frame.mark();
            for fact in ctx.facts.candidates(&applied) {
                if match_resolved(&applied, fact, frame) {
                    exec_static(ctx, rule, idx + 1, frame, env, cache, warnings, results);
                    frame.undo(mark);
                }
            }
        }
        LStatic::Atemporal {
            negated: true,
            pattern,
            ..
        } => {
            let applied = materialize(pattern, frame);
            let exists = ctx
                .facts
                .candidates(&applied)
                .iter()
                .any(|fact| match_term(&applied, fact, &mut Bindings::new()));
            if !exists {
                exec_static(ctx, rule, idx + 1, frame, env, cache, warnings, results);
            }
        }
        LStatic::Compare { op, lhs, rhs } => {
            let mark = frame.mark();
            match compare_frame(*op, lhs, rhs, frame, ctx.symbols) {
                CompareOutcome::Decided(true) | CompareOutcome::Bound => {
                    exec_static(ctx, rule, idx + 1, frame, env, cache, warnings, results);
                    frame.undo(mark);
                }
                CompareOutcome::Decided(false) => {}
                CompareOutcome::Failed(issue) => {
                    warnings.push(format!("comparison skipped: {issue}"));
                }
            }
        }
    }
}
