//! Analysis-driven plan rewriting.
//!
//! [`Plan::optimize`] consumes emptiness/reachability proofs produced by
//! `rtec-analysis` (this crate deliberately knows nothing about how they
//! are derived) and rewrites the plan under the evaluator's
//! observational-identity contract: the optimized plan must produce
//! byte-identical intervals, warnings (content *and* order), inertia
//! carries and checkpoints for every input stream the proofs' contract
//! admits. Three rewrites:
//!
//! 1. **Rule deletion** — a rule whose body is statically unsatisfiable
//!    never contributes initiation/termination points or intervals, but
//!    it may still *warn* while failing (missing background facts,
//!    undefined fluent references, unevaluable comparisons). A rule is
//!    deleted only when its body is provably warning-free, so the empty
//!    rule's only observable effect is "nothing" (`deletable_simple`,
//!    `deletable_static`). Rules whose trigger event can never occur
//!    (closed input schema) never reach their body at all and are
//!    deleted unconditionally.
//! 2. **Constant interval-algebra folding** — a ground `holdsFor` read
//!    of a fluent that provably never holds always yields the empty
//!    list; empty operands are dropped from `union_all` inputs and
//!    `relative_complement_all` subtrahends, and reads left without a
//!    consumer are removed.
//! 3. **Trigger pre-filters** — each simple stratum records the
//!    deduplicated first-`happensAt` signatures of its remaining rules;
//!    windows containing none of them skip the per-rule scan (interval
//!    assembly and inertia still run — see `Plan::live_simple`).
//!
//! The proofs carry *stream-independent* evidence only: they are sound
//! for any stream that conforms to the description's declared input
//! schema and does not inject intervals for rule-defined fluents via
//! `Engine::add_input_intervals`. The randomized differential proptest
//! and the maritime-gold differential in `rtec-analysis` enforce the
//! contract.

use crate::ir::{LBody, LStatic, LTerm, LoweredSimple, LoweredStatic};
use crate::Plan;
use rtec::ast::{FluentKey, StaticLiteral};
use rtec::symbol::Symbol;
use rtec::term::Term;
use std::collections::BTreeSet;
use std::collections::HashSet;

/// Stream-independent emptiness/reachability evidence consumed by
/// [`Plan::optimize`]. Produced by `rtec-analysis`; the field contracts
/// below are what the optimizer relies on for soundness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OptimizeProofs {
    /// Fluents that can never hold on any conforming stream: every
    /// defining rule is strictly unsatisfiable, or (under a closed
    /// input schema) the fluent is neither defined nor declared as an
    /// input. Used for constant folding of ground `holdsFor` reads.
    pub never_holds: BTreeSet<FluentKey>,
    /// Clause indices of rules whose body is unsatisfiable on every
    /// conforming stream — contradictory comparisons, disjoint value
    /// sets, or (for static rules) a candidate seed that provably
    /// yields zero candidates. For static rules the evidence must be of
    /// the *pruning* kind (the rule produces no output rows), never
    /// merely "the output interval list is empty": an empty emission
    /// still runs head instantiation and can warn.
    pub unsat_clauses: BTreeSet<usize>,
    /// Clause indices of simple rules whose leading `happensAt`
    /// signature is not a declared input event and not derivable from
    /// any rule (closed input schema only). Such rules never match a
    /// trigger, so their bodies are unreachable and deletion needs no
    /// warning-free check.
    pub unreachable_clauses: BTreeSet<usize>,
}

impl OptimizeProofs {
    /// Whether the proofs license any rewrite at all.
    pub fn is_empty(&self) -> bool {
        self.never_holds.is_empty()
            && self.unsat_clauses.is_empty()
            && self.unreachable_clauses.is_empty()
    }
}

/// Whether a comparison operand is guaranteed to evaluate without a
/// "comparison skipped" warning: a numeric literal, or the rule's time
/// variable (always bound to the candidate timepoint).
fn operand_safe(t: &Term, time_var: Option<Symbol>) -> bool {
    match t {
        Term::Int(_) | Term::Float(_) => true,
        Term::Var(v) => time_var == Some(*v),
        _ => false,
    }
}

/// Whether evaluating this simple rule's body can never emit a warning,
/// no matter how far evaluation gets before failing. Deleting a rule
/// suppresses its warnings, so an unsatisfiable rule may only be
/// deleted when there are provably none to suppress.
fn body_warning_free(rule: &LoweredSimple, defined: &HashSet<FluentKey>) -> bool {
    rule.body.iter().all(|lit| match lit {
        // Event scans never warn.
        LBody::HappensAt { .. } => true,
        // `holdsAt` warns on a non-predicate fluent and on fluents the
        // evaluator has never heard of; a statically-known signature
        // over a defined fluent triggers neither. (A merely *declared*
        // input fluent is not enough: the runtime check consults the
        // per-window cache, which is stream-dependent.)
        LBody::HoldsAt { fluent, .. } => match fluent {
            LTerm::Atom(s) => defined.contains(&(*s, 0)),
            LTerm::Compound(s, args) => defined.contains(&(*s, args.len())),
            _ => false,
        },
        // A positive atemporal over a signature with no background
        // facts warns every time it is reached.
        LBody::Atemporal {
            negated, sig_warn, ..
        } => *negated || sig_warn.is_none(),
        // Comparisons warn whenever an operand fails to evaluate.
        LBody::Compare { lhs, rhs, .. } => {
            let tv = rule.vars.syms.get(rule.time_slot as usize).copied();
            operand_safe(lhs, tv) && operand_safe(rhs, tv)
        }
    })
}

/// Whether a statically-unsatisfiable simple rule may be deleted.
fn deletable_simple(
    rule: &LoweredSimple,
    proofs: &OptimizeProofs,
    defined: &HashSet<FluentKey>,
) -> bool {
    if proofs.unreachable_clauses.contains(&rule.rule.clause) {
        // The trigger never matches: the body (and its warnings) is
        // unreachable, so no warning-free check is needed.
        return true;
    }
    proofs.unsat_clauses.contains(&rule.rule.clause) && body_warning_free(rule, defined)
}

/// Whether a statically-unsatisfiable `holdsFor` rule may be deleted.
/// Static rules additionally warn from candidate *seeding* (which
/// matches the original body's `holdsFor` patterns against the cache
/// before any body element runs), so every referenced fluent must be
/// defined by some rule.
fn deletable_static(
    rule: &LoweredStatic,
    proofs: &OptimizeProofs,
    defined: &HashSet<FluentKey>,
) -> bool {
    if !proofs.unsat_clauses.contains(&rule.rule.clause) {
        return false;
    }
    let seeds_clean = rule.rule.body.iter().all(|lit| match lit {
        StaticLiteral::HoldsFor { fvp, .. } => fvp.key().is_some_and(|k| defined.contains(&k)),
        _ => true,
    });
    let body_clean = rule.body.iter().all(|lit| match lit {
        LStatic::HoldsFor { .. }
        | LStatic::Union { .. }
        | LStatic::Intersect { .. }
        | LStatic::RelComplement { .. } => true,
        LStatic::Atemporal {
            negated, sig_warn, ..
        } => *negated || sig_warn.is_none(),
        LStatic::Compare { lhs, rhs, .. } => operand_safe(lhs, None) && operand_safe(rhs, None),
    });
    seeds_clean && body_clean
}

/// Whether a lowered term is fully ground (no slots anywhere).
fn lterm_ground(t: &LTerm) -> bool {
    match t {
        LTerm::Slot(_) => false,
        LTerm::Atom(_) | LTerm::Int(_) | LTerm::Float(_) => true,
        LTerm::Compound(_, args) | LTerm::List(args) => args.iter().all(lterm_ground),
    }
}

/// The fluent key of a statically-known fluent pattern.
fn lterm_key(t: &LTerm) -> Option<FluentKey> {
    match t {
        LTerm::Atom(s) => Some((*s, 0)),
        LTerm::Compound(s, args) => Some((*s, args.len())),
        _ => None,
    }
}

/// Folds provably-empty interval registers out of one static rule's
/// body. Returns the number of operands/reads removed.
///
/// Only *ground* `holdsFor` reads of defined never-holding fluents seed
/// the empty set: a ground read always writes its register (possibly
/// with the empty list) and never prunes the candidate, so removing it
/// from a consumer's operand list — or removing the read itself once no
/// consumer is left — cannot change control flow. Emptiness then
/// propagates through the algebra (a union of empties is empty, an
/// intersection with an empty is empty, a complement of an empty base
/// is empty) without rewriting those downstream operators: they stay in
/// place and compute their (empty) result exactly as before.
fn fold_static(
    rule: &mut LoweredStatic,
    proofs: &OptimizeProofs,
    defined: &HashSet<FluentKey>,
) -> usize {
    let mut empty: HashSet<u16> = HashSet::new();
    for lit in &rule.body {
        match lit {
            LStatic::HoldsFor { fluent, value, out } => {
                if lterm_ground(fluent)
                    && lterm_ground(value)
                    && lterm_key(fluent)
                        .is_some_and(|k| defined.contains(&k) && proofs.never_holds.contains(&k))
                {
                    empty.insert(*out);
                }
            }
            LStatic::Union { inputs, out } => {
                if !inputs.is_empty() && inputs.iter().all(|r| empty.contains(r)) {
                    empty.insert(*out);
                }
            }
            LStatic::Intersect { inputs, out } => {
                if inputs.iter().any(|r| empty.contains(r)) {
                    empty.insert(*out);
                }
            }
            LStatic::RelComplement { base, out, .. } => {
                if empty.contains(base) {
                    empty.insert(*out);
                }
            }
            LStatic::Atemporal { .. } | LStatic::Compare { .. } => {}
        }
    }
    if empty.is_empty() {
        return 0;
    }

    // Drop empty operands where the operator ignores them. Keep at
    // least one union input so the operator's shape stays within what
    // lowering can produce.
    let mut folded = 0;
    for lit in &mut rule.body {
        match lit {
            LStatic::Union { inputs, .. } => {
                while inputs.len() > 1 {
                    let Some(pos) = inputs.iter().position(|r| empty.contains(r)) else {
                        break;
                    };
                    inputs.remove(pos);
                    folded += 1;
                }
            }
            LStatic::RelComplement { subtract, .. } => {
                let before = subtract.len();
                subtract.retain(|r| !empty.contains(r));
                folded += before - subtract.len();
            }
            _ => {}
        }
    }

    // Remove ground empty reads nobody consumes any more. Such a read
    // has no observable effect: it cannot warn, cannot prune, and its
    // register is dead.
    let mut read: HashSet<u16> = HashSet::new();
    read.insert(rule.out_reg);
    for lit in &rule.body {
        match lit {
            LStatic::Union { inputs, .. } | LStatic::Intersect { inputs, .. } => {
                read.extend(inputs.iter().copied());
            }
            LStatic::RelComplement { base, subtract, .. } => {
                read.insert(*base);
                read.extend(subtract.iter().copied());
            }
            LStatic::HoldsFor { .. } | LStatic::Atemporal { .. } | LStatic::Compare { .. } => {}
        }
    }
    let before = rule.body.len();
    rule.body.retain(|lit| match lit {
        LStatic::HoldsFor { out, .. } => !empty.contains(out) || read.contains(out),
        _ => true,
    });
    folded + (before - rule.body.len())
}

impl Plan {
    /// Rewrites the plan under `proofs`, preserving observational
    /// identity (see the module docs for the admitted rewrites and the
    /// stream contract). The returned plan reports
    /// [`label`](rtec::engine::WindowEvaluator::label) `"optimized"`
    /// and accounts for its rewrites in [`Plan::stats`].
    pub fn optimize(mut self, proofs: &OptimizeProofs) -> Plan {
        let defined = self.defined.clone();
        for stratum in &mut self.strata {
            let before = stratum.simple.len();
            stratum
                .simple
                .retain(|r| !deletable_simple(r, proofs, &defined));
            self.stats.deleted_rules += before - stratum.simple.len();
            self.stats.simple_rules -= before - stratum.simple.len();

            let before = stratum.statics.len();
            stratum
                .statics
                .retain(|r| !deletable_static(r, proofs, &defined));
            self.stats.deleted_rules += before - stratum.statics.len();
            self.stats.static_rules -= before - stratum.statics.len();

            for rule in &mut stratum.statics {
                self.stats.folded_inputs += fold_static(rule, proofs, &defined);
            }

            if stratum.has_simple {
                let mut sigs: Vec<(Symbol, usize)> = Vec::new();
                for rule in &stratum.simple {
                    if !sigs.contains(&rule.first_sig) {
                        sigs.push(rule.first_sig);
                    }
                }
                stratum.prefilter = Some(sigs);
                self.stats.prefiltered_strata += 1;
            }
        }
        self.label = "optimized";
        self
    }
}
