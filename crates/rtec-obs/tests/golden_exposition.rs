//! Golden test: the Prometheus text exposition of a small registry,
//! byte for byte. Any format drift (ordering, label rendering, bucket
//! bounds) must be a conscious change to this file.

use rtec_obs::{expo, MetricsRegistry};

#[test]
fn exposition_matches_golden_text() {
    let reg = MetricsRegistry::new();
    reg.counter(
        "rtec_demo_events_total",
        "Events ingested.",
        &[("dir", "in")],
    )
    .add(7);
    reg.counter(
        "rtec_demo_events_total",
        "Events ingested.",
        &[("dir", "out")],
    )
    .add(2);
    reg.gauge("rtec_demo_sessions_open", "Open sessions.", &[])
        .set(3);
    let h = reg.histogram("rtec_demo_tick_us", "Tick latency.", &[]);
    h.observe(0); // bucket 0: < 1us
    h.observe(3); // bucket 2: [2, 4)
    h.observe(3);
    h.observe(5_000_000); // open-ended last bucket

    let text = reg.render_prometheus();
    let golden = "\
# HELP rtec_demo_events_total Events ingested.
# TYPE rtec_demo_events_total counter
rtec_demo_events_total{dir=\"in\"} 7
rtec_demo_events_total{dir=\"out\"} 2
# HELP rtec_demo_sessions_open Open sessions.
# TYPE rtec_demo_sessions_open gauge
rtec_demo_sessions_open 3
# HELP rtec_demo_tick_us Tick latency.
# TYPE rtec_demo_tick_us histogram
rtec_demo_tick_us_bucket{le=\"1\"} 1
rtec_demo_tick_us_bucket{le=\"2\"} 1
rtec_demo_tick_us_bucket{le=\"4\"} 3
rtec_demo_tick_us_bucket{le=\"8\"} 3
rtec_demo_tick_us_bucket{le=\"16\"} 3
rtec_demo_tick_us_bucket{le=\"32\"} 3
rtec_demo_tick_us_bucket{le=\"64\"} 3
rtec_demo_tick_us_bucket{le=\"128\"} 3
rtec_demo_tick_us_bucket{le=\"256\"} 3
rtec_demo_tick_us_bucket{le=\"512\"} 3
rtec_demo_tick_us_bucket{le=\"1024\"} 3
rtec_demo_tick_us_bucket{le=\"2048\"} 3
rtec_demo_tick_us_bucket{le=\"4096\"} 3
rtec_demo_tick_us_bucket{le=\"8192\"} 3
rtec_demo_tick_us_bucket{le=\"16384\"} 3
rtec_demo_tick_us_bucket{le=\"32768\"} 3
rtec_demo_tick_us_bucket{le=\"65536\"} 3
rtec_demo_tick_us_bucket{le=\"131072\"} 3
rtec_demo_tick_us_bucket{le=\"262144\"} 3
rtec_demo_tick_us_bucket{le=\"524288\"} 3
rtec_demo_tick_us_bucket{le=\"1048576\"} 3
rtec_demo_tick_us_bucket{le=\"2097152\"} 3
rtec_demo_tick_us_bucket{le=\"4194304\"} 3
rtec_demo_tick_us_bucket{le=\"+Inf\"} 4
rtec_demo_tick_us_sum 5000006
rtec_demo_tick_us_count 4
";
    assert_eq!(text, golden);
    expo::validate(&text).expect("golden text is valid exposition");
}
