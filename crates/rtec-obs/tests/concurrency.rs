//! Eight threads hammer one counter and one histogram through shared
//! `Arc` handles; nothing may be lost and the registry must render a
//! valid exposition while under fire.

use rtec_obs::{expo, MetricsRegistry};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS: u64 = 50_000;

#[test]
fn concurrent_recording_loses_nothing() {
    let registry = Arc::new(MetricsRegistry::new());
    let counter = registry.counter("hammer_total", "Concurrency test counter.", &[]);
    let histogram = registry.histogram("hammer_us", "Concurrency test histogram.", &[]);
    let gauge = registry.gauge("hammer_depth", "Concurrency test gauge.", &[]);

    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || {
            // Each thread re-derives its handles from the registry, the
            // way independent subsystems would.
            let counter = registry.counter("hammer_total", "", &[]);
            let histogram = registry.histogram("hammer_us", "", &[]);
            let gauge = registry.gauge("hammer_depth", "", &[]);
            for i in 0..OPS {
                counter.inc();
                histogram.observe(i % 4096);
                gauge.set_max((thread as i64 + 1) * 100);
            }
            // Interleave scrapes with the writes.
            if thread == 0 {
                for _ in 0..16 {
                    let text = registry.render_prometheus();
                    expo::validate(&text).expect("valid mid-flight exposition");
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("no panics");
    }

    assert_eq!(counter.get(), THREADS as u64 * OPS);
    assert_eq!(histogram.count(), THREADS as u64 * OPS);
    let expected_sum: u64 = (0..OPS).map(|i| i % 4096).sum::<u64>() * THREADS as u64;
    assert_eq!(histogram.snapshot().sum, expected_sum);
    assert_eq!(gauge.get(), THREADS as i64 * 100);

    let text = registry.render_prometheus();
    let samples = expo::validate(&text).expect("valid final exposition");
    assert!(samples > 0);
    assert!(text.contains(&format!("hammer_total {}", THREADS as u64 * OPS)));
}
