//! Leveled structured events: JSON lines to a pluggable sink plus an
//! in-memory ring buffer.
//!
//! Every event is one JSON object per line —
//! `{"ts_ms":…,"level":"info","event":"service.listening","span":…,…}` —
//! so diagnostics that used to be bare `eprintln!` text are machine
//! parseable. The `RTEC_LOG` environment variable (`error`, `warn`,
//! `info`, `debug`; default `info`) filters what is emitted; `error`
//! events always pass.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the operator must look at.
    Error = 0,
    /// Something suspicious that does not stop the work.
    Warn = 1,
    /// Normal operational milestones.
    Info = 2,
    /// High-volume diagnostics.
    Debug = 3,
}

impl Level {
    /// The lowercase name used on the wire and in `RTEC_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses an `RTEC_LOG` value (unknown values mean `Info`; `off`
    /// silences everything below `Error`).
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "off" | "0" => Level::Error,
            "warn" | "warning" | "1" => Level::Warn,
            "debug" | "trace" | "3" => Level::Debug,
            _ => Level::Info,
        }
    }
}

/// Sentinel meaning "not initialised from the environment yet".
const LEVEL_UNSET: u8 = u8::MAX;
static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The current filter level (lazily read from `RTEC_LOG`).
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let level = std::env::var("RTEC_LOG")
                .map(|v| Level::parse(&v))
                .unwrap_or(Level::Info);
            MAX_LEVEL.store(level as u8, Ordering::Relaxed);
            level
        }
        0 => Level::Error,
        1 => Level::Warn,
        3 => Level::Debug,
        _ => Level::Info,
    }
}

/// Overrides the filter level (tests, CLI flags).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// A typed field value carried by an event.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// A string (JSON-escaped on output).
    Str(String),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (rendered with up to 3 decimals).
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::Int(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::UInt(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::UInt(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::Float(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_value(v: &FieldValue) -> String {
    match v {
        FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
        FieldValue::Int(i) => i.to_string(),
        FieldValue::UInt(u) => u.to_string(),
        FieldValue::Float(f) if f.is_finite() => format!("{f:.3}"),
        FieldValue::Float(_) => "null".to_string(),
        FieldValue::Bool(b) => b.to_string(),
    }
}

/// Where emitted event lines go.
pub trait Sink: Send + Sync {
    /// Delivers one rendered JSON line (no trailing newline).
    fn emit(&self, line: &str);
}

struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, line: &str) {
        eprintln!("{line}");
    }
}

#[allow(clippy::type_complexity)]
fn sink_slot() -> &'static RwLock<Option<Box<dyn Sink>>> {
    static SINK: std::sync::OnceLock<RwLock<Option<Box<dyn Sink>>>> = std::sync::OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

/// Replaces the output sink (`None` restores the stderr default). The
/// ring buffer keeps recording regardless of the sink.
pub fn set_sink(sink: Option<Box<dyn Sink>>) {
    *sink_slot().write().unwrap_or_else(|e| e.into_inner()) = sink;
}

/// Ring buffer capacity.
pub const RING_CAPACITY: usize = 256;

fn ring() -> &'static Mutex<VecDeque<String>> {
    static RING: std::sync::OnceLock<Mutex<VecDeque<String>>> = std::sync::OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

/// The most recent `n` emitted event lines, oldest first.
pub fn recent_events(n: usize) -> Vec<String> {
    let ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.iter().rev().take(n).rev().cloned().collect()
}

/// Emits a structured event if `level` passes the `RTEC_LOG` filter.
///
/// `name` identifies the event (dotted, e.g. `service.listening`);
/// `fields` are extra key/value pairs. The current span path, if any,
/// is attached automatically.
pub fn event(level: Level, name: &str, fields: &[(&str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = format!(
        "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"event\":\"{}\"",
        level.as_str(),
        json_escape(name)
    );
    if let Some(path) = crate::span::current_path() {
        line.push_str(&format!(",\"span\":\"{}\"", json_escape(&path)));
    }
    for (key, value) in fields {
        line.push_str(&format!(
            ",\"{}\":{}",
            json_escape(key),
            render_value(value)
        ));
    }
    line.push('}');
    {
        let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(line.clone());
    }
    let slot = sink_slot().read().unwrap_or_else(|e| e.into_inner());
    match slot.as_ref() {
        Some(sink) => sink.emit(&line),
        None => StderrSink.emit(&line),
    }
}

/// Emits an `error` event.
pub fn error(name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Error, name, fields);
}

/// Emits a `warn` event.
pub fn warn(name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Warn, name, fields);
}

/// Emits an `info` event.
pub fn info(name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Info, name, fields);
}

/// Emits a `debug` event.
pub fn debug(name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Debug, name, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::{channel, Sender};

    struct Capture(Mutex<Sender<String>>);

    impl Sink for Capture {
        fn emit(&self, line: &str) {
            let _ = self
                .0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .send(line.to_string());
        }
    }

    #[test]
    fn events_render_as_json_lines_and_honour_levels() {
        let (tx, rx) = channel();
        set_sink(Some(Box::new(Capture(Mutex::new(tx)))));
        set_max_level(Level::Warn);
        event(
            Level::Warn,
            "test.warn",
            &[
                ("text", "a \"quoted\"\nline".into()),
                ("n", 42u64.into()),
                ("ratio", 0.5f64.into()),
                ("flag", true.into()),
            ],
        );
        event(Level::Info, "test.filtered", &[]);
        set_max_level(Level::Info);
        set_sink(None);

        let line = rx.try_recv().expect("warn event emitted");
        assert!(line.contains("\"level\":\"warn\""), "{line}");
        assert!(line.contains("\"event\":\"test.warn\""), "{line}");
        assert!(
            line.contains("\"text\":\"a \\\"quoted\\\"\\nline\""),
            "{line}"
        );
        assert!(line.contains("\"n\":42"), "{line}");
        assert!(line.contains("\"ratio\":0.500"), "{line}");
        assert!(line.contains("\"flag\":true"), "{line}");
        assert!(rx.try_recv().is_err(), "info event must be filtered out");
        assert!(recent_events(4).iter().any(|l| l.contains("test.warn")));
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("ERROR"), Level::Error);
        assert_eq!(Level::parse("warn"), Level::Warn);
        assert_eq!(Level::parse("debug"), Level::Debug);
        assert_eq!(Level::parse("gibberish"), Level::Info);
        assert!(Level::Error < Level::Debug);
    }
}
