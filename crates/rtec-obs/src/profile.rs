//! Per-rule evaluation profiling: cost attribution, aggregation and
//! bounded-cardinality exposition.
//!
//! The engine (and the `rtec-plan` executor) attribute self wall-time,
//! invocation counts and interval-algebra op counts to each fluent
//! symbol as they evaluate a window, flushing one [`WindowProfile`] per
//! window into a session-lifetime [`ProfileAggregate`]. This module is
//! deliberately string-keyed and engine-agnostic so the same shapes
//! serve the engine, the service's `profile` wire command, the CLI's
//! `--profile` table and the Prometheus scrape.
//!
//! Exposition is *bounded*: [`bounded_samples`] keeps the top-N rules
//! by self-time and rolls everything else into a single `other` sample,
//! so the scrape's label cardinality is capped by N regardless of how
//! many rules a description defines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default top-N cut for bounded exposition and rendered tables.
pub const DEFAULT_TOP_N: usize = 8;

/// What kind of rule a profile entry charges time to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleKind {
    /// A simple fluent (initiatedAt/terminatedAt rules plus inertia).
    Simple,
    /// A statically determined fluent (holdsFor rules).
    Static,
}

impl RuleKind {
    /// Canonical lower-case spelling (used as a metric label value).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleKind::Simple => "simple",
            RuleKind::Static => "static",
        }
    }
}

/// Accumulated evaluation cost charged to one rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleCost {
    /// Number of times the rule's evaluation ran (once per window it
    /// participated in).
    pub calls: u64,
    /// Self wall-time in nanoseconds (time inside the rule's own
    /// evaluation, excluding other strata).
    pub self_ns: u64,
    /// Interval-algebra primitive operations (union / intersect /
    /// complement) executed while evaluating the rule.
    pub interval_ops: u64,
}

impl RuleCost {
    /// Self wall-time in whole microseconds.
    pub fn self_us(&self) -> u64 {
        self.self_ns / 1_000
    }

    /// Adds another cost into this one.
    pub fn add(&mut self, other: &RuleCost) {
        self.calls += other.calls;
        self.self_ns += other.self_ns;
        self.interval_ops += other.interval_ops;
    }

    /// The cost left after subtracting `other` (saturating; used to
    /// derive per-tick deltas from two lifetime aggregates).
    pub fn saturating_sub(&self, other: &RuleCost) -> RuleCost {
        RuleCost {
            calls: self.calls.saturating_sub(other.calls),
            self_ns: self.self_ns.saturating_sub(other.self_ns),
            interval_ops: self.interval_ops.saturating_sub(other.interval_ops),
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.calls == 0 && self.self_ns == 0 && self.interval_ops == 0
    }
}

/// One attributed cost line: a rule name (`fluent/arity`), its kind and
/// its cost.
#[derive(Clone, Debug)]
pub struct ProfileEntry {
    /// Rule name, conventionally `functor/arity` of the defined fluent.
    pub name: String,
    /// Simple or statically determined.
    pub kind: RuleKind,
    /// The attributed cost.
    pub cost: RuleCost,
}

/// Per-rule costs of a single evaluated window, in evaluation
/// (stratification) order.
#[derive(Clone, Debug, Default)]
pub struct WindowProfile {
    /// One entry per rule evaluated in this window.
    pub entries: Vec<ProfileEntry>,
    /// Total wall time of the window evaluation, nanoseconds.
    pub total_ns: u64,
}

impl WindowProfile {
    /// An empty window profile.
    pub fn new() -> WindowProfile {
        WindowProfile::default()
    }

    /// Records one rule's cost for this window.
    pub fn record(&mut self, name: String, kind: RuleKind, self_ns: u64, interval_ops: u64) {
        self.entries.push(ProfileEntry {
            name,
            kind,
            cost: RuleCost {
                calls: 1,
                self_ns,
                interval_ops,
            },
        });
    }
}

/// Session-lifetime per-rule cost totals.
#[derive(Clone, Debug, Default)]
pub struct ProfileAggregate {
    entries: BTreeMap<(String, RuleKind), RuleCost>,
    /// Number of windows absorbed.
    pub windows: u64,
}

impl ProfileAggregate {
    /// An empty aggregate.
    pub fn new() -> ProfileAggregate {
        ProfileAggregate::default()
    }

    /// Folds one window's profile into the totals.
    pub fn absorb_window(&mut self, window: &WindowProfile) {
        self.windows += 1;
        for e in &window.entries {
            self.entries
                .entry((e.name.clone(), e.kind))
                .or_default()
                .add(&e.cost);
        }
    }

    /// Merges another aggregate into this one (e.g. combining per-shard
    /// engines of one session). Windows add; per-rule costs add.
    pub fn merge(&mut self, other: &ProfileAggregate) {
        self.windows += other.windows;
        for ((name, kind), cost) in &other.entries {
            self.entries
                .entry((name.clone(), *kind))
                .or_default()
                .add(cost);
        }
    }

    /// The per-tick (or per-anything) delta `self - earlier`, keeping
    /// only rules whose cost actually advanced.
    pub fn delta_since(&self, earlier: &ProfileAggregate) -> Vec<ProfileEntry> {
        let mut out = Vec::new();
        for ((name, kind), cost) in &self.entries {
            let before = earlier
                .entries
                .get(&(name.clone(), *kind))
                .copied()
                .unwrap_or_default();
            let d = cost.saturating_sub(&before);
            if !d.is_zero() {
                out.push(ProfileEntry {
                    name: name.clone(),
                    kind: *kind,
                    cost: d,
                });
            }
        }
        sort_by_cost(&mut out);
        out
    }

    /// Number of distinct rules attributed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been attributed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of every rule's cost.
    pub fn total(&self) -> RuleCost {
        let mut t = RuleCost::default();
        for cost in self.entries.values() {
            t.add(cost);
        }
        t
    }

    /// Every entry, sorted by self-time descending (name ascending on
    /// ties, so the order is deterministic).
    pub fn sorted(&self) -> Vec<ProfileEntry> {
        let mut out: Vec<ProfileEntry> = self
            .entries
            .iter()
            .map(|((name, kind), cost)| ProfileEntry {
                name: name.clone(),
                kind: *kind,
                cost: *cost,
            })
            .collect();
        sort_by_cost(&mut out);
        out
    }

    /// Renders a fixed-width top-N table (the `rtec run --profile`
    /// output). `top_n == 0` means all rules.
    pub fn render_table(&self, top_n: usize) -> String {
        let entries = self.sorted();
        let total = self.total();
        let shown = if top_n == 0 {
            entries.len()
        } else {
            top_n.min(entries.len())
        };
        let name_w = entries
            .iter()
            .take(shown)
            .map(|e| e.name.len())
            .chain(std::iter::once("rule".len()))
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:<6}  {:>8}  {:>12}  {:>12}  {:>6}",
            "rule", "kind", "calls", "self(us)", "ivl-ops", "share"
        );
        for e in entries.iter().take(shown) {
            let share = if total.self_ns == 0 {
                0.0
            } else {
                e.cost.self_ns as f64 * 100.0 / total.self_ns as f64
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:<6}  {:>8}  {:>12}  {:>12}  {:>5.1}%",
                e.name,
                e.kind.as_str(),
                e.cost.calls,
                e.cost.self_us(),
                e.cost.interval_ops,
                share
            );
        }
        if entries.len() > shown {
            let mut rest = RuleCost::default();
            for e in entries.iter().skip(shown) {
                rest.add(&e.cost);
            }
            let share = if total.self_ns == 0 {
                0.0
            } else {
                rest.self_ns as f64 * 100.0 / total.self_ns as f64
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:<6}  {:>8}  {:>12}  {:>12}  {:>5.1}%",
                format!("({} more)", entries.len() - shown),
                "-",
                rest.calls,
                rest.self_us(),
                rest.interval_ops,
                share
            );
        }
        let _ = writeln!(
            out,
            "{:<name_w$}  {:<6}  {:>8}  {:>12}  {:>12}  {:>6}",
            "total",
            "-",
            total.calls,
            total.self_us(),
            total.interval_ops,
            format!("{} win", self.windows)
        );
        out
    }
}

fn sort_by_cost(entries: &mut [ProfileEntry]) {
    entries.sort_by(|a, b| {
        b.cost
            .self_ns
            .cmp(&a.cost.self_ns)
            .then_with(|| a.name.cmp(&b.name))
            .then_with(|| a.kind.cmp(&b.kind))
    });
}

/// One bounded-exposition sample: a real rule, or the `other` rollup.
#[derive(Clone, Debug)]
pub struct BoundedSample {
    /// Rule name, or `"other"` for the rollup of everything past top-N.
    pub rule: String,
    /// `"simple"` / `"static"`, or `"all"` for the rollup.
    pub kind: &'static str,
    /// The (possibly rolled-up) cost.
    pub cost: RuleCost,
}

/// The top-N rules by self-time plus an `other` rollup — at most
/// `top_n + 1` samples, whatever the description size. The rollup is
/// emitted even when zero so the series set is stable across scrapes.
pub fn bounded_samples(aggregate: &ProfileAggregate, top_n: usize) -> Vec<BoundedSample> {
    let entries = aggregate.sorted();
    let shown = top_n.min(entries.len());
    let mut out: Vec<BoundedSample> = entries
        .iter()
        .take(shown)
        .map(|e| BoundedSample {
            rule: e.name.clone(),
            kind: e.kind.as_str(),
            cost: e.cost,
        })
        .collect();
    let mut rest = RuleCost::default();
    for e in entries.iter().skip(shown) {
        rest.add(&e.cost);
    }
    out.push(BoundedSample {
        rule: "other".to_string(),
        kind: "all",
        cost: rest,
    });
    out
}

/// Renders the three bounded per-rule gauge families
/// (`rtec_profile_rule_self_us` / `_calls` / `_interval_ops`) for a set
/// of sessions, Prometheus text format. Values are cumulative totals
/// sampled at scrape time; membership of the top-N set may shift
/// between scrapes, which is why these are gauges, not counters.
pub fn render_prometheus(out: &mut String, sessions: &[(&str, &ProfileAggregate)], top_n: usize) {
    /// One gauge family: name, help text, and the cost column it reads.
    type Family = (&'static str, &'static str, fn(&RuleCost) -> u64);
    let bounded: Vec<(&str, Vec<BoundedSample>)> = sessions
        .iter()
        .map(|(name, agg)| (*name, bounded_samples(agg, top_n)))
        .collect();
    let families: [Family; 3] = [
        (
            "rtec_profile_rule_self_us",
            "Cumulative self evaluation wall time per rule, microseconds \
             (top-N rules by self time; remainder rolled into rule=\"other\")",
            |c| c.self_us(),
        ),
        (
            "rtec_profile_rule_calls",
            "Cumulative rule evaluations (one per window the rule ran in; \
             top-N rules by self time, remainder in rule=\"other\")",
            |c| c.calls,
        ),
        (
            "rtec_profile_rule_interval_ops",
            "Cumulative interval-algebra primitive ops attributed per rule \
             (top-N rules by self time, remainder in rule=\"other\")",
            |c| c.interval_ops,
        ),
    ];
    for (name, help, value) in families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (session, samples) in &bounded {
            for s in samples {
                let labels = crate::registry::render_labels(&[
                    ("session", session),
                    ("rule", &s.rule),
                    ("kind", s.kind),
                ]);
                let _ = writeln!(out, "{name}{{{labels}}} {}", value(&s.cost));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(entries: &[(&str, RuleKind, u64, u64)]) -> WindowProfile {
        let mut w = WindowProfile::new();
        for &(name, kind, ns, ops) in entries {
            w.record(name.to_string(), kind, ns, ops);
        }
        w.total_ns = entries.iter().map(|e| e.2).sum();
        w
    }

    #[test]
    fn aggregate_absorbs_and_merges() {
        let mut a = ProfileAggregate::new();
        a.absorb_window(&window(&[
            ("f/1", RuleKind::Simple, 3_000, 0),
            ("g/2", RuleKind::Static, 9_000, 4),
        ]));
        a.absorb_window(&window(&[("f/1", RuleKind::Simple, 2_000, 1)]));
        assert_eq!(a.windows, 2);
        let mut b = ProfileAggregate::new();
        b.absorb_window(&window(&[("g/2", RuleKind::Static, 1_000, 2)]));
        a.merge(&b);
        assert_eq!(a.windows, 3);
        let sorted = a.sorted();
        assert_eq!(sorted[0].name, "g/2");
        assert_eq!(sorted[0].cost.self_ns, 10_000);
        assert_eq!(sorted[0].cost.interval_ops, 6);
        assert_eq!(sorted[1].name, "f/1");
        assert_eq!(sorted[1].cost.calls, 2);
        let total = a.total();
        assert_eq!(total.self_us(), 15);
        assert_eq!(total.calls, 4);
    }

    #[test]
    fn delta_since_keeps_only_advanced_rules() {
        let mut before = ProfileAggregate::new();
        before.absorb_window(&window(&[
            ("f/1", RuleKind::Simple, 1_000, 0),
            ("g/2", RuleKind::Static, 5_000, 2),
        ]));
        let mut after = before.clone();
        after.absorb_window(&window(&[("g/2", RuleKind::Static, 7_000, 3)]));
        let delta = after.delta_since(&before);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].name, "g/2");
        assert_eq!(delta[0].cost.self_ns, 7_000);
        assert_eq!(delta[0].cost.calls, 1);
        assert_eq!(delta[0].cost.interval_ops, 3);
    }

    #[test]
    fn bounded_samples_cap_cardinality() {
        let mut agg = ProfileAggregate::new();
        // 100 rules, each with distinct cost — far past any sane top-N.
        let names: Vec<String> = (0..100).map(|i| format!("r{i}/1")).collect();
        let mut w = WindowProfile::new();
        for (i, name) in names.iter().enumerate() {
            w.record(name.clone(), RuleKind::Simple, (i as u64 + 1) * 100, 1);
        }
        agg.absorb_window(&w);
        let samples = bounded_samples(&agg, DEFAULT_TOP_N);
        assert_eq!(samples.len(), DEFAULT_TOP_N + 1);
        assert_eq!(samples.last().unwrap().rule, "other");
        assert_eq!(samples.last().unwrap().kind, "all");
        // Everything is accounted for: top-N + other == total.
        let mut sum = RuleCost::default();
        for s in &samples {
            sum.add(&s.cost);
        }
        assert_eq!(sum, agg.total());
        // Top of the list is the most expensive rule.
        assert_eq!(samples[0].rule, "r99/1");
    }

    #[test]
    fn bounded_samples_emit_stable_other_when_small() {
        let mut agg = ProfileAggregate::new();
        agg.absorb_window(&window(&[("f/1", RuleKind::Simple, 1_000, 0)]));
        let samples = bounded_samples(&agg, 8);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].rule, "other");
        assert!(samples[1].cost.is_zero());
    }

    /// Byte-exact golden of the bounded exposition: the families the CI
    /// scrape check asserts on.
    #[test]
    fn prometheus_rendering_golden() {
        let mut agg = ProfileAggregate::new();
        agg.absorb_window(&window(&[
            ("slow/2", RuleKind::Static, 120_000, 7),
            ("fast/1", RuleKind::Simple, 30_000, 0),
            ("tail/1", RuleKind::Simple, 1_000, 1),
        ]));
        let mut out = String::new();
        render_prometheus(&mut out, &[("s1", &agg)], 2);
        let expected = "\
# HELP rtec_profile_rule_self_us Cumulative self evaluation wall time per rule, microseconds (top-N rules by self time; remainder rolled into rule=\"other\")
# TYPE rtec_profile_rule_self_us gauge
rtec_profile_rule_self_us{kind=\"static\",rule=\"slow/2\",session=\"s1\"} 120
rtec_profile_rule_self_us{kind=\"simple\",rule=\"fast/1\",session=\"s1\"} 30
rtec_profile_rule_self_us{kind=\"all\",rule=\"other\",session=\"s1\"} 1
# HELP rtec_profile_rule_calls Cumulative rule evaluations (one per window the rule ran in; top-N rules by self time, remainder in rule=\"other\")
# TYPE rtec_profile_rule_calls gauge
rtec_profile_rule_calls{kind=\"static\",rule=\"slow/2\",session=\"s1\"} 1
rtec_profile_rule_calls{kind=\"simple\",rule=\"fast/1\",session=\"s1\"} 1
rtec_profile_rule_calls{kind=\"all\",rule=\"other\",session=\"s1\"} 1
# HELP rtec_profile_rule_interval_ops Cumulative interval-algebra primitive ops attributed per rule (top-N rules by self time, remainder in rule=\"other\")
# TYPE rtec_profile_rule_interval_ops gauge
rtec_profile_rule_interval_ops{kind=\"static\",rule=\"slow/2\",session=\"s1\"} 7
rtec_profile_rule_interval_ops{kind=\"simple\",rule=\"fast/1\",session=\"s1\"} 0
rtec_profile_rule_interval_ops{kind=\"all\",rule=\"other\",session=\"s1\"} 1
";
        assert_eq!(out, expected);
        crate::expo::validate(&out).expect("bounded profile exposition is valid");
    }

    #[test]
    fn table_renders_top_n_with_rollup_and_total() {
        let mut agg = ProfileAggregate::new();
        agg.absorb_window(&window(&[
            ("a/1", RuleKind::Simple, 10_000, 1),
            ("b/1", RuleKind::Simple, 20_000, 2),
            ("c/1", RuleKind::Static, 30_000, 3),
        ]));
        let table = agg.render_table(2);
        assert!(table.contains("c/1"));
        assert!(table.contains("b/1"));
        assert!(!table.contains("a/1  "));
        assert!(table.contains("(1 more)"));
        assert!(table.contains("total"));
        assert!(table.contains("1 win"));
    }
}
