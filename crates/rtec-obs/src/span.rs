//! Scope timing with per-thread span stacks.
//!
//! A [`SpanGuard`] marks a named region of work on the current thread.
//! Guards nest: the active path (`tick/fluent_eval`, say) is attached
//! to every event emitted while the guard is alive, and a *timed* span
//! records its wall-clock duration into a histogram when dropped.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The current thread's span path (`outer/inner`), if any span is open.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| {
        let stack = stack.borrow();
        (!stack.is_empty()).then(|| stack.join("/"))
    })
}

/// An open span; closes (and records, if timed) on drop.
#[must_use = "a span is closed when the guard drops"]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    histogram: Option<Arc<Histogram>>,
}

/// Opens an (untimed) span on the current thread.
pub fn span(name: &'static str) -> SpanGuard {
    STACK.with(|stack| stack.borrow_mut().push(name));
    SpanGuard {
        name,
        start: Instant::now(),
        histogram: None,
    }
}

/// Opens a span whose duration is recorded into `histogram`
/// (microseconds) when the guard drops.
pub fn timed_span(name: &'static str, histogram: &Arc<Histogram>) -> SpanGuard {
    let mut guard = span(name);
    guard.histogram = Some(Arc::clone(histogram));
    guard
}

impl SpanGuard {
    /// Elapsed time since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let us = self.elapsed_us();
        if let Some(h) = &self.histogram {
            h.observe(us);
        }
        if crate::event::enabled(crate::event::Level::Debug) {
            crate::event::debug(
                "span.close",
                &[("name", self.name.into()), ("duration_us", us.into())],
            );
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop this span; tolerate out-of-order drops by removing the
            // last occurrence of the name instead of blind-popping.
            if let Some(i) = stack.iter().rposition(|n| *n == self.name) {
                stack.remove(i);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_time() {
        assert_eq!(current_path(), None);
        let h = Arc::new(Histogram::new());
        {
            let _outer = span("outer");
            assert_eq!(current_path().as_deref(), Some("outer"));
            {
                let _inner = timed_span("inner", &h);
                assert_eq!(current_path().as_deref(), Some("outer/inner"));
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            assert_eq!(current_path().as_deref(), Some("outer"));
        }
        assert_eq!(current_path(), None);
        assert_eq!(h.count(), 1);
        assert!(h.max() > 0);
    }
}
