//! Scope timing with per-thread span stacks.
//!
//! A [`SpanGuard`] marks a named region of work on the current thread.
//! Guards nest: the active path (`tick/fluent_eval`, say) is attached
//! to every event emitted while the guard is alive, and a *timed* span
//! records its wall-clock duration into a histogram when dropped.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The current thread's span path (`outer/inner`), if any span is open.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| {
        let stack = stack.borrow();
        (!stack.is_empty()).then(|| stack.join("/"))
    })
}

/// An open span; closes (and records, if timed) on drop.
#[must_use = "a span is closed when the guard drops"]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    histogram: Option<Arc<Histogram>>,
}

/// Opens an (untimed) span on the current thread.
pub fn span(name: &'static str) -> SpanGuard {
    STACK.with(|stack| stack.borrow_mut().push(name));
    SpanGuard {
        name,
        start: Instant::now(),
        histogram: None,
    }
}

/// Opens a span whose duration is recorded into `histogram`
/// (microseconds) when the guard drops.
pub fn timed_span(name: &'static str, histogram: &Arc<Histogram>) -> SpanGuard {
    let mut guard = span(name);
    guard.histogram = Some(Arc::clone(histogram));
    guard
}

impl SpanGuard {
    /// Elapsed time since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let us = self.elapsed_us();
        if let Some(h) = &self.histogram {
            h.observe(us);
        }
        if crate::event::enabled(crate::event::Level::Debug) {
            crate::event::debug(
                "span.close",
                &[("name", self.name.into()), ("duration_us", us.into())],
            );
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop this span; tolerate out-of-order drops by removing the
            // last occurrence of the name instead of blind-popping.
            if let Some(i) = stack.iter().rposition(|n| *n == self.name) {
                stack.remove(i);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_time() {
        assert_eq!(current_path(), None);
        let h = Arc::new(Histogram::new());
        {
            let _outer = span("outer");
            assert_eq!(current_path().as_deref(), Some("outer"));
            {
                let _inner = timed_span("inner", &h);
                assert_eq!(current_path().as_deref(), Some("outer/inner"));
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            assert_eq!(current_path().as_deref(), Some("outer"));
        }
        assert_eq!(current_path(), None);
        assert_eq!(h.count(), 1);
        assert!(h.max() > 0);
    }

    /// Span stacks are per-thread: a span opened on one thread is
    /// invisible to `current_path()` on another, and concurrent stacks
    /// never interleave.
    #[test]
    fn span_stacks_are_thread_isolated() {
        let _outer = span("main_thread");
        assert_eq!(current_path().as_deref(), Some("main_thread"));
        let handle = std::thread::spawn(|| {
            // Fresh thread: no inherited path.
            assert_eq!(current_path(), None);
            let _worker = span("worker");
            assert_eq!(current_path().as_deref(), Some("worker"));
            {
                let _step = span("step");
                assert_eq!(current_path().as_deref(), Some("worker/step"));
            }
            current_path()
        });
        // The worker's spans never leak into this thread's path.
        assert_eq!(current_path().as_deref(), Some("main_thread"));
        assert_eq!(handle.join().unwrap().as_deref(), Some("worker"));
        assert_eq!(current_path().as_deref(), Some("main_thread"));
    }

    /// A `SpanGuard` closes (pops the stack, records its histogram)
    /// even when the scope unwinds via panic — the worker supervisor
    /// relies on this so a panicked shard leaves no stale span frames.
    #[test]
    fn span_guard_closes_under_unwinding() {
        let h = Arc::new(Histogram::new());
        let h2 = Arc::clone(&h);
        let result = std::panic::catch_unwind(move || {
            let _timed = timed_span("doomed", &h2);
            assert_eq!(current_path().as_deref(), Some("doomed"));
            std::thread::sleep(std::time::Duration::from_micros(200));
            panic!("injected");
        });
        assert!(result.is_err());
        // The unwound guard popped its frame and recorded its duration.
        assert_eq!(current_path(), None);
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 200, "recorded {}us", h.max());
    }

    /// `timed_span` records into the log2 bucket covering its duration:
    /// the single non-empty bucket's `[2^(i-1), 2^i)` range contains the
    /// observed value.
    #[test]
    fn timed_span_records_into_the_right_bucket() {
        use crate::metrics::HistogramSnapshot;
        let h = Arc::new(Histogram::new());
        {
            let _s = timed_span("bucketed", &h);
            std::thread::sleep(std::time::Duration::from_micros(300));
        }
        assert_eq!(h.count(), 1);
        let us = h.max();
        assert!(us >= 300, "slept at least 300us, recorded {us}");
        let snap = h.snapshot();
        let nonzero: Vec<usize> = snap
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(nonzero.len(), 1, "exactly one bucket recorded: {snap:?}");
        let bucket = nonzero[0];
        assert_eq!(snap.counts[bucket], 1);
        if let Some(upper) = HistogramSnapshot::upper_bound(bucket) {
            assert!(us < upper, "{us}us at or over bucket bound {upper}");
        }
        assert!(bucket >= 1, "a 300us sleep cannot land in bucket 0");
        let floor = HistogramSnapshot::upper_bound(bucket - 1).unwrap();
        assert!(us >= floor, "{us}us under bucket floor {floor}");
    }
}
