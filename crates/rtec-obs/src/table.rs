//! Sorted name→count tables.
//!
//! The same counting-and-rendering code used to be duplicated between
//! stream statistics (`maritime::stats`) and ad-hoc telemetry
//! summaries; it lives here once.

use std::collections::BTreeMap;

/// A table of counts keyed by name, kept sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountTable {
    counts: BTreeMap<String, u64>,
}

impl CountTable {
    /// An empty table.
    pub fn new() -> CountTable {
        CountTable::default()
    }

    /// Adds `n` to the count of `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(slot) = self.counts.get_mut(name) {
            *slot += n;
        } else {
            self.counts.insert(name.to_string(), n);
        }
    }

    /// Adds one to the count of `name`.
    pub fn increment(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// The count of `name` (0 if absent).
    pub fn count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(name, count)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders an aligned two-column text table, one `  name  count`
    /// line per entry, names left-padded to `width`.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        for (name, count) in self.iter() {
            out.push_str(&format!("  {name:<width$} {count}\n"));
        }
        out
    }
}

impl<'a> Extend<(&'a str, u64)> for CountTable {
    fn extend<T: IntoIterator<Item = (&'a str, u64)>>(&mut self, iter: T) {
        for (name, n) in iter {
            self.add(name, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_renders_sorted() {
        let mut t = CountTable::new();
        t.increment("b");
        t.increment("a");
        t.add("b", 2);
        assert_eq!(t.count("b"), 3);
        assert_eq!(t.count("missing"), 0);
        assert_eq!(t.total(), 4);
        assert_eq!(t.len(), 2);
        let rendered = t.render(4);
        assert_eq!(rendered, "  a    1\n  b    3\n");
        let entries: Vec<(&str, u64)> = t.iter().collect();
        assert_eq!(entries, vec![("a", 1), ("b", 3)]);
    }
}
