//! Prometheus text exposition (format version 0.0.4): rendering a
//! [`MetricsRegistry`] and validating exposition text.
//!
//! The validator is deliberately strict about the parts a scraper
//! relies on — sample-line syntax, `# TYPE` before samples, histogram
//! `_bucket`/`_sum`/`_count` completeness and cumulative monotonicity —
//! and is used both by the golden tests and by the CI bench smoke to
//! fail the build when the endpoint serves malformed text.

use crate::metrics::{HistogramSnapshot, BUCKETS};
use crate::registry::{Family, MetricsRegistry, Series};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The content type a compliant HTTP endpoint should serve.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn sample(out: &mut String, name: &str, labels: &str, value: impl std::fmt::Display) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Appends one histogram series (cumulative `_bucket`s, `_sum`,
/// `_count`) to `out`. Shared by the registry renderer and dynamic
/// (scrape-time) collectors.
pub fn render_histogram(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        cumulative += snap.counts[i];
        let le = match HistogramSnapshot::upper_bound(i) {
            Some(b) => b.to_string(),
            None => "+Inf".to_string(),
        };
        let le_pair = format!("le=\"{le}\"");
        let full = if labels.is_empty() {
            le_pair
        } else {
            format!("{labels},{le_pair}")
        };
        sample(out, &format!("{name}_bucket"), &full, cumulative);
    }
    sample(out, &format!("{name}_sum"), labels, snap.sum);
    sample(out, &format!("{name}_count"), labels, cumulative);
}

/// Appends a family header (`# HELP`, `# TYPE`) to `out`.
pub fn render_header(out: &mut String, name: &str, kind: &str, help: &str) {
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {}", help.replace('\n', " "));
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders every family of `registry` in exposition format.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    registry.visit(|families: &BTreeMap<String, Family>| {
        for (name, family) in families {
            render_header(&mut out, name, family.kind.as_str(), &family.help);
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => sample(&mut out, name, labels, c.get()),
                    Series::Gauge(g) => sample(&mut out, name, labels, g.get()),
                    Series::Histogram(h) => {
                        render_histogram(&mut out, name, labels, &h.snapshot());
                    }
                }
            }
        }
    });
    out
}

/// Checks that `text` is well-formed exposition text. Returns the
/// number of sample lines on success, or a description of the first
/// problem found.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    // Histogram family -> (series labels minus `le`) -> bucket counts.
    let mut buckets: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
    let mut histogram_parts: BTreeMap<String, (bool, bool)> = BTreeMap::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE without a name"))?;
                let kind = it
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {n}: unknown TYPE kind {kind:?}"));
                }
                typed.insert(name.to_string(), kind.to_string());
            } else if !rest.starts_with("HELP ") && !rest.is_empty() {
                return Err(format!("line {n}: unknown comment directive"));
            }
            continue;
        }
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {n}: non-numeric sample value {value:?}"))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, labels)
            }
            None => (name_and_labels, ""),
        };
        if name.is_empty()
            || !name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
        {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        for pair in split_label_pairs(labels) {
            let (key, val) = pair
                .split_once('=')
                .ok_or_else(|| format!("line {n}: malformed label pair {pair:?}"))?;
            if key.is_empty() || !val.starts_with('"') || !val.ends_with('"') || val.len() < 2 {
                return Err(format!("line {n}: malformed label pair {pair:?}"));
            }
        }
        // Histogram samples use the family's TYPE under the suffix-less
        // name; everything else must be typed under its own name.
        let family = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            let stem = name.strip_suffix(suffix)?;
            (typed.get(stem).map(String::as_str) == Some("histogram"))
                .then(|| (stem.to_string(), *suffix))
        });
        match family {
            Some((stem, suffix)) => {
                let parts = histogram_parts.entry(stem.clone()).or_default();
                match suffix {
                    "_sum" => parts.0 = true,
                    "_count" => parts.1 = true,
                    _ => {
                        let (le, rest) = extract_le(labels)
                            .ok_or_else(|| format!("line {n}: _bucket sample without le label"))?;
                        let count = value
                            .parse::<f64>()
                            .map_err(|_| format!("line {n}: bad bucket count"))?
                            as u64;
                        let series = buckets.entry((stem, rest)).or_default();
                        if let Some(&last) = series.last() {
                            if count < last {
                                return Err(format!(
                                    "line {n}: histogram buckets not cumulative (le={le})"
                                ));
                            }
                        }
                        series.push(count);
                    }
                }
            }
            None => {
                if !typed.contains_key(name) {
                    return Err(format!("line {n}: sample {name:?} precedes its TYPE line"));
                }
            }
        }
        samples += 1;
    }
    for (name, kind) in &typed {
        if kind == "histogram" {
            let (has_sum, has_count) = histogram_parts.get(name).copied().unwrap_or((false, false));
            if !has_sum || !has_count {
                return Err(format!("histogram {name:?} missing _sum or _count"));
            }
            let has_inf = buckets.keys().any(|(stem, _)| stem == name);
            if !has_inf {
                return Err(format!("histogram {name:?} has no _bucket samples"));
            }
        }
    }
    Ok(samples)
}

/// Splits a rendered label string into `key="value"` pairs, honouring
/// quotes (values may contain commas).
fn split_label_pairs(labels: &str) -> Vec<&str> {
    let mut pairs = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in labels.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                if start < i {
                    pairs.push(&labels[start..i]);
                }
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < labels.len() {
        pairs.push(&labels[start..]);
    }
    pairs
}

/// Pulls the `le` label out of a bucket label set, returning
/// `(le_value, remaining_labels)`.
fn extract_le(labels: &str) -> Option<(String, String)> {
    let mut le = None;
    let mut rest = Vec::new();
    for pair in split_label_pairs(labels) {
        match pair.strip_prefix("le=") {
            Some(v) => le = Some(v.trim_matches('"').to_string()),
            None => rest.push(pair),
        }
    }
    le.map(|le| (le, rest.join(",")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn renders_and_validates_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("demo_total", "A demo counter.", &[("kind", "x")])
            .add(3);
        reg.gauge("demo_depth", "A demo gauge.", &[]).set(-2);
        reg.histogram("demo_us", "A demo histogram.", &[])
            .observe(500);
        let text = render(&reg);
        assert!(text.contains("# TYPE demo_total counter"));
        assert!(text.contains("demo_total{kind=\"x\"} 3"));
        assert!(text.contains("demo_depth -2"));
        assert!(text.contains("demo_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("demo_us_sum 500"));
        assert!(text.contains("demo_us_count 1"));
        let samples = validate(&text).expect("valid exposition");
        assert_eq!(samples, 2 + BUCKETS + 2);
    }

    #[test]
    fn validator_rejects_malformed_text() {
        for (text, what) in [
            ("demo 1", "sample before TYPE"),
            ("# TYPE demo counter\ndemo", "missing value"),
            ("# TYPE demo counter\ndemo x", "bad value"),
            ("# TYPE demo counter\ndemo{a=b} 1", "unquoted label"),
            ("# TYPE demo counter\ndemo{a=\"b\" 1", "unterminated labels"),
            ("# TYPE demo banana\ndemo 1", "bad kind"),
            (
                "# TYPE demo histogram\ndemo_sum 1\ndemo_count 1",
                "no buckets",
            ),
            (
                "# TYPE demo histogram\ndemo_bucket{le=\"1\"} 5\n\
                 demo_bucket{le=\"+Inf\"} 3\ndemo_sum 1\ndemo_count 3",
                "non-cumulative",
            ),
        ] {
            assert!(validate(text).is_err(), "accepted: {what}");
        }
    }

    #[test]
    fn label_pair_splitting_honours_quotes() {
        assert_eq!(
            split_label_pairs("a=\"x,y\",b=\"2\""),
            vec!["a=\"x,y\"", "b=\"2\""]
        );
        assert_eq!(
            extract_le("session=\"s\",le=\"+Inf\""),
            Some(("+Inf".to_string(), "session=\"s\"".to_string()))
        );
    }
}
