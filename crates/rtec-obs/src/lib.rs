//! # rtec-obs — unified observability for the RTEC workspace
//!
//! A zero-dependency (std-only, offline-friendly) observability layer
//! shared by the engine ([`rtec`]), the streaming service
//! (`rtec-service`) and the CLI:
//!
//! * **Metrics** ([`metrics`], [`registry`]) — counters, gauges and
//!   fixed-bucket log2 histograms with lock-free atomic hot paths.
//!   Handles are `Arc`s obtained once from a [`MetricsRegistry`] (the
//!   process-wide one via [`registry::global`]); recording is a relaxed
//!   atomic op, so instrumentation is safe on per-event code paths.
//! * **Exposition** ([`expo`]) — Prometheus text format (version
//!   0.0.4) rendering of a registry, plus a validator used by tests and
//!   the CI smoke check.
//! * **Structured events** ([`mod@event`]) — leveled (`error` / `warn` /
//!   `info` / `debug`) JSON-line events honouring the `RTEC_LOG`
//!   environment filter, fanned out to a pluggable sink (stderr by
//!   default) and an in-memory ring buffer for post-hoc inspection.
//! * **Spans** ([`mod@span`]) — per-thread span stacks that time a scope
//!   into a histogram and tag concurrent events with their position in
//!   the span stack.
//! * **Profiles** ([`profile`]) — per-rule evaluation cost attribution
//!   (self time, calls, interval-algebra ops) with bounded-cardinality
//!   top-N + `other` exposition, shared by the engine, both evaluators
//!   and the service's `profile` command.
//! * **Count tables** ([`table`]) — sorted name→count tables shared by
//!   stream statistics and telemetry summaries.
//!
//! [`rtec`]: ../rtec/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod expo;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod span;
pub mod table;

pub use event::{
    debug, error, event, info, recent_events, set_max_level, set_sink, warn, FieldValue, Level,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use profile::{ProfileAggregate, ProfileEntry, RuleCost, RuleKind, WindowProfile};
pub use registry::{global, MetricsRegistry};
pub use span::{span, timed_span, SpanGuard};
pub use table::CountTable;
