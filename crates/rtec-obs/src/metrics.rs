//! Metric primitives: counters, gauges and log2-bucketed histograms.
//!
//! Every primitive is internally atomic, so one `Arc` handle can be
//! shared across threads and recorded into without locks. Reads
//! (snapshots, exposition) use relaxed loads — metric values are
//! monotonic counters or advisory gauges, and a torn multi-field read
//! is acceptable for monitoring.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` counts values in
/// `[2^(i-1), 2^i)` (bucket 0 is `< 1`); the last bucket is open-ended.
/// With microsecond values the top finite bound is ~4.2 s.
pub const BUCKETS: usize = 24;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram of non-negative integer values
/// (conventionally microseconds for latency series).
///
/// This is the promoted successor of `rtec-service`'s single-threaded
/// `LatencyHistogram`: same bucket layout and summary statistics, but
/// atomic, so the ingest path and a metrics scrape never contend.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index of a value.
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one value.
    pub fn observe(&self, v: u64) {
        self.counts[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Largest observed value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Histogram {
        let s = self.snapshot();
        Histogram {
            counts: std::array::from_fn(|i| AtomicU64::new(s.counts[i])),
            sum: AtomicU64::new(s.sum),
            max: AtomicU64::new(s.max),
        }
    }
}

/// A plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub counts: [u64; BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// The exclusive upper bound of bucket `i` (`None` for the last,
    /// open-ended bucket).
    pub fn upper_bound(i: usize) -> Option<u64> {
        (i + 1 < BUCKETS).then(|| 1u64 << i)
    }

    /// A human-readable label for bucket `i`, with `unit` appended
    /// (e.g. `"<256us"`, `">=4194304us"`).
    pub fn bucket_label(i: usize, unit: &str) -> String {
        match Self::upper_bound(i) {
            Some(b) => format!("<{b}{unit}"),
            None => format!(">={}{unit}", 1u64 << (BUCKETS - 2)),
        }
    }

    /// `(label, count)` pairs of the non-empty buckets.
    pub fn nonzero_buckets(&self, unit: &str) -> Vec<(String, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_label(i, unit), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.set_max(10);
        g.set_max(2);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_matches_legacy_latency_buckets() {
        let h = Histogram::new();
        for us in [0u64, 1, 3, 2000] {
            h.observe(us);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 2000);
        assert!(h.mean() >= 500);
        let s = h.snapshot();
        // 0 -> bucket 0; 1 -> bucket 1; 3 -> bucket 2; 2000 -> bucket 11.
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[2], 1);
        assert_eq!(s.counts[11], 1);
        assert_eq!(s.nonzero_buckets("us")[0], ("<1us".to_string(), 1), "{s:?}");
        assert_eq!(
            HistogramSnapshot::bucket_label(BUCKETS - 1, "us"),
            ">=4194304us"
        );
    }

    #[test]
    fn histogram_observes_durations() {
        let h = Histogram::new();
        h.observe_duration(Duration::from_millis(2));
        assert_eq!(h.max(), 2000);
        let copy = h.clone();
        assert_eq!(copy.snapshot(), h.snapshot());
    }
}
