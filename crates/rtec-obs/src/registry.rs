//! The metrics registry: named, labeled series of counters, gauges and
//! histograms.
//!
//! Registration (`counter` / `gauge` / `histogram`) is get-or-create
//! and takes a lock; callers do it once and keep the returned `Arc`
//! handle, so the record path never touches the registry. Series are
//! grouped into *families* (one name, one type, one help string, many
//! label sets), which is exactly the shape Prometheus exposition wants.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A metric family's type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up-down gauge.
    Gauge,
    /// Log2-bucketed histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One registered series handle.
#[derive(Clone, Debug)]
pub enum Series {
    /// A counter series.
    Counter(Arc<Counter>),
    /// A gauge series.
    Gauge(Arc<Gauge>),
    /// A histogram series.
    Histogram(Arc<Histogram>),
}

/// A family: every series sharing one metric name.
#[derive(Debug)]
pub struct Family {
    /// The family's type.
    pub kind: MetricKind,
    /// Help text for exposition.
    pub help: String,
    /// Label-set → series, keyed by the rendered label string
    /// (`label="value"` pairs sorted by label name; empty for none).
    pub series: BTreeMap<String, Series>,
}

/// A collection of metric families.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Renders a label set into its canonical exposition form
/// (`key="value"` pairs sorted by key, comma-separated; no braces).
pub fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort();
    pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

/// Escapes a label value per the exposition format.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn series(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: MetricKind) -> Series {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} but requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .series
            .entry(render_labels(labels))
            .or_insert_with(|| match kind {
                MetricKind::Counter => Series::Counter(Arc::new(Counter::new())),
                MetricKind::Gauge => Series::Gauge(Arc::new(Gauge::new())),
                MetricKind::Histogram => Series::Histogram(Arc::new(Histogram::new())),
            })
            .clone()
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, labels, MetricKind::Counter) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(name, help, labels, MetricKind::Gauge) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Gets or creates a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.series(name, help, labels, MetricKind::Histogram) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Removes every series whose label set contains `key="value"`
    /// (used when a scoped object — e.g. a service session — goes
    /// away). Families left empty are dropped entirely.
    pub fn remove_matching(&self, key: &str, value: &str) {
        let needle = render_labels(&[(key, value)]);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        for family in families.values_mut() {
            family
                .series
                .retain(|labels, _| !labels.split(',').any(|p| p == needle));
        }
        families.retain(|_, f| !f.series.is_empty());
    }

    /// Calls `f` with the family map (for exposition).
    pub fn visit<R>(&self, f: impl FnOnce(&BTreeMap<String, Family>) -> R) -> R {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        f(&families)
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        crate::expo::render(self)
    }
}

/// The process-wide registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("t_total", "help", &[("kind", "x")]);
        let b = reg.counter("t_total", "help", &[("kind", "x")]);
        a.inc();
        assert_eq!(b.get(), 1);
        let other = reg.counter("t_total", "help", &[("kind", "y")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("t_total", "help", &[]);
        let _ = reg.gauge("t_total", "help", &[]);
    }

    #[test]
    fn remove_matching_drops_scoped_series() {
        let reg = MetricsRegistry::new();
        let _ = reg.gauge("depth", "h", &[("session", "a"), ("shard", "0")]);
        let _ = reg.gauge("depth", "h", &[("session", "b"), ("shard", "0")]);
        reg.remove_matching("session", "a");
        reg.visit(|families| {
            let family = &families["depth"];
            assert_eq!(family.series.len(), 1);
            assert!(family
                .series
                .keys()
                .next()
                .unwrap()
                .contains("session=\"b\""));
        });
        reg.remove_matching("session", "b");
        reg.visit(|families| assert!(families.is_empty()));
    }

    #[test]
    fn label_rendering_sorts_and_escapes() {
        assert_eq!(render_labels(&[]), "");
        assert_eq!(
            render_labels(&[("b", "2"), ("a", "say \"hi\"\n")]),
            "a=\"say \\\"hi\\\"\\n\",b=\"2\""
        );
    }
}
