//! # rtec-analysis — abstract interpretation over RTEC evaluation plans
//!
//! A whole-program static analysis over the `rtec-plan` lowered IR. For
//! every rule and every defined fluent it computes:
//!
//! * **value-domain facts** — per-variable constant / finite-set /
//!   numeric-interval lattices ([`domain::Dom`]), seeded from background
//!   facts baked into the plan and from the derivable value sets of
//!   referenced fluents;
//! * **emptiness proofs** — rules whose body can never be satisfied on
//!   any conforming input stream: contradictory comparisons, values
//!   outside a fluent's derivable set, references to fluents that can
//!   never hold, interval algebra whose output register is provably
//!   always empty, and (under a closed input schema) trigger events
//!   that can never occur;
//! * **reachability / productivity per fluent** — can it ever hold, and
//!   (for simple fluents) can it ever terminate once initiated — the
//!   source of silent forget-horizon blowup.
//!
//! The same interpreter runs under two sets of assumptions:
//!
//! * **lint semantics** mirror the engine's runtime behaviour on the
//!   description alone: a fluent that is neither defined nor declared
//!   never holds (the engine warns and fails such references). These
//!   results feed the `RL1xxx` diagnostics in `rtec-lint` and the
//!   [`Analysis`] facts tables.
//! * **strict semantics** only admit conclusions that are sound for
//!   *any* stream conforming to the declared input schema; with no
//!   declarations the schema is open and undeclared fluents may be fed
//!   by the stream. These results become [`OptimizeProofs`] for
//!   [`rtec_plan::Plan::optimize`], guarded by the observational-identity
//!   contract (see `rtec_plan::optimize`).
//!
//! ```
//! use rtec::description::EventDescription;
//!
//! let desc = EventDescription::parse(
//!     "initiatedAt(hot(V)=true, T) :- happensAt(reading(V, C), T), C > 10, C < 5.
//!      initiatedAt(hot(V)=true, T) :- happensAt(overheat(V), T).
//!      terminatedAt(hot(V)=true, T) :- happensAt(cool(V), T).",
//! )
//! .unwrap()
//! .compile()
//! .unwrap();
//! let analysis = rtec_analysis::analyze(&desc);
//! // The first rule's comparisons are contradictory.
//! assert!(analysis.rules[0].empty.is_some());
//! assert!(analysis.rules[1].empty.is_none());
//! // The fluent itself still holds through the second rule.
//! assert!(analysis.fluents.iter().all(|f| f.can_hold));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod domain;
mod interp;

use domain::Dom;
use rtec::ast::{FluentKey, SimpleKind};
use rtec::description::CompiledDescription;
use rtec::term::Term;
use rtec_plan::{OptimizeProofs, Plan};
use std::collections::{BTreeSet, HashMap};

/// Why a rule body can never be satisfied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmptyReason {
    /// An always-false comparison or an unmatchable background lookup.
    Contradiction(String),
    /// A fluent is queried with a value outside its derivable set.
    DisjointValue {
        /// The queried fluent, as `name/arity`.
        fluent: String,
        /// The offending value (pre-rendered).
        value: String,
    },
    /// A positive reference to a fluent that can never hold.
    NeverHolds {
        /// The referenced fluent, as `name/arity`.
        fluent: String,
    },
    /// The rule's interval-algebra output register is provably always
    /// empty.
    EmptyAlgebra {
        /// The head fluent, as `name/arity`.
        fluent: String,
    },
    /// The rule's trigger event is not in the closed input schema.
    UnreachableTrigger {
        /// The trigger signature, as `name/arity`.
        event: String,
    },
}

impl EmptyReason {
    /// One human-readable sentence.
    pub fn describe(&self) -> String {
        match self {
            EmptyReason::Contradiction(s) => s.clone(),
            EmptyReason::DisjointValue { fluent, value } => {
                format!("fluent `{fluent}` is queried with {value}, which no rule can derive")
            }
            EmptyReason::NeverHolds { fluent } => {
                format!("requires fluent `{fluent}`, which can never hold")
            }
            EmptyReason::EmptyAlgebra { fluent } => {
                format!("interval algebra for `{fluent}` always produces an empty list")
            }
            EmptyReason::UnreachableTrigger { event } => {
                format!("trigger event `{event}` is not a declared input event")
            }
        }
    }
}

/// What kind of rule a [`RuleFacts`] entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// An `initiatedAt` rule.
    Initiated,
    /// A `terminatedAt` rule.
    Terminated,
    /// A `holdsFor` rule.
    HoldsFor,
}

impl RuleKind {
    /// The concrete-syntax predicate name.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleKind::Initiated => "initiatedAt",
            RuleKind::Terminated => "terminatedAt",
            RuleKind::HoldsFor => "holdsFor",
        }
    }
}

/// Per-rule analysis results (lint semantics).
#[derive(Clone, Debug)]
pub struct RuleFacts {
    /// Index of the originating clause in the event description.
    pub clause: usize,
    /// The rule kind.
    pub kind: RuleKind,
    /// The head fluent key.
    pub head: FluentKey,
    /// The head, rendered as `fluent=value`.
    pub head_display: String,
    /// The emptiness proof, if the body can never be satisfied.
    pub empty: Option<EmptyReason>,
    /// Final `(variable, domain)` facts per rule variable, rendered.
    pub slots: Vec<(String, String)>,
}

/// Per-fluent analysis results (lint semantics).
#[derive(Clone, Debug)]
pub struct FluentFacts {
    /// The fluent key.
    pub key: FluentKey,
    /// The fluent, as `name/arity`.
    pub name: String,
    /// Whether the fluent is simple (initiated/terminated) rather than
    /// statically determined.
    pub simple: bool,
    /// Whether the fluent can ever hold.
    pub can_hold: bool,
    /// For simple fluents: whether it can ever terminate once initiated
    /// (through a satisfiable `terminatedAt` rule or a cross-value
    /// initiation). `None` for static fluents, which carry no inertia.
    pub can_terminate: Option<bool>,
    /// The derivable value set, when finite and fully ground.
    pub values: Option<Vec<String>>,
    /// The fluent's defining clauses.
    pub clauses: Vec<usize>,
}

/// The complete analysis of one plan.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Per-rule facts, in stratum order (lint semantics).
    pub rules: Vec<RuleFacts>,
    /// Per-fluent facts, in stratum (bottom-up) order (lint semantics).
    pub fluents: Vec<FluentFacts>,
    /// Whether the description declares inputs (closed schema).
    pub closed_schema: bool,
    proofs: OptimizeProofs,
}

impl Analysis {
    /// Stream-independent proofs for [`Plan::optimize`] (strict
    /// semantics — sound for any conforming stream).
    pub fn proofs(&self) -> &OptimizeProofs {
        &self.proofs
    }

    /// The fluents that can never hold under lint semantics.
    pub fn never_holding(&self) -> impl Iterator<Item = &FluentFacts> {
        self.fluents.iter().filter(|f| !f.can_hold)
    }

    /// Renders the per-rule and per-fluent facts tables (the output of
    /// `rtec-cli analyze`).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "schema: {}\n\nfluents ({}):\n",
            if self.closed_schema {
                "closed (input declarations present)"
            } else {
                "open (no input declarations)"
            },
            self.fluents.len()
        ));
        out.push_str("  fluent                  kind    holds  terminates  values\n");
        for f in &self.fluents {
            let values = match &f.values {
                Some(v) if v.is_empty() => "{}".to_string(),
                Some(v) => format!("{{{}}}", v.join(", ")),
                None => "any".to_string(),
            };
            out.push_str(&format!(
                "  {:<23} {:<7} {:<6} {:<11} {}\n",
                f.name,
                if f.simple { "simple" } else { "static" },
                if f.can_hold { "yes" } else { "NO" },
                match f.can_terminate {
                    Some(true) => "yes",
                    Some(false) => "NO",
                    None => "-",
                },
                values
            ));
        }
        out.push_str(&format!("\nrules ({}):\n", self.rules.len()));
        for r in &self.rules {
            let status = match &r.empty {
                None => "ok".to_string(),
                Some(reason) => format!("EMPTY: {}", reason.describe()),
            };
            out.push_str(&format!(
                "  clause {:>3}  {} {}  —  {}\n",
                r.clause,
                r.kind.as_str(),
                r.head_display,
                status
            ));
            if !r.slots.is_empty() && r.empty.is_none() {
                let rendered: Vec<String> =
                    r.slots.iter().map(|(v, d)| format!("{v}: {d}")).collect();
                out.push_str(&format!("             {}\n", rendered.join(", ")));
            }
        }
        out
    }
}

/// Per-fluent conclusions of one interpreter run.
struct FInfo {
    can_hold: bool,
    values: Option<Vec<Term>>,
}

/// One set of assumptions plus accumulated per-fluent conclusions.
pub(crate) struct Env<'a> {
    plan: &'a Plan,
    closed: bool,
    input_events: BTreeSet<FluentKey>,
    input_fluents: BTreeSet<FluentKey>,
    /// Whether a fluent that is neither defined nor declared can be
    /// assumed to never hold. Always true under lint semantics; true
    /// only for closed schemas under strict semantics.
    undeclared_never_holds: bool,
    fluents: HashMap<FluentKey, FInfo>,
}

impl<'a> Env<'a> {
    /// Whether a referenced fluent can ever hold under this run's
    /// assumptions. Unanalyzed defined fluents (forward references are
    /// impossible in a stratified plan, but be defensive) and declared
    /// input fluents conservatively can.
    pub(crate) fn can_hold(&self, key: FluentKey) -> bool {
        if let Some(info) = self.fluents.get(&key) {
            return info.can_hold;
        }
        if self.plan.defined().contains(&key) || self.input_fluents.contains(&key) {
            return true;
        }
        !self.undeclared_never_holds
    }

    /// The derivable value set of a referenced fluent, when known to be
    /// finite and ground.
    pub(crate) fn values(&self, key: FluentKey) -> Option<&[Term]> {
        self.fluents
            .get(&key)
            .filter(|i| i.can_hold)
            .and_then(|i| i.values.as_deref())
    }

    /// Renders a key as `name/arity`.
    pub(crate) fn key_name(&self, key: FluentKey) -> String {
        format!("{}/{}", self.plan.symbols().name(key.0), key.1)
    }
}

use interp::{analyze_simple, analyze_static};

/// Parses `inputEvent(name/arity)` / `inputFluent(name/arity)`
/// declaration facts out of the plan's fact store, mirroring
/// `rtec-lint`'s model. Returns `None` when no well-formed declaration
/// is present (open schema).
fn declarations(plan: &Plan) -> Option<(BTreeSet<FluentKey>, BTreeSet<FluentKey>)> {
    let symbols = plan.symbols();
    let ev = symbols.get("inputEvent");
    let fl = symbols.get("inputFluent");
    let slash = symbols.get("/");
    let (Some(slash), true) = (slash, ev.is_some() || fl.is_some()) else {
        return None;
    };
    let mut events = BTreeSet::new();
    let mut fluents = BTreeSet::new();
    let mut any = false;
    for fact in plan.facts().iter() {
        let Some(sig) = fact.signature() else {
            continue;
        };
        let target = if Some(sig.0) == ev && sig.1 == 1 {
            &mut events
        } else if Some(sig.0) == fl && sig.1 == 1 {
            &mut fluents
        } else {
            continue;
        };
        let spec = &fact.args()[0];
        if spec.signature() != Some((slash, 2)) {
            continue;
        }
        let Some(name) = spec.args()[0].functor() else {
            continue;
        };
        let Term::Int(arity) = spec.args()[1] else {
            continue;
        };
        if arity < 0 {
            continue;
        }
        target.insert((name, arity as usize));
        any = true;
    }
    any.then_some((events, fluents))
}

/// The raw output of one interpreter run.
struct Run {
    rules: Vec<RuleFacts>,
    fluents: Vec<FluentFacts>,
    /// Clause indices with pruning-kind emptiness proofs.
    unsat_clauses: BTreeSet<usize>,
    /// Clause indices with unreachable triggers (closed schema).
    unreachable_clauses: BTreeSet<usize>,
    /// Defined fluents that can never hold.
    never_holds: BTreeSet<FluentKey>,
}

fn run(plan: &Plan, closed: bool, undeclared_never_holds: bool) -> Run {
    let (input_events, input_fluents) = declarations(plan).unwrap_or_default();
    let mut env = Env {
        plan,
        closed,
        input_events,
        input_fluents,
        undeclared_never_holds,
        fluents: HashMap::new(),
    };
    let mut out = Run {
        rules: Vec::new(),
        fluents: Vec::new(),
        unsat_clauses: BTreeSet::new(),
        unreachable_clauses: BTreeSet::new(),
        never_holds: BTreeSet::new(),
    };

    let render_slots = |vars: &rtec_plan::ir::VarTable, doms: &[Dom]| -> Vec<(String, String)> {
        vars.syms
            .iter()
            .zip(doms.iter())
            .map(|(v, d)| {
                (
                    plan.symbols().name(*v).to_string(),
                    d.render(plan.symbols()),
                )
            })
            .collect()
    };

    for stratum in plan.strata() {
        let key = stratum.key;
        let mut clauses: Vec<usize> = Vec::new();
        let mut init_ok = false;
        let mut term_ok = false;
        let mut init_values: Option<Vec<Term>> = Some(Vec::new());
        let mut static_ok = false;
        let mut static_values: Option<Vec<Term>> = Some(Vec::new());

        // Accumulates a satisfiable rule's ground head value into the
        // fluent's derivable set; a non-ground head value makes the set
        // unknown (`None`).
        fn add_value(set: &mut Option<Vec<Term>>, value: Option<Term>) {
            match (set.as_mut(), value) {
                (Some(s), Some(v)) => {
                    if !s.contains(&v) {
                        s.push(v);
                    }
                }
                (Some(_), None) => *set = None,
                (None, _) => {}
            }
        }

        for rule in &stratum.simple {
            clauses.push(rule.rule.clause);
            let (reason, doms) = analyze_simple(rule, &env);
            if let Some(r) = &reason {
                if matches!(r, EmptyReason::UnreachableTrigger { .. }) {
                    out.unreachable_clauses.insert(rule.rule.clause);
                } else {
                    out.unsat_clauses.insert(rule.rule.clause);
                }
            } else {
                let head_value = interp::lterm_term(&rule.head_value);
                match rule.rule.kind {
                    SimpleKind::Initiated => {
                        init_ok = true;
                        add_value(&mut init_values, head_value);
                    }
                    SimpleKind::Terminated => term_ok = true,
                }
            }
            out.rules.push(RuleFacts {
                clause: rule.rule.clause,
                kind: match rule.rule.kind {
                    SimpleKind::Initiated => RuleKind::Initiated,
                    SimpleKind::Terminated => RuleKind::Terminated,
                },
                head: key,
                head_display: rule.rule.fvp.display(plan.symbols()),
                empty: reason,
                slots: render_slots(&rule.vars, &doms),
            });
        }

        for rule in &stratum.statics {
            clauses.push(rule.rule.clause);
            let outcome = analyze_static(rule, key, &env);
            if outcome.reason.is_some() {
                if outcome.prunes {
                    out.unsat_clauses.insert(rule.rule.clause);
                }
            } else {
                static_ok = true;
                add_value(&mut static_values, interp::lterm_term(&rule.head_value));
            }
            out.rules.push(RuleFacts {
                clause: rule.rule.clause,
                kind: RuleKind::HoldsFor,
                head: key,
                head_display: rule.rule.fvp.display(plan.symbols()),
                empty: outcome.reason,
                slots: render_slots(&rule.vars, &outcome.doms),
            });
        }

        let (can_hold, values) = if stratum.has_simple {
            (init_ok, init_values.clone())
        } else {
            (static_ok, static_values)
        };
        // A simple fluent terminates through a satisfiable terminatedAt
        // rule, or through a cross-value initiation (initiating f=v2
        // closes an open f=v1 interval): possible whenever the
        // satisfiable initiation values are not a single known ground
        // value.
        let cross_value = match &init_values {
            None => true,
            Some(vals) => vals.len() >= 2,
        };
        let can_terminate = term_ok || cross_value;
        env.fluents.insert(
            key,
            FInfo {
                can_hold,
                values: values.clone(),
            },
        );
        if !can_hold {
            out.never_holds.insert(key);
        }
        out.fluents.push(FluentFacts {
            key,
            name: env.key_name(key),
            simple: stratum.has_simple,
            can_hold,
            can_terminate: stratum.has_simple.then_some(can_terminate),
            values: values.map(|vs| {
                vs.iter()
                    .map(|v| v.display(plan.symbols()).to_string())
                    .collect()
            }),
            clauses,
        });
    }
    out
}

/// Analyzes a compiled plan under both semantics (see the crate docs).
pub fn analyze_plan(plan: &Plan) -> Analysis {
    let closed = declarations(plan).is_some();
    let lint = run(plan, closed, true);
    // Under a closed schema the two sets of assumptions coincide; with
    // an open schema the strict run must assume undeclared fluents may
    // be fed by the stream.
    let strict = if closed {
        None
    } else {
        Some(run(plan, closed, false))
    };
    let (unsat, unreachable, never) = match &strict {
        Some(s) => (
            s.unsat_clauses.clone(),
            s.unreachable_clauses.clone(),
            s.never_holds.clone(),
        ),
        None => (
            lint.unsat_clauses.clone(),
            lint.unreachable_clauses.clone(),
            lint.never_holds.clone(),
        ),
    };
    Analysis {
        rules: lint.rules,
        fluents: lint.fluents,
        closed_schema: closed,
        proofs: OptimizeProofs {
            never_holds: never,
            unsat_clauses: unsat,
            unreachable_clauses: unreachable,
        },
    }
}

/// Compiles `desc` to a plan and analyzes it.
pub fn analyze(desc: &CompiledDescription) -> Analysis {
    analyze_plan(&Plan::compile(desc))
}

/// Compiles `desc` and rewrites the plan under this crate's proofs: the
/// `RTEC_EVAL=optimized` evaluator.
pub fn optimized_plan(desc: &CompiledDescription) -> Plan {
    let plan = Plan::compile(desc);
    let proofs = analyze_plan(&plan).proofs().clone();
    plan.optimize(&proofs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::description::EventDescription;

    fn compiled(src: &str) -> CompiledDescription {
        EventDescription::parse(src)
            .expect("parses")
            .compile()
            .expect("compiles")
    }

    fn rule_for(a: &Analysis, clause: usize) -> &RuleFacts {
        a.rules
            .iter()
            .find(|r| r.clause == clause)
            .unwrap_or_else(|| panic!("no facts for clause {clause}"))
    }

    fn fluent_named<'a>(a: &'a Analysis, name: &str) -> &'a FluentFacts {
        a.fluents
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no facts for fluent {name}"))
    }

    #[test]
    fn contradictory_comparisons_are_empty() {
        let a = analyze(&compiled(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V, C), T), C > 10, C < 5.
             initiatedAt(f(V)=true, T) :- happensAt(e(V, C), T), C > 10, C < 20.
             terminatedAt(f(V)=true, T) :- happensAt(g(V), T).",
        ));
        assert!(matches!(
            rule_for(&a, 0).empty,
            Some(EmptyReason::Contradiction(_))
        ));
        assert!(rule_for(&a, 1).empty.is_none());
        // The satisfiable initiation keeps the fluent alive; the empty
        // clause is provable on any stream, so it reaches the proofs.
        assert!(fluent_named(&a, "f/1").can_hold);
        assert!(a.proofs().unsat_clauses.contains(&0));
        assert!(!a.proofs().unsat_clauses.contains(&1));
    }

    #[test]
    fn never_holding_fluent_poisons_dependents_under_lint_semantics() {
        // `ghost` is neither defined nor declared: under lint semantics
        // it never holds, so `f` can never hold either. With an open
        // schema the stream could feed `ghost`, so the strict proofs
        // must stay empty.
        let a = analyze(&compiled(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T), holdsAt(ghost(V)=true, T).",
        ));
        assert!(!a.closed_schema);
        assert!(matches!(
            &rule_for(&a, 0).empty,
            Some(EmptyReason::NeverHolds { fluent }) if fluent == "ghost/1"
        ));
        assert!(!fluent_named(&a, "f/1").can_hold);
        assert!(a.proofs().is_empty());
    }

    #[test]
    fn closed_schema_makes_never_holds_a_proof() {
        let a = analyze(&compiled(
            "inputEvent(e/1).
             initiatedAt(f(V)=true, T) :- happensAt(e(V), T), holdsAt(ghost(V)=true, T).",
        ));
        assert!(a.closed_schema);
        assert!(a.proofs().unsat_clauses.contains(&1));
        assert!(a.proofs().never_holds.len() == 1);
    }

    #[test]
    fn closed_schema_flags_unreachable_triggers() {
        let a = analyze(&compiled(
            "inputEvent(e/1).
             initiatedAt(f(V)=true, T) :- happensAt(e(V), T).
             initiatedAt(f(V)=true, T) :- happensAt(phantom(V), T).",
        ));
        assert!(matches!(
            &rule_for(&a, 2).empty,
            Some(EmptyReason::UnreachableTrigger { event }) if event == "phantom/1"
        ));
        assert!(a.proofs().unreachable_clauses.contains(&2));
        assert!(!a.proofs().unsat_clauses.contains(&2));
        assert!(fluent_named(&a, "f/1").can_hold);
    }

    #[test]
    fn disjoint_value_query_is_empty() {
        // `s` can only ever be `lo`; querying `hi` is provably empty.
        let a = analyze(&compiled(
            "initiatedAt(s(V)=lo, T) :- happensAt(e(V), T).
             terminatedAt(s(V)=lo, T) :- happensAt(g(V), T).
             initiatedAt(f(V)=true, T) :- happensAt(e(V), T), holdsAt(s(V)=hi, T).
             terminatedAt(f(V)=true, T) :- happensAt(g(V), T).",
        ));
        assert!(matches!(
            &rule_for(&a, 2).empty,
            Some(EmptyReason::DisjointValue { fluent, .. }) if fluent == "s/1"
        ));
        assert_eq!(
            fluent_named(&a, "s/1").values.as_deref(),
            Some(&["lo".to_string()][..])
        );
        // Sound for any stream: `s`'s value set is closed by its rules.
        assert!(a.proofs().unsat_clauses.contains(&2));
    }

    #[test]
    fn background_facts_narrow_and_refute() {
        let a = analyze(&compiled(
            "areaType(a1, fishing).
             areaType(a2, anchorage).
             initiatedAt(w(V, K)=true, T) :- happensAt(enters(V, A), T), areaType(A, K).
             initiatedAt(bad(V)=true, T) :- happensAt(enters(V, A), T), areaType(A, nowhere).
             terminatedAt(w(V, K)=true, T) :- happensAt(leaves(V), T).
             terminatedAt(bad(V)=true, T) :- happensAt(leaves(V), T).",
        ));
        let w = rule_for(&a, 2);
        assert!(w.empty.is_none());
        let area_dom = w
            .slots
            .iter()
            .find(|(v, _)| v == "A")
            .map(|(_, d)| d.clone())
            .expect("A has a domain");
        assert!(
            area_dom.contains("a1") && area_dom.contains("a2"),
            "{area_dom}"
        );
        assert!(matches!(
            rule_for(&a, 3).empty,
            Some(EmptyReason::Contradiction(_))
        ));
        assert!(a.proofs().unsat_clauses.contains(&3));
    }

    #[test]
    fn single_value_no_termination_is_unproductive() {
        let a = analyze(&compiled(
            "initiatedAt(leak(V)=true, T) :- happensAt(e(V), T).",
        ));
        let f = fluent_named(&a, "leak/1");
        assert!(f.can_hold);
        assert_eq!(f.can_terminate, Some(false));
        // A second initiation value terminates cross-value.
        let b = analyze(&compiled(
            "initiatedAt(st(V)=lo, T) :- happensAt(e(V), T).
             initiatedAt(st(V)=hi, T) :- happensAt(g(V), T).",
        ));
        assert_eq!(fluent_named(&b, "st/1").can_terminate, Some(true));
    }

    #[test]
    fn static_empty_algebra_is_detected_but_not_a_proof() {
        // `src` never holds under lint semantics (no rules, undeclared),
        // so the holdsFor body's output register is provably empty — but
        // the head-instantiation warning still fires at runtime, so the
        // rule must never be deleted.
        let a = analyze(&compiled(
            "holdsFor(agg(V)=true, I) :- holdsFor(src(V)=true, I1), union_all([I1], I).",
        ));
        assert!(matches!(
            &rule_for(&a, 0).empty,
            Some(EmptyReason::NeverHolds { fluent }) if fluent == "src/1"
        ));
        assert!(!fluent_named(&a, "agg/1").can_hold);
        assert!(a.proofs().is_empty());
    }

    #[test]
    fn ground_holds_for_reads_propagate_emptiness_without_pruning() {
        // Ground reads never prune at runtime (they propagate empty
        // lists), so the emptiness must surface as EmptyAlgebra.
        let a = analyze(&compiled(
            "inputEvent(e/1).
             inputEvent(g/1).
             holdsFor(agg=true, I) :- holdsFor(gone(x)=true, I1), union_all([I1], I).
             initiatedAt(gone(V)=true, T) :- happensAt(e(V), T), 1 > 2.
             terminatedAt(gone(V)=true, T) :- happensAt(g(V), T).",
        ));
        assert!(matches!(
            &rule_for(&a, 2).empty,
            Some(EmptyReason::EmptyAlgebra { fluent }) if fluent == "agg/0"
        ));
        // EmptyAlgebra affects can_hold but is not a deletion proof.
        assert!(!fluent_named(&a, "agg/0").can_hold);
        assert!(!a.proofs().unsat_clauses.contains(&2));
        // The contradictory initiation is a proof.
        assert!(a.proofs().unsat_clauses.contains(&3));
    }

    #[test]
    fn table_renders() {
        let a = analyze(&compiled(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V, C), T), C > 10, C < 5.
             terminatedAt(f(V)=true, T) :- happensAt(g(V), T).",
        ));
        let table = a.render_table();
        assert!(table.contains("fluents (1)"), "{table}");
        assert!(table.contains("EMPTY"), "{table}");
        assert!(table.contains("open"), "{table}");
    }
}
