//! Abstract value domains for rule variables.
//!
//! Each rule variable (slot) carries a [`Dom`]: an over-approximation
//! of the ground terms the variable can take in *any* solution of the
//! rule body. Domains only ever shrink (by intersection with evidence
//! from positive literals); an empty intersection proves the body
//! unsatisfiable. All numeric reasoning happens in `f64`, mirroring the
//! engine's arithmetic exactly (`rtec::eval::arith` converts `i64`
//! operands with `as f64` before comparing, so the abstract and the
//! concrete semantics share one number line).

use rtec::term::Term;

/// Abstract domain of one rule variable.
#[derive(Clone, Debug, PartialEq)]
pub enum Dom {
    /// No information: any ground term.
    Any,
    /// One of finitely many ground terms.
    Fin(Vec<Term>),
    /// A number in the closed interval `[lo, hi]` (bounds may be
    /// infinite). Bounds are *loosened* closed bounds: strict
    /// comparisons narrow to their closed hull, which over-approximates
    /// — sound for emptiness proofs, which only ever need "the body has
    /// no solution outside this set".
    Num(f64, f64),
}

/// A narrowing constraint derived from one body literal.
#[derive(Clone, Debug)]
pub enum Narrow {
    /// The variable must be one of these ground terms.
    Fin(Vec<Term>),
    /// The variable must be a number in `[lo, hi]`.
    Range(f64, f64),
}

/// The exact `f64` the engine's arithmetic would evaluate a ground term
/// to (`None` for non-numeric terms).
pub fn num_exact(t: &Term) -> Option<f64> {
    match t {
        Term::Int(n) => Some(*n as f64),
        Term::Float(f) => Some(*f),
        _ => None,
    }
}

/// Whether two ground terms can compare equal at runtime: structurally
/// identical, or numerically equal under the engine's `f64` arithmetic
/// (`5 = 5.0` holds in a comparison even though the terms differ
/// structurally).
pub fn may_equal(a: &Term, b: &Term) -> bool {
    if a == b {
        return true;
    }
    matches!((num_exact(a), num_exact(b)), (Some(x), Some(y)) if x == y)
}

impl Dom {
    /// The numeric range this domain admits: `None` when no member can
    /// evaluate to a number (a numeric comparison then has no solution),
    /// otherwise the closed `[lo, hi]` hull of the numeric members.
    pub fn num_range(&self) -> Option<(f64, f64)> {
        match self {
            Dom::Any => Some((f64::NEG_INFINITY, f64::INFINITY)),
            Dom::Num(lo, hi) => Some((*lo, *hi)),
            Dom::Fin(terms) => {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut any = false;
                for t in terms {
                    if let Some(x) = num_exact(t) {
                        any = true;
                        lo = lo.min(x);
                        hi = hi.max(x);
                    }
                }
                any.then_some((lo, hi))
            }
        }
    }

    /// Whether the domain may contain `ground` (structurally or by
    /// numeric equality).
    pub fn may_contain(&self, ground: &Term) -> bool {
        match self {
            Dom::Any => true,
            Dom::Fin(terms) => terms.iter().any(|t| may_equal(t, ground)),
            Dom::Num(lo, hi) => match num_exact(ground) {
                Some(x) => *lo <= x && x <= *hi,
                None => false,
            },
        }
    }

    /// Intersects the domain with a constraint. `None` means the
    /// intersection is empty — the body is unsatisfiable.
    pub fn intersect(&self, n: &Narrow) -> Option<Dom> {
        match (self, n) {
            (Dom::Any, Narrow::Fin(s)) => Some(Dom::Fin(s.clone())),
            (Dom::Any, Narrow::Range(lo, hi)) => (lo <= hi).then_some(Dom::Num(*lo, *hi)),
            (Dom::Fin(a), Narrow::Fin(b)) => {
                let kept: Vec<Term> = a
                    .iter()
                    .filter(|t| b.iter().any(|u| may_equal(t, u)))
                    .cloned()
                    .collect();
                (!kept.is_empty()).then_some(Dom::Fin(kept))
            }
            (Dom::Fin(a), Narrow::Range(lo, hi)) => {
                // Non-numeric members cannot satisfy the numeric
                // comparison that produced the range: drop them.
                let kept: Vec<Term> = a
                    .iter()
                    .filter(|t| num_exact(t).is_some_and(|x| *lo <= x && x <= *hi))
                    .cloned()
                    .collect();
                (!kept.is_empty()).then_some(Dom::Fin(kept))
            }
            (Dom::Num(a, b), Narrow::Range(lo, hi)) => {
                let (lo, hi) = (a.max(*lo), b.min(*hi));
                (lo <= hi).then_some(Dom::Num(lo, hi))
            }
            (Dom::Num(a, b), Narrow::Fin(s)) => {
                let kept: Vec<Term> = s
                    .iter()
                    .filter(|t| num_exact(t).is_some_and(|x| *a <= x && x <= *b))
                    .cloned()
                    .collect();
                (!kept.is_empty()).then_some(Dom::Fin(kept))
            }
        }
    }

    /// Whether this domain and `other` are provably disjoint — no
    /// ground term can satisfy both (used to refute `X = Y`).
    pub fn disjoint(&self, other: &Dom) -> bool {
        match (self, other) {
            (Dom::Any, _) | (_, Dom::Any) => false,
            (Dom::Fin(a), Dom::Fin(b)) => !a.iter().any(|t| b.iter().any(|u| may_equal(t, u))),
            (Dom::Fin(a), num @ Dom::Num(..)) | (num @ Dom::Num(..), Dom::Fin(a)) => {
                !a.iter().any(|t| num.may_contain(t))
            }
            (Dom::Num(a, b), Dom::Num(c, d)) => b < c || d < a,
        }
    }

    /// The single value the domain is pinned to, if any.
    pub fn singleton(&self) -> Option<&Term> {
        match self {
            Dom::Fin(terms) if terms.len() == 1 => Some(&terms[0]),
            _ => None,
        }
    }

    /// Renders the domain for the per-rule facts table.
    pub fn render(&self, symbols: &rtec::symbol::SymbolTable) -> String {
        let num = |x: f64| {
            if x == f64::NEG_INFINITY {
                "-inf".to_string()
            } else if x == f64::INFINITY {
                "inf".to_string()
            } else {
                format!("{x}")
            }
        };
        match self {
            Dom::Any => "any".to_string(),
            Dom::Num(lo, hi) => format!("[{}, {}]", num(*lo), num(*hi)),
            Dom::Fin(terms) => {
                let mut names: Vec<String> = terms
                    .iter()
                    .take(6)
                    .map(|t| t.display(symbols).to_string())
                    .collect();
                if terms.len() > 6 {
                    names.push(format!("… +{}", terms.len() - 6));
                }
                format!("{{{}}}", names.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_equality_crosses_int_float() {
        assert!(may_equal(&Term::Int(5), &Term::Float(5.0)));
        assert!(!may_equal(&Term::Int(5), &Term::Float(5.5)));
    }

    #[test]
    fn fin_range_intersection_drops_non_numeric() {
        let mut sym = rtec::symbol::SymbolTable::new();
        let a = sym.intern("a");
        let d = Dom::Fin(vec![Term::Atom(a), Term::Int(3), Term::Int(9)]);
        let narrowed = d.intersect(&Narrow::Range(0.0, 5.0)).unwrap();
        assert_eq!(narrowed, Dom::Fin(vec![Term::Int(3)]));
        assert!(d.intersect(&Narrow::Range(100.0, 200.0)).is_none());
    }

    #[test]
    fn range_intersection_refutes() {
        let d = Dom::Num(5.0, f64::INFINITY);
        assert!(d
            .intersect(&Narrow::Range(f64::NEG_INFINITY, 3.0))
            .is_none());
        let ok = d.intersect(&Narrow::Range(f64::NEG_INFINITY, 7.0)).unwrap();
        assert_eq!(ok, Dom::Num(5.0, 7.0));
    }

    #[test]
    fn disjointness() {
        let a = Dom::Num(0.0, 1.0);
        let b = Dom::Num(2.0, 3.0);
        assert!(a.disjoint(&b));
        let f = Dom::Fin(vec![Term::Float(2.5)]);
        assert!(!f.disjoint(&b));
        assert!(f.disjoint(&a));
    }
}
