//! The per-rule abstract interpreter.
//!
//! Each rule body is walked once, literal by literal, accumulating
//! per-slot [`Dom`]s and looking for *refutations* — evidence that the
//! body, as a conjunction, has no solution on any stream conforming to
//! the declared input schema. Because a conjunction is order-independent
//! for satisfiability, evidence accumulates by intersection: narrowing
//! discovered at a later literal can retroactively contradict an earlier
//! one, and any empty intersection is a proof.

use crate::domain::{Dom, Narrow};
use crate::{EmptyReason, Env};
use rtec::ast::CmpOp;
use rtec::term::Term;
use rtec_plan::ir::{LBody, LStatic, LTerm, LoweredSimple, LoweredStatic, VarTable};
use std::collections::HashSet;

/// Whether a lowered term contains no slots.
pub(crate) fn lterm_ground(t: &LTerm) -> bool {
    match t {
        LTerm::Slot(_) => false,
        LTerm::Atom(_) | LTerm::Int(_) | LTerm::Float(_) => true,
        LTerm::Compound(_, args) | LTerm::List(args) => args.iter().all(lterm_ground),
    }
}

/// The `(functor, arity)` key of a statically-known predicate pattern.
pub(crate) fn lterm_key(t: &LTerm) -> Option<(rtec::symbol::Symbol, usize)> {
    match t {
        LTerm::Atom(s) => Some((*s, 0)),
        LTerm::Compound(s, args) => Some((*s, args.len())),
        _ => None,
    }
}

/// Converts a ground lowered term back to a [`Term`].
pub(crate) fn lterm_term(t: &LTerm) -> Option<Term> {
    match t {
        LTerm::Slot(_) => None,
        LTerm::Atom(s) => Some(Term::Atom(*s)),
        LTerm::Int(n) => Some(Term::Int(*n)),
        LTerm::Float(f) => Some(Term::Float(*f)),
        LTerm::Compound(s, args) => args
            .iter()
            .map(lterm_term)
            .collect::<Option<Vec<_>>>()
            .map(|a| Term::Compound(*s, a)),
        LTerm::List(items) => items
            .iter()
            .map(lterm_term)
            .collect::<Option<Vec<_>>>()
            .map(Term::List),
    }
}

/// One comparison side, abstracted.
fn operand_dom(t: &Term, vars: &VarTable, doms: &[Dom]) -> Dom {
    match t {
        Term::Var(v) => match vars.slot(*v) {
            Some(s) => doms[s as usize].clone(),
            None => Dom::Any,
        },
        _ if t.is_ground() => Dom::Fin(vec![t.clone()]),
        // Arithmetic expressions and partially-ground compounds: give up.
        _ => Dom::Any,
    }
}

/// Narrows `doms[slot]` with `n`; an empty intersection becomes a
/// contradiction built by `reason`.
fn narrow_slot(
    doms: &mut [Dom],
    slot: u16,
    n: &Narrow,
    reason: impl FnOnce() -> EmptyReason,
) -> Result<(), EmptyReason> {
    match doms[slot as usize].intersect(n) {
        Some(d) => {
            doms[slot as usize] = d;
            Ok(())
        }
        None => Err(reason()),
    }
}

/// Applies one comparison literal: refutes, then narrows bare-variable
/// sides against the other side's range.
fn apply_compare(
    op: CmpOp,
    lhs: &Term,
    rhs: &Term,
    vars: &VarTable,
    doms: &mut [Dom],
    env: &Env<'_>,
) -> Result<(), EmptyReason> {
    let symbols = env.plan.symbols();
    let contradiction = || {
        EmptyReason::Contradiction(format!(
            "comparison `{} {} {}` can never hold",
            lhs.display(symbols),
            op.as_str(),
            rhs.display(symbols)
        ))
    };
    let l = operand_dom(lhs, vars, doms);
    let r = operand_dom(rhs, vars, doms);
    match op {
        CmpOp::Eq => {
            if l.disjoint(&r) {
                return Err(contradiction());
            }
        }
        CmpOp::Neq => {
            if let (Some(a), Some(b)) = (l.singleton(), r.singleton()) {
                if crate::domain::may_equal(a, b) {
                    return Err(contradiction());
                }
            }
        }
        CmpOp::Lt | CmpOp::Gt | CmpOp::Le | CmpOp::Ge => {
            // Ordering comparisons are numeric-only at runtime: a side
            // with no possible numeric value can never satisfy one.
            let (Some((llo, lhi)), Some((rlo, rhi))) = (l.num_range(), r.num_range()) else {
                return Err(contradiction());
            };
            let refuted = match op {
                CmpOp::Lt => llo >= rhi,
                CmpOp::Gt => lhi <= rlo,
                CmpOp::Le => llo > rhi,
                CmpOp::Ge => lhi < rlo,
                _ => unreachable!(),
            };
            if refuted {
                return Err(contradiction());
            }
        }
    }

    // Narrowing: only bare variables, against the other side's
    // abstraction (closed hulls for strict comparisons — sound
    // over-approximation).
    let sides = [(lhs, &r), (rhs, &l)];
    for (i, (side, other)) in sides.into_iter().enumerate() {
        let Term::Var(v) = side else { continue };
        let Some(slot) = vars.slot(*v) else { continue };
        let n = match op {
            CmpOp::Eq => match other {
                Dom::Any => None,
                Dom::Fin(s) => Some(Narrow::Fin(s.clone())),
                Dom::Num(lo, hi) => Some(Narrow::Range(*lo, *hi)),
            },
            CmpOp::Neq => None,
            CmpOp::Lt | CmpOp::Le => {
                let bound = other
                    .num_range()
                    .map(|(lo, hi)| if i == 0 { hi } else { lo });
                bound.map(|b| {
                    if i == 0 {
                        Narrow::Range(f64::NEG_INFINITY, b)
                    } else {
                        Narrow::Range(b, f64::INFINITY)
                    }
                })
            }
            CmpOp::Gt | CmpOp::Ge => {
                let bound = other
                    .num_range()
                    .map(|(lo, hi)| if i == 0 { lo } else { hi });
                bound.map(|b| {
                    if i == 0 {
                        Narrow::Range(b, f64::INFINITY)
                    } else {
                        Narrow::Range(f64::NEG_INFINITY, b)
                    }
                })
            }
        };
        if let Some(n) = n {
            narrow_slot(doms, slot, &n, contradiction)?;
        }
    }
    Ok(())
}

/// Applies one positive background lookup: per-column narrowing against
/// the fact store (facts are baked into the plan, so this evidence is
/// stream-independent). Signatures with *no* facts are deliberately not
/// treated as evidence — the engine already warns about them at run
/// time, and cascading emptiness from missing background data would
/// flood the lint report.
fn apply_atemporal(
    pattern: &LTerm,
    sig_warn: &Option<String>,
    vars: &VarTable,
    doms: &mut [Dom],
    env: &Env<'_>,
) -> Result<(), EmptyReason> {
    if sig_warn.is_some() {
        return Ok(());
    }
    let Some(sig) = lterm_key(pattern) else {
        return Ok(());
    };
    let facts: Vec<&Term> = env
        .plan
        .facts()
        .iter()
        .filter(|f| f.signature() == Some(sig))
        .collect();
    if facts.is_empty() {
        return Ok(());
    }
    let args: &[LTerm] = match pattern {
        LTerm::Compound(_, args) => args,
        _ => return Ok(()),
    };
    for (i, arg) in args.iter().enumerate() {
        match arg {
            LTerm::Slot(s) => {
                let mut col: Vec<Term> = Vec::new();
                for f in &facts {
                    let v = &f.args()[i];
                    if !col.contains(v) {
                        col.push(v.clone());
                    }
                }
                narrow_slot(doms, *s, &Narrow::Fin(col), || {
                    EmptyReason::Contradiction(format!(
                        "variable `{}` cannot match any `{}` background fact",
                        env.plan.symbols().name(vars.syms[*s as usize]),
                        env.key_name(sig),
                    ))
                })?;
            }
            _ => {
                let Some(g) = lterm_term(arg) else { continue };
                if !facts.iter().any(|f| f.args()[i] == g) {
                    return Err(EmptyReason::Contradiction(format!(
                        "no `{}` background fact has `{}` in position {}",
                        env.key_name(sig),
                        g.display(env.plan.symbols()),
                        i + 1,
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Applies one positive `holdsAt`/`holdsFor` fluent reference: refutes
/// never-holding fluents and out-of-set values, narrows slot-valued
/// value patterns by the fluent's derivable value set. Value matching
/// in the engine is structural (cache keys are ground FVPs), so the
/// membership checks here are structural too.
fn apply_fluent_ref(
    fluent: &LTerm,
    value: &LTerm,
    env: &Env<'_>,
    doms: &mut [Dom],
    vars: &VarTable,
) -> Result<(), EmptyReason> {
    let Some(key) = lterm_key(fluent) else {
        return Ok(());
    };
    if !env.can_hold(key) {
        return Err(EmptyReason::NeverHolds {
            fluent: env.key_name(key),
        });
    }
    let Some(values) = env.values(key) else {
        return Ok(());
    };
    match value {
        LTerm::Slot(s) => narrow_slot(doms, *s, &Narrow::Fin(values.to_vec()), || {
            EmptyReason::DisjointValue {
                fluent: env.key_name(key),
                value: format!(
                    "`{}`'s domain",
                    env.plan.symbols().name(vars.syms[*s as usize])
                ),
            }
        }),
        _ => {
            if let Some(g) = lterm_term(value) {
                if !values.contains(&g) {
                    return Err(EmptyReason::DisjointValue {
                        fluent: env.key_name(key),
                        value: format!("`{}`", g.display(env.plan.symbols())),
                    });
                }
            }
            Ok(())
        }
    }
}

/// Abstractly interprets one simple rule's body. Returns the emptiness
/// proof (if any) and the final per-slot domains.
pub(crate) fn analyze_simple(
    rule: &LoweredSimple,
    env: &Env<'_>,
) -> (Option<EmptyReason>, Vec<Dom>) {
    let mut doms = vec![Dom::Any; rule.vars.len()];
    // The time slot is always bound to the candidate timepoint.
    doms[rule.time_slot as usize] = Dom::Num(f64::NEG_INFINITY, f64::INFINITY);

    if env.closed && !env.input_events.contains(&rule.first_sig) {
        let reason = EmptyReason::UnreachableTrigger {
            event: env.key_name(rule.first_sig),
        };
        return (Some(reason), doms);
    }

    for lit in &rule.body {
        let step = match lit {
            LBody::HappensAt { .. } => Ok(()),
            LBody::HoldsAt {
                negated: false,
                fluent,
                value,
            } => apply_fluent_ref(fluent, value, env, &mut doms, &rule.vars),
            LBody::HoldsAt { negated: true, .. } => Ok(()),
            LBody::Atemporal {
                negated: false,
                pattern,
                sig_warn,
            } => apply_atemporal(pattern, sig_warn, &rule.vars, &mut doms, env),
            LBody::Atemporal { negated: true, .. } => Ok(()),
            LBody::Compare { op, lhs, rhs } => {
                apply_compare(*op, lhs, rhs, &rule.vars, &mut doms, env)
            }
        };
        if let Err(reason) = step {
            return (Some(reason), doms);
        }
    }
    (None, doms)
}

/// Outcome of abstractly interpreting one `holdsFor` rule.
pub(crate) struct StaticOutcome {
    /// The emptiness proof, if any.
    pub reason: Option<EmptyReason>,
    /// Whether the proof is of the *pruning* kind: the rule produces no
    /// output rows at all (safe to consider for deletion). An
    /// `EmptyAlgebra` proof is not — the rule still runs its head
    /// instantiation with an empty interval list.
    pub prunes: bool,
    /// Final per-slot domains.
    pub doms: Vec<Dom>,
}

/// Abstractly interprets one static rule of the fluent `key`: candidate
/// seeding, the lowered body (including interval-register emptiness
/// propagation), and the output register.
pub(crate) fn analyze_static(
    rule: &LoweredStatic,
    key: rtec::ast::FluentKey,
    env: &Env<'_>,
) -> StaticOutcome {
    let mut doms = vec![Dom::Any; rule.vars.len()];
    let mut empty_regs: HashSet<u16> = HashSet::new();

    // Candidate seeding matches the *original* body's holdsFor patterns
    // against the cache: a non-ground pattern over a never-holding
    // fluent yields no instances, and failing to match is a prune.
    for lit in &rule.body {
        let prune = |reason| StaticOutcome {
            reason: Some(reason),
            prunes: true,
            doms: Vec::new(),
        };
        match lit {
            LStatic::HoldsFor { fluent, value, out } => {
                let Some(key) = lterm_key(fluent) else {
                    continue;
                };
                let ground = lterm_ground(fluent) && lterm_ground(value);
                if ground {
                    // A ground read never prunes: it loads the (possibly
                    // empty) interval list and continues.
                    let value_dead = env
                        .values(key)
                        .is_some_and(|vals| lterm_term(value).is_some_and(|g| !vals.contains(&g)));
                    if !env.can_hold(key) || value_dead {
                        empty_regs.insert(*out);
                    }
                } else {
                    // A non-ground read iterates the fluent's cached
                    // instances: none to iterate (or none matching the
                    // value pattern) is a prune.
                    match apply_fluent_ref(fluent, value, env, &mut doms, &rule.vars) {
                        Ok(()) => {}
                        Err(reason) => return prune(reason),
                    }
                }
            }
            LStatic::Union { inputs, out } => {
                if !inputs.is_empty() && inputs.iter().all(|r| empty_regs.contains(r)) {
                    empty_regs.insert(*out);
                }
            }
            LStatic::Intersect { inputs, out } => {
                if inputs.iter().any(|r| empty_regs.contains(r)) {
                    empty_regs.insert(*out);
                }
            }
            LStatic::RelComplement { base, out, .. } => {
                if empty_regs.contains(base) {
                    empty_regs.insert(*out);
                }
            }
            LStatic::Atemporal {
                negated: false,
                pattern,
                sig_warn,
            } => match apply_atemporal(pattern, sig_warn, &rule.vars, &mut doms, env) {
                Ok(()) => {}
                Err(reason) => return prune(reason),
            },
            LStatic::Atemporal { negated: true, .. } => {}
            LStatic::Compare { op, lhs, rhs } => {
                match apply_compare(*op, lhs, rhs, &rule.vars, &mut doms, env) {
                    Ok(()) => {}
                    Err(reason) => return prune(reason),
                }
            }
        }
    }

    // A rule with no holdsFor condition at all seeds zero candidates
    // and can never run; validation rejects that shape, so it is not
    // reported here.
    let reason = if empty_regs.contains(&rule.out_reg) {
        Some(EmptyReason::EmptyAlgebra {
            fluent: env.key_name(key),
        })
    } else {
        None
    };
    StaticOutcome {
        reason,
        prunes: false,
        doms,
    }
}
