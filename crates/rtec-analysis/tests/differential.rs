//! Differential tests for the analysis-driven plan optimizer: the
//! optimized plan must be *observationally identical* to both the AST
//! interpreter and the unoptimized plan — same recognised intervals,
//! same inertia carries, same warnings in first-occurrence order, and
//! byte-identical checkpoint state — over randomized descriptions that
//! deliberately contain statically-empty rules, disjoint-value queries,
//! undeclared-fluent references, foldable interval algebra and
//! unreachable triggers, over the maritime gold description, and across
//! checkpoint/restore boundaries that switch into and out of the
//! optimized mode mid-stream.

use proptest::prelude::*;
use rtec::checkpoint::EngineCheckpoint;
use rtec::description::CompiledDescription;
use rtec::engine::{Engine, EngineConfig};
use rtec::{EventDescription, Timepoint};
use rtec_plan::WithPlan;

/// Everything observable about an engine at a point in time: sorted
/// rendered output rows, the warning log, and the canonical checkpoint
/// state JSON.
fn observe(engine: &Engine<'_>) -> (Vec<String>, Vec<String>, String) {
    let symbols = engine.symbols();
    let out = engine.output();
    let mut rows: Vec<String> = out
        .iter()
        .map(|(fvp, list)| format!("{} = {}", fvp.display(symbols), list))
        .collect();
    rows.sort();
    let state = serde_json::to_string(&engine.checkpoint().to_value())
        .expect("checkpoint state serializes");
    (rows, out.warnings.clone(), state)
}

fn assert_identical(reference: &Engine<'_>, optimized: &Engine<'_>, what: &str) {
    let (rrows, rwarns, rstate) = observe(reference);
    let (orows, owarns, ostate) = observe(optimized);
    assert_eq!(rrows, orows, "{what}: output rows diverge");
    assert_eq!(rwarns, owarns, "{what}: warnings diverge");
    assert_eq!(rstate, ostate, "{what}: checkpoint state diverges");
}

/// An engine running the analysis-optimized plan.
fn with_optimized<'a>(compiled: &'a CompiledDescription, config: EngineConfig) -> Engine<'a> {
    Engine::with_evaluator(
        compiled,
        config,
        Box::new(rtec_analysis::optimized_plan(compiled)),
    )
}

// ---------------------------------------------------------------------
// Randomized descriptions and streams
// ---------------------------------------------------------------------

/// A randomly generated recognition scenario, biased towards rules the
/// optimizer acts on.
#[derive(Debug, Clone)]
struct Scenario {
    desc_src: String,
    /// `(event index 0..4, entity index 0..3, time)` triples, unsorted.
    events: Vec<(usize, usize, Timepoint)>,
    window: Option<Timepoint>,
    milestones: Vec<Timepoint>,
}

/// Dead or near-dead `initiatedAt(s1(V)=true, ...)` rule bodies. Each
/// exercises one optimizer decision:
///
/// 0. contradictory time comparison — provably empty AND warning-free,
///    so the optimizer deletes it;
/// 1. disjoint-value query on a defined fluent — deleted;
/// 2. reference to an undeclared fluent — empty under a closed schema,
///    but NOT deletable (the runtime warns about `ghost` every window);
/// 3. trigger outside the declared schema — deleted when declarations
///    are present;
/// 4. contradiction guarded by a background predicate — deletable only
///    when `q` facts exist (otherwise the precomputed no-facts warning
///    must keep firing);
/// 5. satisfiable rule with a live comparison — must never be touched.
const DEAD_BODIES: [&str; 6] = [
    "happensAt(e0(V), T),\n    T >= 50, T < 10",
    "happensAt(e2(V), T),\n    holdsAt(s0(V)=mid, T)",
    "happensAt(e3(V), T),\n    holdsAt(ghost(V)=true, T)",
    "happensAt(e9(V), T)",
    "happensAt(e0(V), T),\n    q(V),\n    T < 2, T > 90",
    "happensAt(e3(V), T),\n    T >= 4",
];

/// Interval-algebra tails for `st0` over `I1` (`s0=lo`) and `I2`
/// (`s1=true`).
const STATIC_SHAPES: [&str; 4] = [
    "union_all([I1, I2], I)",
    "union_all([I1, I2], I3),\n    relative_complement_all(I3, [I2], I)",
    "intersect_all([I1, I2], I)",
    "relative_complement_all(I1, [I2], I)",
];

fn render_description(
    // Bit 0: terminate-lo rule; bit 1: pattern termination; bit 2:
    // declarations (closed schema); bit 3: dead defined fluent feeding
    // a foldable static; bit 4: disjoint-value static rule.
    flips: u8,
    dead_bodies: &[usize],
    static_shape: usize,
    facts_q: &[usize],
) -> String {
    let (term_lo, pattern_term, declared, dead_static, disjoint_static) = (
        flips & 1 != 0,
        flips & 2 != 0,
        flips & 4 != 0,
        flips & 8 != 0,
        flips & 16 != 0,
    );
    let mut src = String::new();
    for &v in facts_q {
        src.push_str(&format!("q(v{v}).\n"));
    }
    if declared {
        // The feed only ever contains e0..e3, so the schema is honest
        // and `e9` triggers are provably unreachable.
        for e in 0..4 {
            src.push_str(&format!("inputEvent(e{e}/1).\n"));
        }
    }
    src.push_str("initiatedAt(s0(V)=lo, T) :-\n    happensAt(e0(V), T).\n");
    src.push_str("initiatedAt(s0(V)=hi, T) :-\n    happensAt(e1(V), T).\n");
    if term_lo {
        src.push_str("terminatedAt(s0(V)=lo, T) :-\n    happensAt(e2(V), T).\n");
    }
    if pattern_term {
        src.push_str("terminatedAt(s0(V)=_X, T) :-\n    happensAt(e3(V), T).\n");
    }
    src.push_str(
        "initiatedAt(s1(V)=true, T) :-\n    happensAt(e1(V), T),\n    holdsAt(s0(V)=lo, T).\n",
    );
    for &i in dead_bodies {
        src.push_str(&format!(
            "initiatedAt(s1(V)=true, T) :-\n    {}.\n",
            DEAD_BODIES[i]
        ));
    }
    src.push_str("terminatedAt(s1(V)=true, T) :-\n    happensAt(e0(V), T),\n    T >= 3.\n");
    if dead_static {
        // `dead0` is defined but its only initiation is contradictory,
        // so `holdsFor(dead0(x)=true, _)` is a provably-empty ground
        // read: the optimizer folds it out of the algebra below.
        src.push_str("initiatedAt(dead0(V)=true, T) :-\n    happensAt(e0(V), T),\n    1 > 2.\n");
        src.push_str(
            "holdsFor(st2(V)=true, I) :-\n    holdsFor(s0(V)=lo, I1),\n    \
             holdsFor(dead0(x)=true, I2),\n    union_all([I1, I2], I3),\n    \
             relative_complement_all(I3, [I2], I).\n",
        );
    }
    if disjoint_static {
        // `s0` can only be lo/hi: the whole rule is deleted.
        src.push_str(
            "holdsFor(st1(V)=true, I) :-\n    holdsFor(s0(V)=mid, I1),\n    union_all([I1], I).\n",
        );
    }
    src.push_str(&format!(
        "holdsFor(st0(V)=true, I) :-\n    holdsFor(s0(V)=lo, I1),\n    \
         holdsFor(s1(V)=true, I2),\n    {}.\n",
        STATIC_SHAPES[static_shape]
    ));
    src
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let structure = (
        0u8..32,
        prop::collection::vec(0usize..DEAD_BODIES.len(), 0..4),
        0usize..STATIC_SHAPES.len(),
        prop::collection::vec(0usize..3, 0..3),
    );
    let feed = (
        prop::collection::vec((0usize..4, 0usize..3, 0i64..60), 0..40),
        // Below 6 means "unwindowed".
        0i64..25,
        prop::collection::vec(1i64..70, 1..4),
    );
    (structure, feed).prop_map(
        |((flips, dead_bodies, static_shape, facts_q), (events, window, mut milestones))| {
            milestones.sort_unstable();
            milestones.dedup();
            Scenario {
                desc_src: render_description(flips, &dead_bodies, static_shape, &facts_q),
                events,
                window: (window >= 6).then_some(window),
                milestones,
            }
        },
    )
}

/// Replays the scenario feed into the interpreter, the plan, and the
/// optimized plan, checking three-way observational equality at every
/// milestone.
fn run_differential(sc: &Scenario) {
    let desc = EventDescription::parse(&sc.desc_src)
        .unwrap_or_else(|e| panic!("parse: {e}\n{}", sc.desc_src));
    let compiled = match desc.compile() {
        Ok(c) => c,
        Err(_) => return,
    };
    let config = match sc.window {
        Some(w) => EngineConfig::windowed(w),
        None => EngineConfig::default(),
    };
    let mut interp = Engine::new(&compiled, config);
    let mut plan = Engine::with_plan(&compiled, config);
    let mut optimized = with_optimized(&compiled, config);
    let mut syms = rtec::SymbolTable::new();
    for &(ev, v, t) in &sc.events {
        let term =
            rtec::parser::parse_term(&format!("e{ev}(v{v})"), &mut syms).expect("event parses");
        interp.add_event_from(&term, &syms, t);
        plan.add_event_from(&term, &syms, t);
        optimized.add_event_from(&term, &syms, t);
    }
    for (i, &milestone) in sc.milestones.iter().enumerate() {
        interp.run_to(milestone);
        plan.run_to(milestone);
        optimized.run_to(milestone);
        assert_identical(
            &interp,
            &optimized,
            &format!("interp vs optimized, milestone {i} (run_to {milestone})"),
        );
        assert_identical(
            &plan,
            &optimized,
            &format!("plan vs optimized, milestone {i} (run_to {milestone})"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over randomized descriptions salted with statically-empty rules,
    /// disjoint-value queries, undeclared fluents, foldable algebra and
    /// unreachable triggers, the optimized plan is observationally
    /// identical to both reference evaluators at every milestone.
    #[test]
    fn optimized_matches_interpreter_and_plan(sc in scenario()) {
        run_differential(&sc);
    }
}

// ---------------------------------------------------------------------
// The optimizer must actually bite
// ---------------------------------------------------------------------

/// On the fully-loaded description every optimization kind fires: rule
/// deletion, algebra folding and stratum pre-filters all show up in
/// `Plan::stats`, and the label flips to `optimized`.
#[test]
fn optimizer_bites_on_loaded_description() {
    let src = render_description(0b11111, &[0, 1, 3], 1, &[0, 1]);
    let compiled = EventDescription::parse(&src)
        .expect("parses")
        .compile()
        .expect("compiles");
    let baseline = rtec_plan::Plan::compile(&compiled);
    let optimized = rtec_analysis::optimized_plan(&compiled);
    let (before, after) = (baseline.stats(), optimized.stats());

    assert_eq!(before.deleted_rules, 0);
    assert_eq!(before.folded_inputs, 0);
    assert_eq!(before.prefiltered_strata, 0);

    // Deleted: contradictory comparison, disjoint-value initiation,
    // unreachable e9 trigger, contradictory dead0 initiation, and the
    // disjoint-value static rule.
    assert_eq!(after.deleted_rules, 5, "{after:?}");
    assert_eq!(
        after.simple_rules,
        before.simple_rules - 4,
        "four simple rules deleted"
    );
    assert_eq!(
        after.static_rules,
        before.static_rules - 1,
        "one static rule deleted"
    );
    // Folded: dead0's register leaves st2's union and its
    // relative-complement subtraction list.
    assert!(after.folded_inputs >= 2, "{after:?}");
    assert!(after.prefiltered_strata > 0, "{after:?}");
}

/// The `ghost` reference (undefined fluent, warns at runtime) is empty
/// under a closed schema but must never be deleted: the warning is
/// observable.
#[test]
fn warning_bearing_empty_rules_survive() {
    let src = render_description(0b00100, &[2], 0, &[]);
    let compiled = EventDescription::parse(&src)
        .expect("parses")
        .compile()
        .expect("compiles");
    let analysis = rtec_analysis::analyze(&compiled);
    // The analysis proves the rule empty…
    assert!(analysis
        .rules
        .iter()
        .any(|r| matches!(&r.empty, Some(rtec_analysis::EmptyReason::NeverHolds { fluent }) if fluent == "ghost/1")));
    // …but the optimizer keeps it.
    let baseline = rtec_plan::Plan::compile(&compiled);
    let optimized = rtec_analysis::optimized_plan(&compiled);
    assert_eq!(optimized.stats().deleted_rules, 0);
    assert_eq!(
        optimized.stats().simple_rules,
        baseline.stats().simple_rules
    );
}

// ---------------------------------------------------------------------
// Maritime gold description
// ---------------------------------------------------------------------

/// The full gold maritime description over a generated Brest scenario:
/// the optimized plan matches the interpreter exactly, windowed and
/// unwindowed.
#[test]
fn optimized_matches_interpreter_on_maritime_gold() {
    let dataset = maritime::Dataset::generate(&maritime::BrestScenario::small());
    let compiled = dataset.gold_description().compile().expect("gold compiles");
    let horizon = dataset.horizon() + 1;
    for config in [EngineConfig::default(), EngineConfig::windowed(3600)] {
        let mut interp = Engine::new(&compiled, config);
        let mut optimized = with_optimized(&compiled, config);
        dataset.stream.load_into(&mut interp);
        dataset.stream.load_into(&mut optimized);
        interp.run_to(horizon);
        optimized.run_to(horizon);
        assert_identical(&interp, &optimized, "maritime gold");
        assert!(
            !interp.output().is_empty(),
            "gold run must recognise something for the comparison to bite"
        );
    }
}

// ---------------------------------------------------------------------
// Cross-mode checkpoint restore
// ---------------------------------------------------------------------

const CKPT_DESC: &str = "
initiatedAt(s0(V)=lo, T) :- happensAt(e0(V), T).
initiatedAt(s0(V)=hi, T) :- happensAt(e1(V), T).
terminatedAt(s0(V)=_X, T) :- happensAt(e3(V), T).
initiatedAt(s1(V)=true, T) :- happensAt(e1(V), T), holdsAt(s0(V)=lo, T).
initiatedAt(s1(V)=true, T) :- happensAt(e0(V), T), T >= 50, T < 10.
terminatedAt(s1(V)=true, T) :- happensAt(e0(V), T).
holdsFor(st0(V)=true, I) :-
    holdsFor(s0(V)=lo, I1),
    holdsFor(s1(V)=true, I2),
    union_all([I1, I2], I3),
    relative_complement_all(I3, [I2], I).
";

fn ckpt_feed() -> Vec<(&'static str, Timepoint)> {
    vec![
        ("e0(v0)", 2),
        ("e1(v0)", 7),
        ("e0(v1)", 9),
        ("e1(v1)", 14),
        ("e3(v0)", 21),
        ("e0(v0)", 26),
        ("e1(v0)", 33),
        ("e3(v1)", 38),
        ("e0(v1)", 44),
        ("e3(v0)", 52),
    ]
}

fn feed_range(engine: &mut Engine<'_>, from: Timepoint, to: Timepoint) {
    let mut syms = rtec::SymbolTable::new();
    for (src, t) in ckpt_feed() {
        if t >= from && t < to {
            let term = rtec::parser::parse_term(src, &mut syms).expect("event parses");
            engine.add_event_from(&term, &syms, t);
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Interpreter,
    Plan,
    Optimized,
}

impl Mode {
    fn engine<'a>(self, compiled: &'a CompiledDescription, config: EngineConfig) -> Engine<'a> {
        match self {
            Mode::Interpreter => Engine::new(compiled, config),
            Mode::Plan => Engine::with_plan(compiled, config),
            Mode::Optimized => with_optimized(compiled, config),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Mode::Interpreter => "interpreter",
            Mode::Plan => "plan",
            Mode::Optimized => "optimized",
        }
    }
}

/// Runs the checkpoint scenario: first half under `first`, checkpoint,
/// restore and finish under `second`. Returns the boundary document and
/// the final observation.
fn run_with_handover(
    compiled: &CompiledDescription,
    first: Mode,
    second: Mode,
) -> (String, (Vec<String>, Vec<String>, String)) {
    let config = EngineConfig::windowed(10);
    let mut engine = first.engine(compiled, config);
    feed_range(&mut engine, 0, 30);
    engine.run_to(30);
    let checkpoint = engine.checkpoint();
    assert_eq!(checkpoint.eval_mode(), Some(first.label()));

    let doc = checkpoint.to_json();
    let parsed = EngineCheckpoint::from_json(&doc).expect("envelope parses");
    assert_eq!(parsed.eval_mode(), Some(first.label()));

    let mut resumed = Engine::restore(compiled, config, &parsed).expect("restore");
    match second {
        Mode::Interpreter => {}
        Mode::Plan => resumed.set_evaluator(Box::new(rtec_plan::Plan::compile(compiled))),
        Mode::Optimized => resumed.set_evaluator(Box::new(rtec_analysis::optimized_plan(compiled))),
    }
    feed_range(&mut resumed, 30, 60);
    resumed.run_to(60);
    (doc, observe(&resumed))
}

/// Checkpoints are portable across all three evaluation modes: every
/// handover combination finishes with byte-identical state, and the
/// boundary documents differ only in the informational `eval_mode`
/// envelope field.
#[test]
fn checkpoints_restore_across_all_eval_modes() {
    let compiled = EventDescription::parse(CKPT_DESC)
        .expect("parses")
        .compile()
        .expect("compiles");

    let modes = [Mode::Interpreter, Mode::Plan, Mode::Optimized];
    let (doc_interp, baseline) = run_with_handover(&compiled, Mode::Interpreter, Mode::Interpreter);
    assert!(
        !baseline.0.is_empty(),
        "scenario must recognise something for the comparison to bite"
    );
    let mut doc_optimized = None;
    for first in modes {
        for second in modes {
            if first == Mode::Interpreter && second == Mode::Interpreter {
                continue;
            }
            let (doc, observed) = run_with_handover(&compiled, first, second);
            assert_eq!(
                baseline,
                observed,
                "{} → {} handover diverges",
                first.label(),
                second.label()
            );
            if first == Mode::Optimized {
                doc_optimized = Some(doc);
            }
        }
    }

    // The boundary documents: identical modulo the envelope label.
    let doc_optimized = doc_optimized.expect("optimized-first handovers ran");
    assert_ne!(doc_interp, doc_optimized);
    assert_eq!(
        doc_interp.replace("\"eval_mode\":\"interpreter\"", ""),
        doc_optimized.replace("\"eval_mode\":\"optimized\"", ""),
        "checkpoint state must not depend on the evaluation mode"
    );
}
