//! Differential tests pinning incremental sliding-window evaluation to
//! full recomputation: over randomized descriptions, window/slide
//! configurations and out-of-order arrival patterns, the incremental
//! mode must be *observationally identical* — same intervals, same
//! warnings in first-occurrence order, byte-identical normalized
//! checkpoints — to the full-replay mode, under both the AST
//! interpreter and the compiled plan evaluator, including the
//! `slide == window` (zero overlap) and `slide == 1` (maximal overlap)
//! edges. See `docs/SCALE.md` for the semantics being pinned.

use proptest::prelude::*;
use rtec::engine::{Engine, EngineConfig};
use rtec::{EventDescription, Timepoint};
use rtec_plan::WithPlan;

/// Everything observable about an engine: sorted rendered output rows,
/// the warning log, and the canonical checkpoint state JSON (the
/// normalized form — no envelope, so the informational evaluator label
/// does not participate).
fn observe(engine: &Engine<'_>) -> (Vec<String>, Vec<String>, String) {
    let symbols = engine.symbols();
    let out = engine.output();
    let mut rows: Vec<String> = out
        .iter()
        .map(|(fvp, list)| format!("{} = {}", fvp.display(symbols), list))
        .collect();
    rows.sort();
    let state = serde_json::to_string(&engine.checkpoint().to_value())
        .expect("checkpoint state serializes");
    (rows, out.warnings.clone(), state)
}

// ---------------------------------------------------------------------
// Randomized scenarios
// ---------------------------------------------------------------------

/// A randomized recognition scenario: a description with cross-value
/// terminations, negation and a static fluent; an event feed where each
/// event carries an *arrival segment* (so events can arrive out of
/// order, behind the query frontier); and a sliding configuration.
#[derive(Debug, Clone)]
struct Scenario {
    desc_src: String,
    /// `(event index 0..4, entity index 0..3, time, arrival segment)`.
    events: Vec<(usize, usize, Timepoint, usize)>,
    window: Timepoint,
    /// 0 => slide 1 (maximal overlap), 1 => slide == window (zero
    /// overlap), otherwise a mid-range slide.
    slide_sel: Timepoint,
    milestones: Vec<Timepoint>,
}

impl Scenario {
    fn slide(&self) -> Timepoint {
        match self.slide_sel {
            0 => 1,
            1 => self.window,
            s => (s % self.window).max(1),
        }
    }
}

const EXTRAS: [&str; 4] = [
    ",\n    not happensAt(e3(V), T)",
    ",\n    q(V)",
    ",\n    not q(V)",
    ",\n    T >= 5",
];

const STATIC_SHAPES: [&str; 4] = [
    "union_all([I1, I2], I)",
    "union_all([I1, I2], I3),\n    relative_complement_all(I3, [I2], I)",
    "intersect_all([I1, I2], I)",
    "relative_complement_all(I1, [I2], I)",
];

fn render_description(
    extras_lo: &[usize],
    flips: u8,
    static_shape: usize,
    facts_q: &[usize],
) -> String {
    let (term_lo, pattern_term, s1_neg) = (flips & 1 != 0, flips & 2 != 0, flips & 4 != 0);
    let mut src = String::new();
    for &v in facts_q {
        src.push_str(&format!("q(v{v}).\n"));
    }
    let extra: String = extras_lo.iter().map(|&i| EXTRAS[i]).collect();
    src.push_str(&format!(
        "initiatedAt(s0(V)=lo, T) :-\n    happensAt(e0(V), T){extra}.\n"
    ));
    src.push_str("initiatedAt(s0(V)=hi, T) :-\n    happensAt(e1(V), T).\n");
    if term_lo {
        src.push_str("terminatedAt(s0(V)=lo, T) :-\n    happensAt(e2(V), T).\n");
    }
    if pattern_term {
        src.push_str("terminatedAt(s0(V)=_X, T) :-\n    happensAt(e3(V), T).\n");
    }
    let maybe_not = if s1_neg { "not " } else { "" };
    src.push_str(&format!(
        "initiatedAt(s1(V)=true, T) :-\n    happensAt(e1(V), T),\n    \
         {maybe_not}holdsAt(s0(V)=lo, T).\n"
    ));
    src.push_str("terminatedAt(s1(V)=true, T) :-\n    happensAt(e0(V), T),\n    T >= 3.\n");
    src.push_str(&format!(
        "holdsFor(st0(V)=true, I) :-\n    holdsFor(s0(V)=lo, I1),\n    \
         holdsFor(s1(V)=true, I2),\n    {}.\n",
        STATIC_SHAPES[static_shape]
    ));
    src
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let structure = (
        prop::collection::vec(0usize..EXTRAS.len(), 0..3),
        0u8..8,
        0usize..STATIC_SHAPES.len(),
        prop::collection::vec(0usize..3, 0..3),
    );
    let feed = (
        prop::collection::vec((0usize..4, 0usize..3, 0i64..60, 0usize..4), 0..40),
        6i64..25,
        0i64..6,
        prop::collection::vec(1i64..70, 1..4),
    );
    (structure, feed).prop_map(
        |(
            (extras_lo, flips, static_shape, facts_q),
            (events, window, slide_sel, mut milestones),
        )| {
            milestones.sort_unstable();
            milestones.dedup();
            Scenario {
                desc_src: render_description(&extras_lo, flips, static_shape, &facts_q),
                events,
                window,
                slide_sel,
                milestones,
            }
        },
    )
}

/// Builds the four sliding engines ({interpreter, plan} × {full,
/// incremental}), replays the scenario with its out-of-order arrival
/// pattern into each, and checks four-way observational equality at
/// every milestone.
fn run_differential(sc: &Scenario) {
    let desc = EventDescription::parse(&sc.desc_src)
        .unwrap_or_else(|e| panic!("parse: {e}\n{}", sc.desc_src));
    let compiled = match desc.compile() {
        Ok(c) => c,
        Err(_) => return,
    };
    let full = EngineConfig::sliding(sc.window, sc.slide());
    let incr = full.with_incremental(true);
    let mut engines = [
        ("interp/full", Engine::new(&compiled, full)),
        ("interp/incr", Engine::new(&compiled, incr)),
        ("plan/full", Engine::with_plan(&compiled, full)),
        ("plan/incr", Engine::with_plan(&compiled, incr)),
    ];
    let mut syms = rtec::SymbolTable::new();
    let segments = sc.milestones.len();
    for (seg, &milestone) in sc.milestones.iter().enumerate() {
        for &(ev, v, t, s) in &sc.events {
            // Events of later segments arrive later — possibly behind
            // the query frontier, exercising amendment and fallback.
            if s.min(segments - 1) == seg {
                let term = rtec::parser::parse_term(&format!("e{ev}(v{v})"), &mut syms)
                    .expect("event parses");
                for (_, engine) in engines.iter_mut() {
                    engine.add_event_from(&term, &syms, t);
                }
            }
        }
        let mut baseline: Option<(Vec<String>, Vec<String>, String)> = None;
        for (label, engine) in engines.iter_mut() {
            engine.run_to(milestone);
            let seen = observe(engine);
            match &baseline {
                None => baseline = Some(seen),
                Some(base) => {
                    assert_eq!(
                        base.0, seen.0,
                        "{label}: output rows diverge at milestone {milestone}\n{}",
                        sc.desc_src
                    );
                    assert_eq!(
                        base.1, seen.1,
                        "{label}: warnings diverge at milestone {milestone}"
                    );
                    assert_eq!(
                        base.2, seen.2,
                        "{label}: checkpoint state diverges at milestone {milestone}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental sliding evaluation is byte-identical to full
    /// recomputation under both evaluators, over randomized
    /// descriptions, window/slide configurations (including the
    /// slide==1 and slide==window edges via `slide_sel`) and
    /// out-of-order arrivals.
    #[test]
    fn incremental_matches_full_recompute(sc in scenario()) {
        run_differential(&sc);
    }
}

// ---------------------------------------------------------------------
// Deterministic edges
// ---------------------------------------------------------------------

const EDGE_DESC: &str = "
initiatedAt(s0(V)=lo, T) :- happensAt(e0(V), T).
initiatedAt(s0(V)=hi, T) :- happensAt(e1(V), T).
terminatedAt(s0(V)=_X, T) :- happensAt(e3(V), T).
initiatedAt(s1(V)=true, T) :- happensAt(e1(V), T), holdsAt(s0(V)=lo, T).
terminatedAt(s1(V)=true, T) :- happensAt(e0(V), T).
holdsFor(st0(V)=true, I) :-
    holdsFor(s0(V)=lo, I1),
    holdsFor(s1(V)=true, I2),
    relative_complement_all(I1, [I2], I).
";

fn edge_feed() -> Vec<(&'static str, Timepoint)> {
    vec![
        ("e0(v0)", 2),
        ("e1(v0)", 7),
        ("e0(v1)", 9),
        ("e1(v1)", 14),
        ("e3(v0)", 21),
        ("e0(v0)", 26),
        ("e1(v0)", 33),
        ("e3(v1)", 38),
        ("e0(v1)", 44),
        ("e3(v0)", 52),
    ]
}

/// Both edge configurations, both evaluators: incremental equals full
/// equals the tumbling batch oracle when events arrive in order.
#[test]
fn edge_slides_match_batch_oracle() {
    let compiled = EventDescription::parse(EDGE_DESC)
        .expect("parses")
        .compile()
        .expect("compiles");
    let mut syms = rtec::SymbolTable::new();
    let feed: Vec<(rtec::Term, Timepoint)> = edge_feed()
        .into_iter()
        .map(|(src, t)| {
            (
                rtec::parser::parse_term(src, &mut syms).expect("event parses"),
                t,
            )
        })
        .collect();

    let mut oracle = Engine::new(&compiled, EngineConfig::default());
    for (term, t) in &feed {
        oracle.add_event_from(term, &syms, *t);
    }
    oracle.run_to(60);
    let (oracle_rows, oracle_warns, _) = observe(&oracle);
    assert!(!oracle_rows.is_empty(), "oracle must recognise something");

    for (window, slide) in [(10, 1), (10, 10), (7, 3)] {
        let full = EngineConfig::sliding(window, slide);
        for (label, config) in [("full", full), ("incr", full.with_incremental(true))] {
            for plan in [false, true] {
                let mut engine = if plan {
                    Engine::with_plan(&compiled, config)
                } else {
                    Engine::new(&compiled, config)
                };
                for (term, t) in &feed {
                    engine.add_event_from(term, &syms, *t);
                }
                engine.run_to(60);
                let (rows, warns, _) = observe(&engine);
                assert_eq!(
                    oracle_rows, rows,
                    "{label} w={window} s={slide} plan={plan}: rows diverge from batch"
                );
                assert_eq!(oracle_warns, warns, "{label}: warnings diverge from batch");
            }
        }
    }
}

/// Input-fluent intervals arriving between queries force the
/// incremental shortcut to fall back to replay; output stays identical
/// to the full mode.
#[test]
fn input_interval_arrival_falls_back_identically() {
    const SRC: &str = "
initiatedAt(s0(V)=lo, T) :- happensAt(e0(V), T).
terminatedAt(s0(V)=lo, T) :- happensAt(e3(V), T).
holdsFor(st0(V)=true, I) :-
    holdsFor(s0(V)=lo, I1),
    holdsFor(inp(V)=true, I2),
    intersect_all([I1, I2], I).
inputFluent(inp(_V)=true).
";
    let run = |incremental: bool| {
        let mut desc = EventDescription::parse(SRC).expect("parses");
        let e0 = desc.term("e0(v0)").unwrap();
        let e3 = desc.term("e3(v0)").unwrap();
        let inp = desc.fvp("inp(v0)=true").unwrap();
        let compiled = desc.compile().expect("compiles");
        let config = EngineConfig::sliding(10, 2).with_incremental(incremental);
        let mut engine = Engine::new(&compiled, config);
        engine.add_event(e0, 3);
        engine.run_to(8);
        engine.add_input_intervals(inp, rtec::IntervalList::from_pairs(&[(5, 30)]));
        engine.add_event(e3, 22);
        engine.run_to(40);
        let symbols = engine.symbols().clone();
        let out = engine.output().clone();
        let state = serde_json::to_string(&engine.checkpoint().to_value()).unwrap();
        let mut rows: Vec<String> = out
            .iter()
            .map(|(fvp, list)| format!("{} = {}", fvp.display(&symbols), list))
            .collect();
        rows.sort();
        (rows, out.warnings.clone(), state)
    };
    let full = run(false);
    let incr = run(true);
    assert_eq!(full, incr);
    assert!(!full.0.is_empty(), "scenario must recognise something");
}
