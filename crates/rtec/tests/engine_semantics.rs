//! Behavioural tests of the recognition engine: statically determined
//! fluents, negation-by-failure, universal (pattern) terminations,
//! arithmetic thresholds, deep hierarchies, undefined references and
//! boundary conditions.

use rtec::{Engine, EngineConfig, EventDescription, Interval, RecognitionOutput};

fn run(src: &str, events: &[(&str, i64)], horizon: i64) -> (RecognitionOutput, EventDescription) {
    let mut desc = EventDescription::parse(src).expect("parse");
    let parsed: Vec<_> = events
        .iter()
        .map(|(e, t)| (desc.term(e).unwrap(), *t))
        .collect();
    let compiled = desc.compile().expect("compile");
    assert!(
        !compiled.report.has_errors(),
        "{:?}",
        compiled.report.errors().collect::<Vec<_>>()
    );
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    engine.add_events(parsed);
    engine.run_to(horizon);
    (engine.into_output(), desc)
}

#[test]
fn union_all_over_multi_valued_fluent() {
    // The paper's underWay example: union of the three movingSpeed values.
    let src = "
        initiatedAt(speedBand(V)=low, T) :- happensAt(velocity(V, S), T), S >= 0.5, S < 5.
        initiatedAt(speedBand(V)=high, T) :- happensAt(velocity(V, S), T), S >= 5.
        terminatedAt(speedBand(V)=Any, T) :- happensAt(velocity(V, S), T), S < 0.5.
        holdsFor(underWay(V)=true, I) :-
            holdsFor(speedBand(V)=low, I1),
            holdsFor(speedBand(V)=high, I2),
            union_all([I1, I2], I).
    ";
    let events = [
        ("velocity(v1, 2.0)", 10), // low
        ("velocity(v1, 8.0)", 20), // high (low terminated by cross-value)
        ("velocity(v1, 0.1)", 40), // stopped
        ("velocity(v1, 6.0)", 60), // high again
    ];
    let (out, mut desc) = run(src, &events, 100);
    let under_way = desc.fvp("underWay(v1)=true").unwrap();
    let l = out.intervals(&under_way).unwrap();
    // Holds (10, 40] and (60, 100]: the low/high switch at 20 is seamless.
    assert_eq!(
        l.as_slice(),
        &[Interval::new(11, 41), Interval::new(61, 101)]
    );
    // The bands themselves do not overlap.
    let low = desc.fvp("speedBand(v1)=low").unwrap();
    let high = desc.fvp("speedBand(v1)=high").unwrap();
    let overlap = out
        .intervals(&low)
        .unwrap()
        .intersect(out.intervals(&high).unwrap());
    assert!(overlap.is_empty(), "bands overlap: {overlap}");
}

#[test]
fn relative_complement_in_static_rules() {
    let src = "
        initiatedAt(a(V)=true, T) :- happensAt(sa(V), T).
        terminatedAt(a(V)=true, T) :- happensAt(ea(V), T).
        initiatedAt(b(V)=true, T) :- happensAt(sb(V), T).
        terminatedAt(b(V)=true, T) :- happensAt(eb(V), T).
        holdsFor(onlyA(V)=true, I) :-
            holdsFor(a(V)=true, Ia),
            holdsFor(b(V)=true, Ib),
            relative_complement_all(Ia, [Ib], I).
    ";
    let events = [
        ("sa(v1)", 0),
        ("sb(v1)", 20),
        ("eb(v1)", 40),
        ("ea(v1)", 60),
    ];
    let (out, mut desc) = run(src, &events, 100);
    let only_a = desc.fvp("onlyA(v1)=true").unwrap();
    assert_eq!(
        out.intervals(&only_a).unwrap().as_slice(),
        &[Interval::new(1, 21), Interval::new(41, 61)]
    );
}

#[test]
fn negation_by_failure_in_bodies() {
    let src = "
        initiatedAt(quiet(V)=true, T) :-
            happensAt(tick(V), T),
            not happensAt(noise(V), T),
            not holdsAt(muted(V)=true, T).
        terminatedAt(quiet(V)=true, T) :- happensAt(noise(V), T).
        initiatedAt(muted(V)=true, T) :- happensAt(mute(V), T).
    ";
    let events = [
        ("tick(v1)", 5),   // initiates: no noise, not muted
        ("noise(v1)", 10), // terminates
        ("tick(v1)", 15),  // re-initiates
        ("mute(v1)", 20),
        ("noise(v1)", 25), // terminates again
        ("tick(v1)", 30),  // blocked: muted holds at 30
    ];
    let (out, mut desc) = run(src, &events, 100);
    let quiet = desc.fvp("quiet(v1)=true").unwrap();
    assert_eq!(
        out.intervals(&quiet).unwrap().as_slice(),
        &[Interval::new(6, 11), Interval::new(16, 26)]
    );
    // Simultaneous tick+noise never initiates.
    let (out2, mut desc2) = run(src, &[("tick(v2)", 5), ("noise(v2)", 5)], 50);
    let q2 = desc2.fvp("quiet(v2)=true").unwrap();
    assert!(out2.intervals(&q2).is_none());
}

#[test]
fn universal_termination_applies_to_all_instances() {
    // Rule (3)-style: the reset event terminates every AreaType instance.
    let src = "
        initiatedAt(flag(V, Kind)=true, T) :- happensAt(raise(V, Kind), T).
        terminatedAt(flag(V, Kind)=true, T) :- happensAt(reset(V), T).
    ";
    let events = [
        ("raise(v1, red)", 10),
        ("raise(v1, blue)", 20),
        ("reset(v1)", 50),
    ];
    let (out, mut desc) = run(src, &events, 100);
    for (kind, start) in [("red", 11), ("blue", 21)] {
        let f = desc.fvp(&format!("flag(v1, {kind})=true")).unwrap();
        assert_eq!(
            out.intervals(&f).unwrap().as_slice(),
            &[Interval::new(start, 51)],
            "{kind}"
        );
    }
}

#[test]
fn arithmetic_thresholds_with_background_knowledge() {
    let src = "
        thresholds(limit, 5.0).
        factor(v1, 2).
        initiatedAt(over(V)=true, T) :-
            happensAt(speed(V, S), T),
            thresholds(limit, L),
            factor(V, F),
            S > L * F.
        terminatedAt(over(V)=true, T) :-
            happensAt(speed(V, S), T),
            thresholds(limit, L),
            factor(V, F),
            S =< L * F.
    ";
    let events = [
        ("speed(v1, 9.0)", 10),  // 9 <= 10: no
        ("speed(v1, 11.0)", 20), // over
        ("speed(v1, 10.0)", 30), // boundary: =< holds, terminate
    ];
    let (out, mut desc) = run(src, &events, 100);
    let over = desc.fvp("over(v1)=true").unwrap();
    assert_eq!(
        out.intervals(&over).unwrap().as_slice(),
        &[Interval::new(21, 31)]
    );
}

#[test]
fn four_level_hierarchy_evaluates_bottom_up() {
    let src = "
        initiatedAt(l0(V)=true, T) :- happensAt(go(V), T).
        terminatedAt(l0(V)=true, T) :- happensAt(halt(V), T).
        holdsFor(l1(V)=true, I) :- holdsFor(l0(V)=true, I0), union_all([I0], I).
        holdsFor(l2(V)=true, I) :- holdsFor(l1(V)=true, I1), union_all([I1], I).
        initiatedAt(l3(V)=true, T) :- happensAt(check(V), T), holdsAt(l2(V)=true, T).
        terminatedAt(l3(V)=true, T) :- happensAt(halt(V), T).
    ";
    let events = [("go(v1)", 0), ("check(v1)", 10), ("halt(v1)", 30)];
    let (out, mut desc) = run(src, &events, 100);
    let l3 = desc.fvp("l3(v1)=true").unwrap();
    assert_eq!(
        out.intervals(&l3).unwrap().as_slice(),
        &[Interval::new(11, 31)]
    );
}

#[test]
fn undefined_fluent_reference_warns_and_never_holds() {
    let src = "
        initiatedAt(x(V)=true, T) :- happensAt(e(V), T), holdsAt(phantom(V)=true, T).
        initiatedAt(y(V)=true, T) :- happensAt(e(V), T), not holdsAt(phantom(V)=true, T).
    ";
    let events = [("e(v1)", 10)];
    let (out, mut desc) = run(src, &events, 50);
    let x = desc.fvp("x(v1)=true").unwrap();
    let y = desc.fvp("y(v1)=true").unwrap();
    assert!(out.intervals(&x).is_none());
    assert!(
        out.intervals(&y).is_some(),
        "negated undefined must succeed"
    );
    assert!(
        out.warnings.iter().any(|w| w.contains("phantom")),
        "{:?}",
        out.warnings
    );
}

#[test]
fn static_fluent_join_across_two_entities() {
    let src = "
        initiatedAt(ready(V)=true, T) :- happensAt(arm(V), T).
        terminatedAt(ready(V)=true, T) :- happensAt(disarm(V), T).
        holdsFor(bothReady(V1, V2)=true, I) :-
            holdsFor(link(V1, V2)=true, Il),
            holdsFor(ready(V1)=true, I1),
            holdsFor(ready(V2)=true, I2),
            intersect_all([Il, I1, I2], I).
    ";
    let mut desc = EventDescription::parse(src).unwrap();
    let e = |d: &mut EventDescription, s: &str| d.term(s).unwrap();
    let events = vec![
        (e(&mut desc, "arm(v1)"), 5),
        (e(&mut desc, "arm(v2)"), 10),
        (e(&mut desc, "disarm(v1)"), 40),
    ];
    let link_f = desc.term("link(v1, v2)").unwrap();
    let link_v = desc.term("true").unwrap();
    let both = desc.fvp("bothReady(v1, v2)=true").unwrap();
    let compiled = desc.compile().unwrap();
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    engine.add_events(events);
    engine.add_input_intervals(
        rtec::GroundFvp::new(link_f, link_v).unwrap(),
        rtec::IntervalList::from_pairs(&[(0, 100)]),
    );
    engine.run_to(100);
    let out = engine.into_output();
    assert_eq!(
        out.intervals(&both).unwrap().as_slice(),
        &[Interval::new(11, 41)]
    );
}

#[test]
fn events_at_time_zero_and_horizon() {
    let src = "
        initiatedAt(f(V)=true, T) :- happensAt(s(V), T).
        terminatedAt(f(V)=true, T) :- happensAt(e(V), T).
    ";
    let events = [("s(v1)", 0), ("e(v1)", 100)];
    let (out, mut desc) = run(src, &events, 100);
    let f = desc.fvp("f(v1)=true").unwrap();
    // Initiated at 0 => holds from 1; terminated at 100 => holds at 100.
    assert_eq!(
        out.intervals(&f).unwrap().as_slice(),
        &[Interval::new(1, 101)]
    );
}

#[test]
fn simultaneous_events_of_different_vessels_are_independent() {
    let src = "
        initiatedAt(f(V)=true, T) :- happensAt(s(V), T).
        terminatedAt(f(V)=true, T) :- happensAt(e(V), T).
    ";
    let events = [("s(v1)", 10), ("s(v2)", 10), ("e(v1)", 20)];
    let (out, mut desc) = run(src, &events, 50);
    let f1 = desc.fvp("f(v1)=true").unwrap();
    let f2 = desc.fvp("f(v2)=true").unwrap();
    assert_eq!(
        out.intervals(&f1).unwrap().as_slice(),
        &[Interval::new(11, 21)]
    );
    assert_eq!(
        out.intervals(&f2).unwrap().as_slice(),
        &[Interval::new(11, 51)]
    );
}

#[test]
fn eq_comparison_binds_intermediate_values() {
    let src = "
        initiatedAt(d(V)=true, T) :-
            happensAt(pair(V, A, B), T),
            Diff = A - B,
            abs(Diff) > 10.
        terminatedAt(d(V)=true, T) :- happensAt(stop(V), T).
    ";
    let events = [
        ("pair(v1, 30, 5)", 10),
        ("stop(v1)", 20),
        ("pair(v1, 8, 5)", 30),
    ];
    let (out, mut desc) = run(src, &events, 50);
    let d = desc.fvp("d(v1)=true").unwrap();
    assert_eq!(
        out.intervals(&d).unwrap().as_slice(),
        &[Interval::new(11, 21)]
    );
}

#[test]
fn multiple_rules_for_same_static_fluent_union_their_results() {
    // Not strict Definition 2.4, but LLMs emit this; the engine unions.
    let src = "
        initiatedAt(a(V)=true, T) :- happensAt(sa(V), T).
        terminatedAt(a(V)=true, T) :- happensAt(ea(V), T).
        initiatedAt(b(V)=true, T) :- happensAt(sb(V), T).
        terminatedAt(b(V)=true, T) :- happensAt(eb(V), T).
        holdsFor(c(V)=true, I) :- holdsFor(a(V)=true, Ia), union_all([Ia], I).
        holdsFor(c(V)=true, I) :- holdsFor(b(V)=true, Ib), union_all([Ib], I).
    ";
    let events = [
        ("sa(v1)", 0),
        ("ea(v1)", 10),
        ("sb(v1)", 20),
        ("eb(v1)", 30),
    ];
    let (out, mut desc) = run(src, &events, 50);
    let c = desc.fvp("c(v1)=true").unwrap();
    assert_eq!(
        out.intervals(&c).unwrap().as_slice(),
        &[Interval::new(1, 11), Interval::new(21, 31)]
    );
}
