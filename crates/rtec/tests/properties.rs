//! Property-based tests of the interval algebra and the inertia
//! matching, checked against naive set-of-points models.

use proptest::prelude::*;
use rtec::eval::simple::make_intervals;
use rtec::{Interval, IntervalList, Timepoint};
use std::collections::BTreeSet;

/// Strategy: a well-formed interval list within [0, 200).
fn interval_list() -> impl Strategy<Value = IntervalList> {
    prop::collection::vec((0i64..200, 1i64..30), 0..12).prop_map(|pairs| {
        IntervalList::from_intervals(
            pairs
                .into_iter()
                .map(|(s, len)| Interval::new(s, s + len))
                .collect(),
        )
    })
}

/// The set of points covered by a list (bounded world [0, 300)).
fn points(l: &IntervalList) -> BTreeSet<Timepoint> {
    (0..300).filter(|&t| l.contains(t)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn normalisation_invariant_holds(a in interval_list()) {
        a.check_invariant();
    }

    #[test]
    fn union_matches_point_semantics(a in interval_list(), b in interval_list()) {
        let u = IntervalList::union_all(&[&a, &b]);
        u.check_invariant();
        let expected: BTreeSet<_> = points(&a).union(&points(&b)).copied().collect();
        prop_assert_eq!(points(&u), expected);
    }

    #[test]
    fn intersection_matches_point_semantics(a in interval_list(), b in interval_list()) {
        let i = a.intersect(&b);
        i.check_invariant();
        let expected: BTreeSet<_> = points(&a).intersection(&points(&b)).copied().collect();
        prop_assert_eq!(points(&i), expected);
    }

    #[test]
    fn difference_matches_point_semantics(a in interval_list(), b in interval_list()) {
        let d = a.difference(&b);
        d.check_invariant();
        let expected: BTreeSet<_> = points(&a).difference(&points(&b)).copied().collect();
        prop_assert_eq!(points(&d), expected);
    }

    #[test]
    fn relative_complement_is_difference_of_union(
        a in interval_list(), b in interval_list(), c in interval_list()
    ) {
        let rc = a.relative_complement_all(&[&b, &c]);
        let via_union = a.difference(&IntervalList::union_all(&[&b, &c]));
        prop_assert_eq!(rc.as_slice(), via_union.as_slice());
    }

    #[test]
    fn union_is_commutative_associative_idempotent(
        a in interval_list(), b in interval_list(), c in interval_list()
    ) {
        let ab = IntervalList::union_all(&[&a, &b]);
        let ba = IntervalList::union_all(&[&b, &a]);
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
        let abc1 = IntervalList::union_all(&[&ab, &c]);
        let bc = IntervalList::union_all(&[&b, &c]);
        let abc2 = IntervalList::union_all(&[&a, &bc]);
        prop_assert_eq!(abc1.as_slice(), abc2.as_slice());
        let aa = IntervalList::union_all(&[&a, &a]);
        prop_assert_eq!(aa.as_slice(), a.as_slice());
    }

    #[test]
    fn intersection_distributes_over_union(
        a in interval_list(), b in interval_list(), c in interval_list()
    ) {
        let lhs = a.intersect(&IntervalList::union_all(&[&b, &c]));
        let rhs = IntervalList::union_all(&[&a.intersect(&b), &a.intersect(&c)]);
        prop_assert_eq!(lhs.as_slice(), rhs.as_slice());
    }

    #[test]
    fn clip_equals_intersection_with_window(a in interval_list(), s in 0i64..150, len in 1i64..100) {
        let clipped = a.clip(s, s + len);
        let window = IntervalList::from_pairs(&[(s, s + len)]);
        let expected = a.intersect(&window);
        prop_assert_eq!(clipped.as_slice(), expected.as_slice());
    }

    #[test]
    fn duration_equals_point_count(a in interval_list()) {
        prop_assert_eq!(a.duration_up_to(300), points(&a).len() as u64);
    }

    /// The inertia matcher agrees with a direct simulation of the law of
    /// inertia over initiation/termination point sets.
    #[test]
    fn make_intervals_matches_simulation(
        inits in prop::collection::btree_set(0i64..100, 0..12),
        terms in prop::collection::btree_set(0i64..100, 0..12),
    ) {
        let (list, open) = make_intervals(
            None,
            inits.iter().copied().collect(),
            terms.iter().copied().collect(),
        );
        list.check_invariant();
        // Forward simulation of the law of inertia: terminations apply
        // before initiations at the same time-point, and effects become
        // visible at the next time-point.
        let mut holding = false;
        for t in 0..=105 {
            // State transition at t-1's events (initiation at t-1 makes
            // the fluent hold at t; termination at t-1 stops it).
            if t > 0 {
                let prev = t - 1;
                if holding && terms.contains(&prev) {
                    holding = false;
                }
                if !holding && inits.contains(&prev) {
                    holding = true;
                }
            }
            prop_assert_eq!(
                list.contains(t),
                holding,
                "t={} inits={:?} terms={:?} list={}",
                t, inits, terms, list
            );
        }
        // The open flag agrees with the final state.
        prop_assert_eq!(open.is_some(), holding);
    }

    #[test]
    fn make_intervals_carry_extends_interval(
        carry in 0i64..20,
        terms in prop::collection::btree_set(21i64..80, 0..6),
    ) {
        let (list, open) = make_intervals(Some(carry), Vec::new(), terms.iter().copied().collect());
        if let Some(&first) = terms.iter().next() {
            prop_assert_eq!(list.as_slice(), &[Interval::new(carry, first + 1)]);
            prop_assert!(open.is_none());
        } else {
            prop_assert_eq!(list.as_slice(), &[Interval::open(carry)]);
            prop_assert_eq!(open, Some(carry));
        }
    }
}

/// Strategy: several interval lists on a coarse grid, so adjacency
/// (`[a, b)` meeting `[b, c)`), containment, and exact-overlap cases —
/// the boundary conditions of the k-way merges — occur frequently.
/// Includes zero lists and empty lists.
fn interval_lists() -> impl Strategy<Value = Vec<IntervalList>> {
    let dense_list = prop::collection::vec((0i64..15, 1i64..4), 0..8).prop_map(|pairs| {
        IntervalList::from_intervals(
            pairs
                .into_iter()
                .map(|(cell, len)| Interval::new(cell * 4, cell * 4 + len * 2))
                .collect(),
        )
    });
    prop::collection::vec(dense_list, 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `union_all` over any number of lists equals the union of their
    /// point sets.
    #[test]
    fn n_ary_union_matches_point_semantics(lists in interval_lists()) {
        let refs: Vec<&IntervalList> = lists.iter().collect();
        let u = IntervalList::union_all(&refs);
        u.check_invariant();
        let mut expected = BTreeSet::new();
        for l in &lists {
            expected.extend(points(l));
        }
        prop_assert_eq!(points(&u), expected);
    }

    /// `intersect_all` equals the intersection of the point sets; the
    /// documented degenerate case (zero lists) is empty.
    #[test]
    fn n_ary_intersection_matches_point_semantics(lists in interval_lists()) {
        let refs: Vec<&IntervalList> = lists.iter().collect();
        let i = IntervalList::intersect_all(&refs);
        i.check_invariant();
        let expected: BTreeSet<Timepoint> = (0..300)
            .filter(|&t| !lists.is_empty() && lists.iter().all(|l| l.contains(t)))
            .collect();
        prop_assert_eq!(points(&i), expected);
    }

    /// `relative_complement_all` equals point-set subtraction of the
    /// union of the subtrahends (including the empty-subtrahend case,
    /// where it must return `self` unchanged).
    #[test]
    fn n_ary_relative_complement_matches_point_semantics(
        a in interval_list(), lists in interval_lists()
    ) {
        let refs: Vec<&IntervalList> = lists.iter().collect();
        let rc = a.relative_complement_all(&refs);
        rc.check_invariant();
        let mut minus = BTreeSet::new();
        for l in &lists {
            minus.extend(points(l));
        }
        let expected: BTreeSet<Timepoint> =
            points(&a).difference(&minus).copied().collect();
        prop_assert_eq!(points(&rc), expected);
        if lists.is_empty() {
            prop_assert_eq!(rc.as_slice(), a.as_slice());
        }
    }

    /// Union is invariant under duplication and ordering of its inputs.
    #[test]
    fn n_ary_union_ignores_duplicates_and_order(lists in interval_lists()) {
        let refs: Vec<&IntervalList> = lists.iter().collect();
        let u = IntervalList::union_all(&refs);
        let doubled: Vec<&IntervalList> =
            lists.iter().chain(lists.iter()).collect();
        prop_assert_eq!(IntervalList::union_all(&doubled).as_slice(), u.as_slice());
        let reversed: Vec<&IntervalList> = lists.iter().rev().collect();
        prop_assert_eq!(IntervalList::union_all(&reversed).as_slice(), u.as_slice());
    }

    /// Absorption laws: `a ∪ (a ∩ b) = a` and `a ∩ (a ∪ b) = a`.
    #[test]
    fn absorption_laws_hold(a in interval_list(), b in interval_list()) {
        let a_norm = IntervalList::union_all(&[&a]);
        let meet = a.intersect(&b);
        prop_assert_eq!(
            IntervalList::union_all(&[&a, &meet]).as_slice(),
            a_norm.as_slice()
        );
        let join = IntervalList::union_all(&[&a, &b]);
        prop_assert_eq!(a.intersect(&join).as_slice(), a_norm.as_slice());
    }

    /// De Morgan within a bounded window `w`:
    /// `w \ (a ∪ b) = (w \ a) ∩ (w \ b)`.
    #[test]
    fn de_morgan_within_window(a in interval_list(), b in interval_list()) {
        let w = IntervalList::from_pairs(&[(0, 300)]);
        let lhs = w.relative_complement_all(&[&a, &b]);
        let rhs = w.difference(&a).intersect(&w.difference(&b));
        prop_assert_eq!(lhs.as_slice(), rhs.as_slice());
    }
}

/// Random clause sources for the parser round-trip property.
fn clause_source() -> impl Strategy<Value = String> {
    let term = {
        let leaf = prop_oneof![
            (0u8..4).prop_map(|i| format!("c{i}")),
            (0u8..3).prop_map(|i| format!("X{i}")),
            (0i64..50).prop_map(|i| i.to_string()),
        ];
        leaf.prop_recursive(2, 12, 3, |inner| {
            (0u8..3, prop::collection::vec(inner, 1..3))
                .prop_map(|(f, args)| format!("f{f}({})", args.join(", ")))
        })
    };
    (term.clone(), prop::collection::vec(term, 0..3)).prop_map(|(h, body)| {
        if body.is_empty() {
            format!("fact({h}).")
        } else {
            let lits: Vec<String> = body.iter().map(|b| format!("cond({b})")).collect();
            format!("head({h}) :- {}.", lits.join(", "))
        }
    })
}

proptest! {
    /// display(parse(x)) parses back to a structurally identical clause.
    #[test]
    fn parser_display_round_trip(src in clause_source()) {
        let mut sym = rtec::SymbolTable::new();
        let parsed = rtec::parser::parse_program(&src, &mut sym).unwrap();
        let printed = parsed[0].display(&sym);
        let reparsed = rtec::parser::parse_program(&printed, &mut sym).unwrap();
        prop_assert_eq!(&parsed[0].head, &reparsed[0].head, "{}", printed);
        prop_assert_eq!(&parsed[0].body, &reparsed[0].body, "{}", printed);
    }

    /// Lenient parsing of clean sources loses nothing and reports nothing.
    #[test]
    fn lenient_equals_strict_on_clean_input(srcs in prop::collection::vec(clause_source(), 1..5)) {
        let text = srcs.join("\n");
        let mut sym_a = rtec::SymbolTable::new();
        let strict = rtec::parser::parse_program(&text, &mut sym_a).unwrap();
        let mut sym_b = rtec::SymbolTable::new();
        let (lenient, errors) = rtec::parser::parse_program_lenient(&text, &mut sym_b);
        prop_assert!(errors.is_empty());
        prop_assert_eq!(strict.len(), lenient.len());
    }
}
