//! Property tests of the resilient-ingestion headline (docs/INGEST.md):
//! feeding any within-slack permutation of an event stream (with
//! duplicates, under dedup) through a [`ReorderBuffer`] yields
//! recognition output byte-identical to the sorted batch run, the
//! watermark never goes backwards, and the dead-letter taxonomy stays
//! pinned.

use proptest::prelude::*;
use rtec::reorder::{DeadLetterReason, ReorderBuffer};
use rtec::{Engine, EngineConfig, EventDescription, Term, Timepoint};

/// A two-vessel area scenario exercising simple fluents (inertia) and a
/// derived holdsFor union, so event order errors would visibly corrupt
/// the output.
const DESC: &str = "
    inputEvent(entersArea/2).
    inputEvent(leavesArea/2).
    inputEvent(velocity/2).
    initiatedAt(inside(V, A)=true, T) :- happensAt(entersArea(V, A), T).
    terminatedAt(inside(V, A)=true, T) :- happensAt(leavesArea(V, A), T).
    initiatedAt(moving(V)=true, T) :- happensAt(velocity(V, S), T), S >= 3.
    terminatedAt(moving(V)=true, T) :- happensAt(velocity(V, S), T), S < 3.
    holdsFor(busy(V)=true, I) :-
        holdsFor(inside(V, a1)=true, I1),
        holdsFor(moving(V)=true, I2),
        union_all([I1, I2], I).
";

const HORIZON: Timepoint = 120;

/// One raw event of the scenario, pre-parse.
fn event_src(kind: u8, vessel: u8, speed: u8) -> String {
    match kind % 3 {
        0 => format!("entersArea(v{}, a1)", vessel % 2),
        1 => format!("leavesArea(v{}, a1)", vessel % 2),
        _ => format!("velocity(v{}, {}.0)", vessel % 2, speed % 8),
    }
}

/// Strategy: a time-sorted event stream over `[0, 100)`.
fn sorted_stream() -> impl Strategy<Value = Vec<(String, Timepoint)>> {
    prop::collection::vec(((0u8..3, 0u8..2, 0u8..8), 0i64..100), 1..40).prop_map(|raw| {
        let mut events: Vec<(String, Timepoint)> = raw
            .into_iter()
            .map(|((k, v, s), t)| (event_src(k, v, s), t))
            .collect();
        events.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        events.dedup();
        events
    })
}

/// Parses the scenario events against one shared description.
fn parse_events(events: &[(String, Timepoint)]) -> (Vec<(Term, Timepoint)>, EventDescription) {
    let mut desc = EventDescription::parse(DESC).expect("parse");
    let parsed = events
        .iter()
        .map(|(src, t)| (desc.term(src).expect("event term"), *t))
        .collect();
    (parsed, desc)
}

/// Renders recognition output as the byte string the property compares.
fn recognize_batch(events: Vec<(Term, Timepoint)>) -> String {
    let desc = EventDescription::parse(DESC).expect("parse");
    let compiled = desc.compile().expect("compile");
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    engine.add_events(events);
    engine.run_to(HORIZON);
    render(engine)
}

/// Feeds an arrival order through a reorder buffer in front of the
/// engine; returns the rendered output plus the ledger-style refusal
/// counts indexed by [`DeadLetterReason::index`].
fn recognize_via_buffer(
    arrivals: Vec<(Term, Timepoint)>,
    slack: Timepoint,
    dedup: bool,
) -> (String, [u64; DeadLetterReason::ALL.len()]) {
    let desc = EventDescription::parse(DESC).expect("parse");
    let compiled = desc.compile().expect("compile");
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    let mut buf = ReorderBuffer::new(slack, dedup);
    let mut refused = [0u64; DeadLetterReason::ALL.len()];
    for (event, t) in arrivals {
        match buf.push(event, t) {
            Ok(()) => {}
            Err(reason) => refused[reason.index()] += 1,
        }
        for (event, t) in buf.drain_ready() {
            engine.add_event(event, t);
        }
    }
    for (event, t) in buf.flush() {
        engine.add_event(event, t);
    }
    engine.run_to(HORIZON);
    (render(engine), refused)
}

fn render(engine: Engine) -> String {
    let symbols = engine.symbols().clone();
    let output = engine.into_output();
    let mut rows: Vec<String> = output
        .iter()
        .map(|(fvp, list)| format!("holdsFor({}) = {}", fvp.display(&symbols), list))
        .collect();
    rows.sort();
    rows.join("\n")
}

/// A within-slack arrival order: each event is delayed by at most
/// `slack` timepoints relative to the stream frontier, which is exactly
/// the disorder the buffer guarantees to absorb. (Sorting by `t + delay`
/// means that when an event stamped `t` arrives, everything seen before
/// it has timestamp at most `t + slack`, so the watermark is at most
/// `t`.)
fn permute_within_slack(
    events: &[(Term, Timepoint)],
    delays: &[Timepoint],
    slack: Timepoint,
) -> Vec<(Term, Timepoint)> {
    let mut keyed: Vec<(Timepoint, usize)> = events
        .iter()
        .enumerate()
        .map(|(i, &(_, t))| (t + delays[i % delays.len().max(1)].min(slack), i))
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, i)| events[i].clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Headline property: a within-slack permutation recognises
    /// byte-identically to the sorted batch run, with an empty ledger.
    #[test]
    fn within_slack_permutation_is_byte_identical(
        stream in sorted_stream(),
        slack in 0i64..25,
        delays in prop::collection::vec(0i64..25, 1..40),
    ) {
        let (events, _) = parse_events(&stream);
        let arrivals = permute_within_slack(&events, &delays, slack);
        let batch = recognize_batch(events);
        let (via_buffer, refused) = recognize_via_buffer(arrivals, slack, false);
        prop_assert_eq!(refused, [0u64; DeadLetterReason::ALL.len()]);
        prop_assert_eq!(via_buffer, batch);
    }

    /// Duplicated within-slack arrivals under dedup: still byte-identical,
    /// and every duplicate is refused with the `duplicate` reason.
    #[test]
    fn duplicates_are_absorbed_under_dedup(
        stream in sorted_stream(),
        slack in 0i64..25,
        delays in prop::collection::vec(0i64..25, 1..40),
        dup_every in 1usize..5,
    ) {
        let (events, _) = parse_events(&stream);
        let mut arrivals = Vec::new();
        let mut duplicates = 0u64;
        for (i, pair) in permute_within_slack(&events, &delays, slack).into_iter().enumerate() {
            arrivals.push(pair.clone());
            if i % dup_every == 0 {
                arrivals.push(pair);
                duplicates += 1;
            }
        }
        let batch = recognize_batch(events);
        let (via_buffer, refused) = recognize_via_buffer(arrivals, slack, true);
        prop_assert_eq!(refused[DeadLetterReason::Duplicate.index()], duplicates);
        prop_assert_eq!(refused[DeadLetterReason::Late.index()], 0);
        prop_assert_eq!(via_buffer, batch);
    }

    /// Under *arbitrary* (not slack-bounded) arrival orders the watermark
    /// never decreases, releases come out time-sorted, negative stamps
    /// are refused as malformed, and accepted + refused = offered.
    #[test]
    fn watermark_is_monotone_under_arbitrary_disorder(
        stream in sorted_stream(),
        order in prop::collection::vec(0u64..u64::MAX, 1..40),
        slack in 0i64..10,
        negatives in 0usize..3,
    ) {
        let (mut events, _) = parse_events(&stream);
        // Shuffle by sort key and sprinkle malformed (negative) stamps.
        let mut keyed: Vec<(u64, usize)> = (0..events.len())
            .map(|i| (order[i % order.len()].wrapping_mul(i as u64 + 1), i))
            .collect();
        keyed.sort();
        let arrivals: Vec<(Term, Timepoint)> =
            keyed.into_iter().map(|(_, i)| events[i].clone()).collect();
        for k in 0..negatives.min(events.len()) {
            events[k].1 = -1 - k as i64;
        }

        let mut buf = ReorderBuffer::new(slack, false);
        let mut watermark = buf.watermark();
        let mut last_released = watermark;
        let mut accepted = 0u64;
        let mut refused = 0u64;
        let mut released = 0u64;
        let offered = arrivals.len() as u64 + negatives.min(events.len()) as u64;
        let feed = events[..negatives.min(events.len())]
            .iter()
            .cloned()
            .chain(arrivals);
        for (event, t) in feed {
            match buf.push(event, t) {
                Ok(()) => accepted += 1,
                Err(DeadLetterReason::Malformed) => {
                    prop_assert!(t < 0);
                    refused += 1;
                }
                Err(DeadLetterReason::Late) => {
                    prop_assert!(t < buf.watermark());
                    refused += 1;
                }
                Err(other) => prop_assert!(false, "unexpected refusal {other:?}"),
            }
            prop_assert!(buf.watermark() >= watermark, "watermark went backwards");
            watermark = buf.watermark();
            for (_, rt) in buf.drain_ready() {
                prop_assert!(rt >= last_released, "release order broken");
                last_released = rt;
                released += 1;
            }
        }
        released += buf.flush().len() as u64;
        prop_assert_eq!(accepted, released, "accepted events must all release");
        prop_assert_eq!(accepted + refused, offered);
    }
}

/// Pins the dead-letter reason taxonomy: wire names, ordering, and the
/// string round-trip. Renaming or reordering a reason is a breaking
/// protocol change (docs/INGEST.md) and must fail here first.
#[test]
fn dead_letter_taxonomy_is_pinned() {
    let names: Vec<&str> = DeadLetterReason::ALL.iter().map(|r| r.as_str()).collect();
    assert_eq!(
        names,
        vec!["late", "duplicate", "past_horizon", "malformed", "shed"]
    );
    for (i, reason) in DeadLetterReason::ALL.iter().enumerate() {
        assert_eq!(reason.index(), i);
        assert_eq!(DeadLetterReason::from_str(reason.as_str()), Some(*reason));
    }
    assert_eq!(DeadLetterReason::from_str("gone"), None);
}
