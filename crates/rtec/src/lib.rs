//! # rtec — a Run-Time Event Calculus engine
//!
//! This crate implements RTEC, the logic-programming composite event
//! recognition (CER) framework that the paper *Generating Activity
//! Definitions with Large Language Models* (EDBT 2025) uses as its target
//! formal language and reasoning substrate.
//!
//! RTEC represents *composite activity definitions* as logic-programming
//! rules over a linear timeline of non-negative integer time-points:
//!
//! * `happensAt(E, T)` — event `E` occurs at time-point `T`;
//! * `initiatedAt(F=V, T)` / `terminatedAt(F=V, T)` — a maximal period
//!   during which fluent `F` holds value `V` continuously starts/ends at `T`
//!   (*simple fluents*, subject to the common-sense law of inertia);
//! * `holdsFor(F=V, I)` — `F=V` holds throughout the maximal intervals in
//!   list `I` (*statically determined fluents*, built from other interval
//!   lists with `union_all`, `intersect_all`, `relative_complement_all`);
//! * `holdsAt(F=V, T)` — `F=V` holds at time-point `T`.
//!
//! The crate provides:
//!
//! * a symbol-interning term representation ([`term::Term`]),
//! * a Prolog-style parser for event descriptions ([`parser`]),
//! * validation against the rule syntax of the paper's Definitions 2.2 and
//!   2.4 ([`validate`]),
//! * a maximal-interval algebra ([`interval`]),
//! * a stratified, windowed recognition engine with caching
//!   ([`engine::Engine`]), and
//! * error types that distinguish syntax, validation and run-time issues.
//!
//! ## Quick example
//!
//! ```
//! use rtec::prelude::*;
//!
//! let src = r#"
//!     initiatedAt(withinArea(Vl, AreaType)=true, T) :-
//!         happensAt(entersArea(Vl, AreaId), T),
//!         areaType(AreaId, AreaType).
//!     terminatedAt(withinArea(Vl, AreaType)=true, T) :-
//!         happensAt(leavesArea(Vl, AreaId), T),
//!         areaType(AreaId, AreaType).
//!     terminatedAt(withinArea(Vl, AreaType)=true, T) :-
//!         happensAt(gap_start(Vl), T).
//!     areaType(a1, fishing).
//! "#;
//!
//! let mut desc = EventDescription::parse(src).unwrap();
//! let compiled = desc.compile().unwrap();
//! let mut engine = Engine::new(&compiled, EngineConfig::default());
//!
//! let e1 = desc.term("entersArea(v42, a1)").unwrap();
//! let e2 = desc.term("leavesArea(v42, a1)").unwrap();
//! engine.add_event(e1, 10);
//! engine.add_event(e2, 25);
//! let out = engine.run_to(100);
//!
//! let fvp = desc.fvp("withinArea(v42, fishing)=true").unwrap();
//! let intervals = out.intervals(&fvp).unwrap();
//! assert!(intervals.contains(15));
//! assert!(!intervals.contains(30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod background;
pub mod checkpoint;
pub mod declarations;
pub mod description;
pub mod engine;
pub mod error;
pub mod eval;
pub mod interval;
pub mod lexer;
pub mod obs;
pub mod parallel;
pub mod parser;
pub mod profile;
pub mod reorder;
pub mod semantics;
pub mod stream;
pub mod symbol;
pub mod term;
pub mod validate;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::ast::{Clause, Fvp};
    pub use crate::description::{CompiledDescription, EventDescription};
    pub use crate::engine::{Engine, EngineConfig, RecognitionOutput};
    pub use crate::error::{RtecError, RtecResult};
    pub use crate::interval::{Interval, IntervalList, Timepoint, INF};
    pub use crate::symbol::{Symbol, SymbolTable};
    pub use crate::term::{GroundFvp, Term};
}

pub use prelude::*;
