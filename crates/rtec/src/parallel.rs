//! Entity-partitioned parallel recognition.
//!
//! Composite maritime activities are *relational*: most are per-vessel,
//! some (tugging, pilot boarding) relate vessels that interact. Two
//! vessels can only affect each other's activities if some input couples
//! them (here: a `proximity` interval or a shared event). This module
//! exploits that: it groups entities into *interaction components* with a
//! union-find over the coupling inputs, distributes components across
//! shards, runs one [`Engine`] per shard on its own thread (crossbeam
//! scoped threads), and merges the shard outputs (a `parking_lot` mutex
//! guards the accumulator).
//!
//! # Correctness contract
//!
//! Sharding is sound iff no rule joins fluents of entities in *different*
//! components. Couplings are derived from the input stream (events that
//! mention several entities, input fluents such as `proximity` over
//! entity pairs), which covers event descriptions — like the maritime
//! one — whose only cross-entity joins go through such inputs. The
//! partitioned output is tested to be identical to a single-engine run.

use crate::description::CompiledDescription;
use crate::engine::{Engine, EngineConfig, RecognitionOutput};
use crate::interval::Timepoint;
use crate::stream::InputStream;
use crate::symbol::SymbolTable;
use crate::term::{GroundFvp, Term};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Extracts the entity terms an event or input FVP mentions.
pub trait Partitioner: Sync {
    /// Entities mentioned by an input event (master-table term).
    fn event_entities(&self, event: &Term) -> Vec<Term>;
    /// Entities mentioned by an input fluent instance.
    fn fvp_entities(&self, fvp: &GroundFvp) -> Vec<Term>;
}

/// The convention of the maritime stream (and most RTEC event
/// descriptions): the first argument of an event is its subject entity;
/// every atom argument of an input fluent couples its entities.
pub struct FirstArgPartitioner;

impl Partitioner for FirstArgPartitioner {
    fn event_entities(&self, event: &Term) -> Vec<Term> {
        match event.args().first() {
            Some(t @ Term::Atom(_)) => vec![t.clone()],
            _ => Vec::new(),
        }
    }

    fn fvp_entities(&self, fvp: &GroundFvp) -> Vec<Term> {
        fvp.fluent
            .args()
            .iter()
            .filter(|a| matches!(a, Term::Atom(_)))
            .cloned()
            .collect()
    }
}

/// Parallel execution parameters.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Number of shards/threads (>= 1).
    pub threads: usize,
    /// Per-shard engine configuration.
    pub engine: EngineConfig,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 4,
            engine: EngineConfig::default(),
        }
    }
}

/// Union-find over entity ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Runs recognition over `stream` partitioned into interaction
/// components, in parallel, and returns the merged output plus the symbol
/// table its terms are interned in.
pub fn recognize_partitioned(
    desc: &CompiledDescription,
    stream: &InputStream,
    horizon: Timepoint,
    config: ParallelConfig,
    partitioner: &dyn Partitioner,
) -> (RecognitionOutput, SymbolTable) {
    assert!(config.threads >= 1, "at least one thread required");

    // Master symbol table: description symbols extended by the stream's.
    let mut master = desc.symbols.clone();
    let mut mapper = crate::term::SymbolMapper::new();
    let events: Vec<(Term, Timepoint)> = stream
        .events()
        .iter()
        .map(|(ev, t)| (mapper.translate(ev, &stream.symbols, &mut master), *t))
        .collect();
    let intervals: Vec<(GroundFvp, crate::interval::IntervalList)> = stream
        .intervals()
        .iter()
        .map(|(fvp, list)| {
            (
                GroundFvp {
                    fluent: mapper.translate(&fvp.fluent, &stream.symbols, &mut master),
                    value: mapper.translate(&fvp.value, &stream.symbols, &mut master),
                },
                list.clone(),
            )
        })
        .collect();

    // 1. Entity discovery and interaction components.
    let mut entity_ids: HashMap<Term, usize> = HashMap::new();
    let id_of = |t: &Term, ids: &mut HashMap<Term, usize>| -> usize {
        let next = ids.len();
        *ids.entry(t.clone()).or_insert(next)
    };
    let mut couplings: Vec<Vec<usize>> = Vec::new();
    let mut event_entity: Vec<Option<usize>> = Vec::with_capacity(events.len());
    for (ev, _) in &events {
        let ents = partitioner.event_entities(ev);
        let ids: Vec<usize> = ents.iter().map(|e| id_of(e, &mut entity_ids)).collect();
        event_entity.push(ids.first().copied());
        if ids.len() > 1 {
            couplings.push(ids);
        }
    }
    let mut interval_entity: Vec<Option<usize>> = Vec::with_capacity(intervals.len());
    for (fvp, _) in &intervals {
        let ents = partitioner.fvp_entities(fvp);
        let ids: Vec<usize> = ents.iter().map(|e| id_of(e, &mut entity_ids)).collect();
        interval_entity.push(ids.first().copied());
        if ids.len() > 1 {
            couplings.push(ids);
        }
    }
    let mut uf = UnionFind::new(entity_ids.len());
    for group in couplings {
        for w in group.windows(2) {
            uf.union(w[0], w[1]);
        }
    }

    // 2. Components -> shards, round-robin for balance.
    let n_shards = config.threads;
    let mut shard_of_component: HashMap<usize, usize> = HashMap::new();
    let mut shard_of_entity: Vec<usize> = vec![0; entity_ids.len()];
    for (e, slot) in shard_of_entity.iter_mut().enumerate() {
        let root = uf.find(e);
        let next = shard_of_component.len() % n_shards;
        *slot = *shard_of_component.entry(root).or_insert(next);
    }

    // 3. Split the inputs. Entity-less items are broadcast to every
    // shard; the merge is idempotent for them.
    let mut shard_events: Vec<Vec<(Term, Timepoint)>> = vec![Vec::new(); n_shards];
    for ((ev, t), ent) in events.into_iter().zip(&event_entity) {
        match ent {
            Some(e) => shard_events[shard_of_entity[*e]].push((ev, t)),
            None => {
                for bucket in &mut shard_events {
                    bucket.push((ev.clone(), t));
                }
            }
        }
    }
    let mut shard_intervals: Vec<Vec<(GroundFvp, crate::interval::IntervalList)>> =
        vec![Vec::new(); n_shards];
    for ((fvp, list), ent) in intervals.into_iter().zip(&interval_entity) {
        match ent {
            Some(e) => shard_intervals[shard_of_entity[*e]].push((fvp, list)),
            None => {
                for bucket in &mut shard_intervals {
                    bucket.push((fvp.clone(), list.clone()));
                }
            }
        }
    }

    // 4. One engine per shard, merged under a lock.
    let merged: Mutex<RecognitionOutput> = Mutex::new(RecognitionOutput::default());
    crossbeam::thread::scope(|scope| {
        for (events, intervals) in shard_events.into_iter().zip(shard_intervals) {
            let merged = &merged;
            scope.spawn(move |_| {
                let mut engine = Engine::new(desc, config.engine);
                engine.add_events(events);
                for (fvp, list) in intervals {
                    engine.add_input_intervals(fvp, list);
                }
                engine.run_to(horizon);
                let out = engine.into_output();
                let mut guard = merged.lock();
                guard.absorb(out);
            });
        }
    })
    .expect("shard thread panicked");

    (merged.into_inner(), master)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::EventDescription;

    const DESC: &str = "
        initiatedAt(busy(V)=true, T) :- happensAt(start(V), T).
        terminatedAt(busy(V)=true, T) :- happensAt(stop(V), T).
        holdsFor(pair(V1, V2)=true, I) :-
            holdsFor(near(V1, V2)=true, Ip),
            holdsFor(busy(V1)=true, I1),
            holdsFor(busy(V2)=true, I2),
            intersect_all([Ip, I1, I2], I).
    ";

    fn build_stream(n: usize) -> InputStream {
        let mut stream = InputStream::new();
        for i in 0..n {
            stream
                .push_event_src(&format!("start(v{i})"), 10 + i as i64)
                .unwrap();
            stream
                .push_event_src(&format!("stop(v{i})"), 100 + i as i64)
                .unwrap();
        }
        // Couple v0 with v1.
        let f = crate::parser::parse_term("near(v0, v1)", &mut stream.symbols).unwrap();
        let v = crate::parser::parse_term("true", &mut stream.symbols).unwrap();
        stream.push_intervals(
            GroundFvp::new(f, v).unwrap(),
            crate::interval::IntervalList::from_pairs(&[(0, 200)]),
        );
        stream
    }

    fn snapshot(out: &RecognitionOutput, sym: &SymbolTable) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = out
            .iter()
            .map(|(fvp, list)| (fvp.display(sym), list.to_string()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn parallel_output_equals_single_engine() {
        let desc = EventDescription::parse(DESC).unwrap();
        let compiled = desc.compile().unwrap();
        let stream = build_stream(9);

        let mut single = Engine::new(&compiled, EngineConfig::default());
        stream.load_into(&mut single);
        single.run_to(300);
        let single_sym = single.symbols().clone();
        let single_out = single.into_output();

        for threads in [1, 2, 4, 8] {
            let (par_out, par_sym) = recognize_partitioned(
                &compiled,
                &stream,
                300,
                ParallelConfig {
                    threads,
                    engine: EngineConfig::default(),
                },
                &FirstArgPartitioner,
            );
            assert_eq!(
                snapshot(&single_out, &single_sym),
                snapshot(&par_out, &par_sym),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn coupled_entities_share_a_shard() {
        let desc = EventDescription::parse(DESC).unwrap();
        let compiled = desc.compile().unwrap();
        let stream = build_stream(4);
        // With many shards, v0/v1 stay together thanks to the proximity
        // coupling: pair(v0, v1) must still be recognised.
        let (out, sym) = recognize_partitioned(
            &compiled,
            &stream,
            300,
            ParallelConfig {
                threads: 8,
                engine: EngineConfig::default(),
            },
            &FirstArgPartitioner,
        );
        let found = out
            .iter()
            .any(|(fvp, _)| fvp.display(&sym) == "pair(v0, v1)=true");
        assert!(found, "pair activity lost by partitioning");
    }

    #[test]
    fn first_arg_partitioner_extracts_entities() {
        let mut sym = SymbolTable::new();
        let ev = crate::parser::parse_term("start(v1)", &mut sym).unwrap();
        let p = FirstArgPartitioner;
        assert_eq!(p.event_entities(&ev).len(), 1);
        let f = crate::parser::parse_term("near(v0, v1)", &mut sym).unwrap();
        let t = crate::parser::parse_term("true", &mut sym).unwrap();
        let fvp = GroundFvp::new(f, t).unwrap();
        assert_eq!(p.fvp_entities(&fvp).len(), 2);
        // Numeric or variable first args yield no entity.
        let num = crate::parser::parse_term("tick(42)", &mut sym).unwrap();
        assert!(p.event_entities(&num).is_empty());
    }
}
