//! Input streams: a self-contained bundle of time-stamped events and
//! input-fluent intervals.
//!
//! A stream carries its own [`SymbolTable`], so it can be generated once
//! (e.g. six months of maritime critical events) and then replayed against
//! *different* event descriptions — the gold standard and each
//! LLM-generated description — which is exactly the comparison performed in
//! the paper's second experiment (Figure 2c).

use crate::engine::Engine;
use crate::interval::{IntervalList, Timepoint};
use crate::symbol::SymbolTable;
use crate::term::{GroundFvp, Term};

/// A replayable input stream.
#[derive(Clone, Debug, Default)]
pub struct InputStream {
    /// Symbol table the stream's terms are interned in.
    pub symbols: SymbolTable,
    events: Vec<(Term, Timepoint)>,
    intervals: Vec<(GroundFvp, IntervalList)>,
}

impl InputStream {
    /// Creates an empty stream.
    pub fn new() -> InputStream {
        InputStream::default()
    }

    /// Parses and appends an event, e.g. `push_event("entersArea(v1, a1)", 10)`.
    pub fn push_event_src(&mut self, src: &str, t: Timepoint) -> crate::error::RtecResult<()> {
        let ev = crate::parser::parse_term(src, &mut self.symbols)?;
        self.events.push((ev, t));
        Ok(())
    }

    /// Appends an event term already interned in this stream's table.
    ///
    /// A stream is an inert recording, so *any* timestamp is accepted
    /// here — including one at or before a horizon an engine has
    /// already evaluated. Ordering is enforced at the engine boundary
    /// instead: [`Engine::add_event`] (which [`InputStream::load_into`]
    /// calls per event) rejects events at or before its processed
    /// frontier to the engine's reason-coded dead-letter ledger
    /// ([`Engine::dead_letters`]), counts them in
    /// `EngineStats::events_dropped`, and surfaces a `"... dropped"`
    /// warning — they are never silently absorbed into inertial state.
    /// For out-of-order *tolerant* ingestion, feed events through
    /// [`crate::reorder::ReorderBuffer`] first.
    pub fn push_event(&mut self, event: Term, t: Timepoint) {
        self.events.push((event, t));
    }

    /// Appends input-fluent intervals (e.g. spatial proximity).
    pub fn push_intervals(&mut self, fvp: GroundFvp, list: IntervalList) {
        self.intervals.push((fvp, list));
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in insertion order.
    pub fn events(&self) -> &[(Term, Timepoint)] {
        &self.events
    }

    /// The input-fluent intervals.
    pub fn intervals(&self) -> &[(GroundFvp, IntervalList)] {
        &self.intervals
    }

    /// The largest event time-point (0 for an empty stream).
    pub fn horizon(&self) -> Timepoint {
        self.events.iter().map(|(_, t)| *t).max().unwrap_or(0)
    }

    /// Loads the whole stream into `engine`, translating symbols (with a
    /// memoised per-symbol mapping, so the cost is linear in the stream).
    pub fn load_into(&self, engine: &mut Engine<'_>) {
        let mut mapper = crate::term::SymbolMapper::new();
        for (ev, t) in &self.events {
            let ev = mapper.translate(ev, &self.symbols, engine.symbols_mut());
            engine.add_event(ev, *t);
        }
        for (fvp, list) in &self.intervals {
            let fluent = mapper.translate(&fvp.fluent, &self.symbols, engine.symbols_mut());
            let value = mapper.translate(&fvp.value, &self.symbols, engine.symbols_mut());
            engine.add_input_intervals(GroundFvp { fluent, value }, list.clone());
        }
    }

    /// Merges another stream (translating its symbols into this table).
    pub fn extend_from(&mut self, other: &InputStream) {
        for (ev, t) in &other.events {
            let ev = crate::term::translate(ev, &other.symbols, &mut self.symbols);
            self.events.push((ev, *t));
        }
        for (fvp, list) in &other.intervals {
            let fluent = crate::term::translate(&fvp.fluent, &other.symbols, &mut self.symbols);
            let value = crate::term::translate(&fvp.value, &other.symbols, &mut self.symbols);
            self.intervals
                .push((GroundFvp { fluent, value }, list.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::EventDescription;
    use crate::engine::EngineConfig;

    #[test]
    fn stream_replays_against_description() {
        let mut stream = InputStream::new();
        stream.push_event_src("entersArea(v1, a1)", 10).unwrap();
        stream.push_event_src("leavesArea(v1, a1)", 30).unwrap();
        assert_eq!(stream.len(), 2);
        assert_eq!(stream.horizon(), 30);

        let mut desc = EventDescription::parse(
            "initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
                 happensAt(entersArea(Vl, AreaId), T), areaType(AreaId, AreaType).\n\
             terminatedAt(withinArea(Vl, AreaType)=true, T) :- \
                 happensAt(leavesArea(Vl, AreaId), T), areaType(AreaId, AreaType).\n\
             areaType(a1, fishing).",
        )
        .unwrap();
        let fvp = desc.fvp("withinArea(v1, fishing)=true").unwrap();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        stream.load_into(&mut engine);
        let out = engine.run_to(50);
        assert!(out.holds_at(&fvp, 20));
        assert!(!out.holds_at(&fvp, 35));
    }

    #[test]
    fn intervals_replay_too() {
        let mut stream = InputStream::new();
        let f = crate::parser::parse_term("proximity(v1, v2)", &mut stream.symbols).unwrap();
        let v = crate::parser::parse_term("true", &mut stream.symbols).unwrap();
        stream.push_intervals(
            GroundFvp::new(f, v).unwrap(),
            IntervalList::from_pairs(&[(0, 100)]),
        );

        let mut desc = EventDescription::parse(
            "holdsFor(together(V1, V2)=true, I) :- \
                 holdsFor(proximity(V1, V2)=true, Ip), union_all([Ip], I).",
        )
        .unwrap();
        let fvp = desc.fvp("together(v1, v2)=true").unwrap();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        stream.load_into(&mut engine);
        let out = engine.run_to(100);
        assert!(out.holds_at(&fvp, 50));
    }

    #[test]
    fn extend_from_translates_symbols() {
        let mut a = InputStream::new();
        a.push_event_src("e(v1)", 1).unwrap();
        let mut b = InputStream::new();
        b.push_event_src("f(x9)", 2).unwrap();
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        // The translated term must render identically.
        let (ev, _) = &a.events()[1];
        assert_eq!(ev.display(&a.symbols).to_string(), "f(x9)");
    }
}
