//! String interning for functor, constant and variable names.
//!
//! Every name that appears in an event description — predicate functors,
//! constants, variables — is interned once in a [`SymbolTable`] and referred
//! to by a copyable [`Symbol`] afterwards. This keeps [`crate::term::Term`]
//! values small and makes equality checks O(1), which matters because the
//! recognition engine compares terms in its inner loops.

use std::collections::HashMap;
use std::fmt;

/// An interned name. Cheap to copy and compare; resolve back to a string
/// with [`SymbolTable::name`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw index of this symbol inside its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// An append-only interner mapping names to [`Symbol`]s and back.
///
/// A table belongs to one [`crate::description::EventDescription`]; symbols
/// from different tables must not be mixed (doing so yields nonsense names,
/// not undefined behaviour).
#[derive(Default, Debug, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym =
            Symbol(u32::try_from(self.names.len()).expect("symbol table overflow (>4G symbols)"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up a previously interned name without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// Resolves a symbol back to its name.
    ///
    /// # Panics
    /// Panics if `sym` does not belong to this table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Resolves a symbol back to its name, or `None` if `sym` was interned
    /// in a different (later-extended) table.
    pub fn try_name(&self, sym: Symbol) -> Option<&str> {
        self.names.get(sym.index()).map(String::as_str)
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("happensAt");
        let b = t.intern("happensAt");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("initiatedAt");
        let b = t.intern("terminatedAt");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "initiatedAt");
        assert_eq!(t.name(b), "terminatedAt");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("holdsFor").is_none());
        let s = t.intern("holdsFor");
        assert_eq!(t.get("holdsFor"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(a, "a"), (b, "b")]);
    }

    #[test]
    fn case_sensitive() {
        let mut t = SymbolTable::new();
        assert_ne!(t.intern("Vessel"), t.intern("vessel"));
    }
}
