//! Event descriptions: parsing, compilation, dependency analysis.
//!
//! An [`EventDescription`] is the parsed form of an RTEC program — the set
//! of clauses formalising the composite activities of a domain (the paper
//! calls this set an *event description*). Compiling it validates every
//! clause, indexes rules by the fluent they define, and computes a
//! bottom-up evaluation order over the fluent dependency graph (RTEC's
//! activity hierarchies; cyclic definitions are rejected).

use crate::ast::{BodyLiteral, Clause, FluentKey, SimpleRule, StaticLiteral, StaticRule};
use crate::background::FactStore;
use crate::error::{RtecError, RtecResult, ValidationReport};
use crate::parser::{parse_program, parse_program_lenient, parse_term};
use crate::semantics::{FluentGraph, StratifyFailure};
use crate::symbol::SymbolTable;
use crate::term::{GroundFvp, Term};
use crate::validate::{validate, SysSymbols};
use std::collections::{HashMap, HashSet};

/// A parsed (but not yet compiled) event description.
#[derive(Clone, Debug)]
pub struct EventDescription {
    /// Symbol table shared by all terms of the description.
    pub symbols: SymbolTable,
    /// The clauses, in source order.
    pub clauses: Vec<Clause>,
    /// Errors collected when parsing leniently (empty for strict parses).
    pub parse_errors: Vec<RtecError>,
}

impl EventDescription {
    /// Parses strictly: the first syntax error aborts.
    pub fn parse(src: &str) -> RtecResult<EventDescription> {
        let mut symbols = SymbolTable::new();
        let clauses = parse_program(src, &mut symbols)?;
        Ok(EventDescription {
            symbols,
            clauses,
            parse_errors: Vec::new(),
        })
    }

    /// Parses leniently: malformed clauses are skipped and recorded in
    /// [`EventDescription::parse_errors`]. This is the entry point for
    /// LLM-generated text.
    pub fn parse_lenient(src: &str) -> EventDescription {
        let mut symbols = SymbolTable::new();
        let (clauses, parse_errors) = parse_program_lenient(src, &mut symbols);
        EventDescription {
            symbols,
            clauses,
            parse_errors,
        }
    }

    /// Builds an event description from pre-parsed clauses.
    pub fn from_clauses(symbols: SymbolTable, clauses: Vec<Clause>) -> EventDescription {
        EventDescription {
            symbols,
            clauses,
            parse_errors: Vec::new(),
        }
    }

    /// Parses a term in this description's symbol table (handy for building
    /// events and query patterns).
    pub fn term(&mut self, src: &str) -> RtecResult<Term> {
        parse_term(src, &mut self.symbols)
    }

    /// Parses a ground FVP written as `fluent=value`.
    pub fn fvp(&mut self, src: &str) -> RtecResult<GroundFvp> {
        let t = self.term(src)?;
        let eq = self.symbols.intern("=");
        let fvp = crate::ast::Fvp::from_term(&t, eq)
            .ok_or_else(|| RtecError::eval(format!("'{src}' is not of the form F=V")))?;
        GroundFvp::new(fvp.fluent, fvp.value)
            .ok_or_else(|| RtecError::eval(format!("'{src}' is not ground")))
    }

    /// Renders the description back to concrete syntax.
    pub fn to_source(&self) -> String {
        self.clauses
            .iter()
            .map(|c| c.display(&self.symbols))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Validates and compiles the description for execution.
    ///
    /// Returns an error only for fatal, description-wide problems (cyclic
    /// fluent dependencies). Per-clause violations are collected in the
    /// compiled description's [`ValidationReport`] and the offending
    /// clauses excluded, mirroring how a human would set aside broken
    /// LLM-generated rules while running the rest.
    pub fn compile(&self) -> RtecResult<CompiledDescription> {
        let mut symbols = self.symbols.clone();
        let validated = validate(&self.clauses, &mut symbols);
        let sys = SysSymbols::intern(&mut symbols);
        CompiledDescription::build(symbols, sys, validated)
    }
}

/// An executable event description.
#[derive(Clone, Debug)]
pub struct CompiledDescription {
    /// Symbol table snapshot (self-contained; independent of the source
    /// description).
    pub symbols: SymbolTable,
    /// Reserved-predicate symbols.
    pub sys: SysSymbols,
    /// Simple-fluent rules.
    pub simple: Vec<SimpleRule>,
    /// Statically-determined-fluent rules.
    pub statics: Vec<StaticRule>,
    /// Background knowledge.
    pub facts: FactStore,
    /// Validation findings (rejected clauses, tolerated deviations).
    pub report: ValidationReport,
    /// Fluents defined by rules, in bottom-up evaluation order.
    pub strata: Vec<FluentKey>,
    /// Indices into [`CompiledDescription::simple`], per fluent.
    pub simple_by_fluent: HashMap<FluentKey, Vec<usize>>,
    /// Indices into [`CompiledDescription::statics`], per fluent.
    pub static_by_fluent: HashMap<FluentKey, Vec<usize>>,
}

impl CompiledDescription {
    fn build(
        symbols: SymbolTable,
        sys: SysSymbols,
        validated: crate::validate::ValidatedRules,
    ) -> RtecResult<CompiledDescription> {
        let crate::validate::ValidatedRules {
            mut simple,
            mut statics,
            facts,
            mut report,
        } = validated;

        // A fluent must be either simple or statically determined, never
        // both (the paper's two FVP kinds are mutually exclusive). When an
        // LLM mixes them we keep the simple definition and reject the
        // holdsFor rules, reporting each.
        let simple_keys: HashSet<FluentKey> = simple.iter().filter_map(|r| r.fvp.key()).collect();
        let mut rejected_static = Vec::new();
        for (i, r) in statics.iter().enumerate() {
            if let Some(key) = r.fvp.key() {
                if simple_keys.contains(&key) {
                    report.push(
                        crate::error::Severity::Error,
                        r.clause,
                        format!(
                            "fluent '{}/{}' is defined both as simple and as statically \
                             determined; rejecting the holdsFor rule",
                            symbols.name(key.0),
                            key.1
                        ),
                    );
                    rejected_static.push(i);
                }
            }
        }
        for &i in rejected_static.iter().rev() {
            statics.remove(i);
        }

        // Rules whose head FVP has no usable key cannot be indexed.
        simple.retain(|r| {
            let ok = r.fvp.key().is_some();
            if !ok {
                report.push(
                    crate::error::Severity::Error,
                    r.clause,
                    "head fluent is not a predicate".to_string(),
                );
            }
            ok
        });
        statics.retain(|r| {
            let ok = r.fvp.key().is_some();
            if !ok {
                report.push(
                    crate::error::Severity::Error,
                    r.clause,
                    "head fluent is not a predicate".to_string(),
                );
            }
            ok
        });

        let mut simple_by_fluent: HashMap<FluentKey, Vec<usize>> = HashMap::new();
        for (i, r) in simple.iter().enumerate() {
            simple_by_fluent
                .entry(r.fvp.key().expect("retained above"))
                .or_default()
                .push(i);
        }
        let mut static_by_fluent: HashMap<FluentKey, Vec<usize>> = HashMap::new();
        for (i, r) in statics.iter().enumerate() {
            static_by_fluent
                .entry(r.fvp.key().expect("retained above"))
                .or_default()
                .push(i);
        }

        let strata = stratify(
            &symbols,
            &simple,
            &statics,
            &simple_by_fluent,
            &static_by_fluent,
        )?;

        Ok(CompiledDescription {
            symbols,
            sys,
            simple,
            statics,
            facts: FactStore::from_facts(facts),
            report,
            strata,
            simple_by_fluent,
            static_by_fluent,
        })
    }

    /// Whether `key` is defined by some rule of this description.
    pub fn defines(&self, key: FluentKey) -> bool {
        self.simple_by_fluent.contains_key(&key) || self.static_by_fluent.contains_key(&key)
    }

    /// The set of fluent keys referenced in rule bodies but defined nowhere
    /// in this description — the paper's third error category ("conditions
    /// include composite activities that are not defined"). Input entities
    /// (events, input fluents) must be excluded by the caller, who knows
    /// the input schema.
    pub fn referenced_fluents(&self) -> HashSet<FluentKey> {
        let mut out = HashSet::new();
        for r in &self.simple {
            for lit in &r.body {
                if let BodyLiteral::HoldsAt { fvp, .. } = lit {
                    if let Some(k) = fvp.key() {
                        out.insert(k);
                    }
                }
            }
        }
        for r in &self.statics {
            for lit in &r.body {
                if let StaticLiteral::HoldsFor { fvp, .. } = lit {
                    if let Some(k) = fvp.key() {
                        out.insert(k);
                    }
                }
            }
        }
        out
    }
}

/// Computes a bottom-up evaluation order of the defined fluents via the
/// shared dependency graph ([`crate::semantics`]); errors out on cycles.
fn stratify(
    symbols: &SymbolTable,
    simple: &[SimpleRule],
    statics: &[StaticRule],
    simple_by_fluent: &HashMap<FluentKey, Vec<usize>>,
    static_by_fluent: &HashMap<FluentKey, Vec<usize>>,
) -> RtecResult<Vec<FluentKey>> {
    let defined = simple_by_fluent
        .keys()
        .chain(static_by_fluent.keys())
        .copied();
    let graph = FluentGraph::from_rules(defined, simple, statics);
    graph.stratify().map_err(|failure| match failure {
        StratifyFailure::SelfCycle((f, a)) => RtecError::CyclicDependency {
            cycle: format!("{}/{} depends on itself", symbols.name(f), a),
        },
        StratifyFailure::Cycle(members) => RtecError::CyclicDependency {
            cycle: members
                .iter()
                .map(|(f, a)| format!("{}/{}", symbols.name(*f), a))
                .collect::<Vec<_>>()
                .join(" -> "),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_simple_description() {
        let desc = EventDescription::parse(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).\n\
             terminatedAt(f(V)=true, T) :- happensAt(x(V), T).\n\
             holdsFor(g(V)=true, I) :- holdsFor(f(V)=true, I1), union_all([I1], I).",
        )
        .unwrap();
        let c = desc.compile().unwrap();
        assert!(!c.report.has_errors());
        assert_eq!(c.simple.len(), 2);
        assert_eq!(c.statics.len(), 1);
        // f must come before g in the evaluation order.
        let f = c.symbols.get("f").unwrap();
        let g = c.symbols.get("g").unwrap();
        let fi = c.strata.iter().position(|k| k.0 == f).unwrap();
        let gi = c.strata.iter().position(|k| k.0 == g).unwrap();
        assert!(fi < gi);
    }

    #[test]
    fn hierarchy_orders_deep_chains() {
        let desc = EventDescription::parse(
            "holdsFor(c(V)=true, I) :- holdsFor(b(V)=true, I1), union_all([I1], I).\n\
             holdsFor(b(V)=true, I) :- holdsFor(a(V)=true, I1), union_all([I1], I).\n\
             initiatedAt(a(V)=true, T) :- happensAt(e(V), T).\n\
             initiatedAt(d(V)=true, T) :- happensAt(e(V), T), holdsAt(c(V)=true, T).",
        )
        .unwrap();
        let c = desc.compile().unwrap();
        let pos = |n: &str| {
            let s = c.symbols.get(n).unwrap();
            c.strata.iter().position(|k| k.0 == s).unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
        assert!(pos("c") < pos("d"));
    }

    #[test]
    fn cyclic_descriptions_are_rejected() {
        let desc = EventDescription::parse(
            "holdsFor(a(V)=true, I) :- holdsFor(b(V)=true, I1), union_all([I1], I).\n\
             holdsFor(b(V)=true, I) :- holdsFor(a(V)=true, I1), union_all([I1], I).",
        )
        .unwrap();
        assert!(matches!(
            desc.compile(),
            Err(RtecError::CyclicDependency { .. })
        ));
    }

    #[test]
    fn self_dependency_rejected() {
        let desc = EventDescription::parse(
            "initiatedAt(a(V)=true, T) :- happensAt(e(V), T), holdsAt(a(V)=false, T).",
        )
        .unwrap();
        assert!(matches!(
            desc.compile(),
            Err(RtecError::CyclicDependency { .. })
        ));
    }

    #[test]
    fn mixed_fluent_kind_keeps_simple_rejects_static() {
        let desc = EventDescription::parse(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).\n\
             holdsFor(f(V)=true, I) :- holdsFor(g(V)=true, I1), union_all([I1], I).",
        )
        .unwrap();
        let c = desc.compile().unwrap();
        assert_eq!(c.simple.len(), 1);
        assert!(c.statics.is_empty());
        assert!(c.report.has_errors());
    }

    #[test]
    fn lenient_parse_keeps_good_clauses() {
        let desc = EventDescription::parse_lenient(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).\n\
             this is (not { valid prolog.\n\
             terminatedAt(f(V)=true, T) :- happensAt(x(V), T).",
        );
        assert_eq!(desc.clauses.len(), 2);
        assert!(!desc.parse_errors.is_empty());
    }

    #[test]
    fn to_source_round_trips() {
        let src = "initiatedAt(f(V)=true, T) :- happensAt(e(V), T), not holdsAt(g(V)=true, T).";
        let desc = EventDescription::parse(src).unwrap();
        let printed = desc.to_source();
        let reparsed = EventDescription::parse(&printed).unwrap();
        assert_eq!(desc.clauses[0].head, reparsed.clauses[0].head);
        assert_eq!(desc.clauses[0].body.len(), reparsed.clauses[0].body.len());
    }

    #[test]
    fn referenced_fluents_reports_undefined() {
        let desc = EventDescription::parse(
            "holdsFor(g(V)=true, I) :- holdsFor(phantom(V)=true, I1), union_all([I1], I).",
        )
        .unwrap();
        let c = desc.compile().unwrap();
        let phantom = c.symbols.get("phantom").unwrap();
        assert!(c.referenced_fluents().contains(&(phantom, 1)));
        assert!(!c.defines((phantom, 1)));
    }
}
