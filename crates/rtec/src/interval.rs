//! Maximal-interval algebra.
//!
//! RTEC reduces composite activity recognition to operations on lists of
//! *maximal intervals*: the periods during which a fluent-value pair holds
//! continuously. This module implements the interval representation and the
//! three interval-manipulation constructs of the language —
//! [`IntervalList::union_all`], [`IntervalList::intersect_all`] and
//! [`IntervalList::relative_complement_all`] — plus helpers used by the
//! evaluation harness (duration measures, clipping, point queries).
//!
//! # Semantics
//!
//! Time-points are non-negative integers ([`Timepoint`]). An interval is
//! half-open: `[start, end)` contains every `T` with `start <= T < end`.
//! Following the Event Calculus, an initiation at `Ts` makes the fluent hold
//! *from `Ts + 1` onwards*, and a termination at `Te` makes it cease to hold
//! *after* `Te`; the engine therefore emits `[Ts + 1, Te + 1)`, which equals
//! the paper's `(Ts, Te]`. An interval that is still open at the end of the
//! processed stream has `end == INF`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A time-point on RTEC's linear, integer timeline.
pub type Timepoint = i64;

/// Sentinel end-point of an interval that has not been terminated yet.
pub const INF: Timepoint = i64::MAX;

/// A non-empty half-open interval `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// First time-point included in the interval.
    pub start: Timepoint,
    /// First time-point *after* the interval; `INF` when still open.
    pub end: Timepoint,
}

impl Interval {
    /// Creates `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start >= end` (empty and reversed intervals are
    /// unrepresentable by construction).
    pub fn new(start: Timepoint, end: Timepoint) -> Interval {
        assert!(start < end, "empty interval [{start}, {end})");
        Interval { start, end }
    }

    /// Creates the open-ended interval `[start, INF)`.
    pub fn open(start: Timepoint) -> Interval {
        Interval { start, end: INF }
    }

    /// Whether `t` lies inside the interval.
    pub fn contains(&self, t: Timepoint) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the interval extends to infinity.
    pub fn is_open(&self) -> bool {
        self.end == INF
    }

    /// Number of time-points covered; `None` for open intervals.
    pub fn duration(&self) -> Option<u64> {
        if self.is_open() {
            None
        } else {
            Some((self.end - self.start) as u64)
        }
    }

    /// Intersection with another interval, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// Whether the two intervals overlap or are adjacent (share an
    /// endpoint), i.e. whether their union is a single interval.
    pub fn touches(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_open() {
            write!(f, "[{}, inf)", self.start)
        } else {
            write!(f, "[{}, {})", self.start, self.end)
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A sorted list of disjoint, non-adjacent maximal intervals.
///
/// The invariant (checked in debug builds) is that for consecutive entries
/// `a, b`: `a.end < b.start`. All set operations preserve it.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalList {
    ivs: Vec<Interval>,
}

impl IntervalList {
    /// The empty list.
    pub fn new() -> IntervalList {
        IntervalList::default()
    }

    /// Builds a list from arbitrary intervals, sorting and amalgamating
    /// overlapping or adjacent ones.
    pub fn from_intervals(mut ivs: Vec<Interval>) -> IntervalList {
        ivs.sort_by_key(|iv| (iv.start, iv.end));
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                Some(last) if last.touches(&iv) => last.end = last.end.max(iv.end),
                _ => out.push(iv),
            }
        }
        IntervalList { ivs: out }
    }

    /// Builds a list from `(start, end)` pairs (convenience for tests).
    pub fn from_pairs(pairs: &[(Timepoint, Timepoint)]) -> IntervalList {
        IntervalList::from_intervals(pairs.iter().map(|&(s, e)| Interval::new(s, e)).collect())
    }

    /// Appends an interval that must start strictly after the current last
    /// interval ends; cheaper than [`IntervalList::from_intervals`] when the
    /// caller produces intervals in order (the engine does).
    pub fn push(&mut self, iv: Interval) {
        if let Some(last) = self.ivs.last_mut() {
            assert!(iv.start >= last.end, "push out of order: {iv} after {last}");
            if iv.start == last.end {
                last.end = iv.end;
                return;
            }
        }
        self.ivs.push(iv);
    }

    /// Number of maximal intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// The intervals, sorted and disjoint.
    pub fn as_slice(&self) -> &[Interval] {
        &self.ivs
    }

    /// Iterates over the maximal intervals.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.ivs.iter()
    }

    /// Point query: does some interval contain `t`? O(log n).
    pub fn contains(&self, t: Timepoint) -> bool {
        self.ivs
            .binary_search_by(|iv| {
                if t < iv.start {
                    std::cmp::Ordering::Greater
                } else if t >= iv.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Total covered duration in time-points; open intervals are measured up
    /// to `horizon`.
    pub fn duration_up_to(&self, horizon: Timepoint) -> u64 {
        self.ivs
            .iter()
            .map(|iv| {
                let end = iv.end.min(horizon);
                if end > iv.start {
                    (end - iv.start) as u64
                } else {
                    0
                }
            })
            .sum()
    }

    /// Union of any number of interval lists (the `union_all` construct).
    pub fn union_all(lists: &[&IntervalList]) -> IntervalList {
        crate::obs::metrics().interval_union.inc();
        crate::profile::count_interval_op();
        match lists.len() {
            0 => IntervalList::new(),
            1 => lists[0].clone(),
            _ => {
                // k-way merge; lists are individually sorted so a simple
                // collect-and-normalise is O(n log n) worst case but linear
                // in practice thanks to the sort's adaptivity.
                let mut all: Vec<Interval> =
                    Vec::with_capacity(lists.iter().map(|l| l.len()).sum());
                for l in lists {
                    all.extend_from_slice(&l.ivs);
                }
                IntervalList::from_intervals(all)
            }
        }
    }

    /// Intersection of any number of interval lists (the `intersect_all`
    /// construct). The intersection of zero lists is empty.
    pub fn intersect_all(lists: &[&IntervalList]) -> IntervalList {
        let mut iter = lists.iter();
        let Some(first) = iter.next() else {
            return IntervalList::new();
        };
        let mut acc = (*first).clone();
        for l in iter {
            acc = acc.intersect(l);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Pairwise intersection with `other`, by linear merge.
    pub fn intersect(&self, other: &IntervalList) -> IntervalList {
        crate::obs::metrics().interval_intersect.inc();
        crate::profile::count_interval_op();
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.ivs.len() && j < other.ivs.len() {
            let (a, b) = (&self.ivs[i], &other.ivs[j]);
            if let Some(iv) = a.intersect(b) {
                out.push(iv);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalList { ivs: out }
    }

    /// The `relative_complement_all` construct: the sub-intervals of `self`
    /// that are covered by none of `subtract`.
    pub fn relative_complement_all(&self, subtract: &[&IntervalList]) -> IntervalList {
        let minus = IntervalList::union_all(subtract);
        self.difference(&minus)
    }

    /// Pairwise set difference `self \ other`, by linear merge.
    pub fn difference(&self, other: &IntervalList) -> IntervalList {
        crate::obs::metrics().interval_complement.inc();
        crate::profile::count_interval_op();
        let mut out = Vec::new();
        let mut j = 0;
        for a in &self.ivs {
            let mut cur = *a;
            // Skip subtrahend intervals entirely before cur.
            while j < other.ivs.len() && other.ivs[j].end <= cur.start {
                j += 1;
            }
            let mut k = j;
            let mut alive = true;
            while alive && k < other.ivs.len() && other.ivs[k].start < cur.end {
                let b = &other.ivs[k];
                if b.start > cur.start {
                    out.push(Interval::new(cur.start, b.start));
                }
                if b.end < cur.end {
                    cur = Interval::new(b.end, cur.end);
                    k += 1;
                } else {
                    alive = false;
                }
            }
            if alive {
                out.push(cur);
            }
        }
        IntervalList { ivs: out }
    }

    /// Restricts the list to `[from, to)`, dropping empty results.
    pub fn clip(&self, from: Timepoint, to: Timepoint) -> IntervalList {
        let window = IntervalList {
            ivs: vec![Interval::new(from, to)],
        };
        self.intersect(&window)
    }

    /// Replaces an open final interval's end with `t` (used to close
    /// still-open fluents at the end of the processed stream). Intervals
    /// starting at or after `t` are dropped.
    pub fn close_at(&self, t: Timepoint) -> IntervalList {
        let mut out = Vec::with_capacity(self.ivs.len());
        for iv in &self.ivs {
            if iv.start >= t {
                continue;
            }
            out.push(Interval {
                start: iv.start,
                end: iv.end.min(t),
            });
        }
        IntervalList { ivs: out }
    }

    /// Merges another list into this one (amalgamating at the seams); used
    /// when accumulating per-window results into a global output.
    pub fn merge(&mut self, other: &IntervalList) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        *self = IntervalList::union_all(&[self, other]);
    }

    /// Asserts the sorted/disjoint/non-adjacent invariant (used by
    /// property-based tests).
    pub fn check_invariant(&self) {
        for w in self.ivs.windows(2) {
            assert!(w[0].end < w[1].start, "interval list invariant violated");
        }
    }
}

impl fmt::Debug for IntervalList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.ivs).finish()
    }
}

impl fmt::Display for IntervalList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Interval> for IntervalList {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalList::from_intervals(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn il(pairs: &[(Timepoint, Timepoint)]) -> IntervalList {
        IntervalList::from_pairs(pairs)
    }

    #[test]
    fn from_intervals_amalgamates() {
        let l = il(&[(5, 10), (1, 3), (9, 12), (12, 14)]);
        assert_eq!(l.as_slice(), &[Interval::new(1, 3), Interval::new(5, 14)]);
    }

    #[test]
    fn contains_point_queries() {
        let l = il(&[(1, 3), (10, 20)]);
        assert!(l.contains(1));
        assert!(l.contains(2));
        assert!(!l.contains(3));
        assert!(l.contains(15));
        assert!(!l.contains(5));
        assert!(!l.contains(0));
        assert!(!l.contains(20));
    }

    #[test]
    fn union_of_overlapping_lists() {
        let a = il(&[(1, 5), (10, 15)]);
        let b = il(&[(3, 8), (14, 20)]);
        let u = IntervalList::union_all(&[&a, &b]);
        assert_eq!(u.as_slice(), &[Interval::new(1, 8), Interval::new(10, 20)]);
    }

    #[test]
    fn union_of_empty_is_empty() {
        assert!(IntervalList::union_all(&[]).is_empty());
        let e = IntervalList::new();
        assert!(IntervalList::union_all(&[&e, &e]).is_empty());
    }

    #[test]
    fn intersection_basic() {
        let a = il(&[(1, 10), (20, 30)]);
        let b = il(&[(5, 25)]);
        let i = a.intersect(&b);
        assert_eq!(i.as_slice(), &[Interval::new(5, 10), Interval::new(20, 25)]);
    }

    #[test]
    fn intersect_all_three_lists() {
        let a = il(&[(0, 100)]);
        let b = il(&[(10, 50), (60, 90)]);
        let c = il(&[(40, 70)]);
        let i = IntervalList::intersect_all(&[&a, &b, &c]);
        assert_eq!(
            i.as_slice(),
            &[Interval::new(40, 50), Interval::new(60, 70)]
        );
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = il(&[(1, 10)]);
        let e = IntervalList::new();
        assert!(a.intersect(&e).is_empty());
        assert!(IntervalList::intersect_all(&[&a, &e]).is_empty());
    }

    #[test]
    fn difference_carves_holes() {
        let a = il(&[(0, 100)]);
        let b = il(&[(10, 20), (30, 40)]);
        let d = a.difference(&b);
        assert_eq!(
            d.as_slice(),
            &[
                Interval::new(0, 10),
                Interval::new(20, 30),
                Interval::new(40, 100)
            ]
        );
    }

    #[test]
    fn difference_consumes_whole_intervals() {
        let a = il(&[(5, 10), (20, 25)]);
        let b = il(&[(0, 30)]);
        assert!(a.difference(&b).is_empty());
    }

    #[test]
    fn difference_with_shared_endpoints() {
        let a = il(&[(0, 10)]);
        let b = il(&[(0, 5)]);
        assert_eq!(a.difference(&b).as_slice(), &[Interval::new(5, 10)]);
        let c = il(&[(5, 10)]);
        assert_eq!(a.difference(&c).as_slice(), &[Interval::new(0, 5)]);
    }

    #[test]
    fn relative_complement_all_subtracts_union() {
        let base = il(&[(0, 50)]);
        let s1 = il(&[(5, 10)]);
        let s2 = il(&[(8, 20)]);
        let rc = base.relative_complement_all(&[&s1, &s2]);
        assert_eq!(rc.as_slice(), &[Interval::new(0, 5), Interval::new(20, 50)]);
    }

    #[test]
    fn open_intervals_in_operations() {
        let a = IntervalList::from_intervals(vec![Interval::open(10)]);
        let b = il(&[(0, 20)]);
        let i = a.intersect(&b);
        assert_eq!(i.as_slice(), &[Interval::new(10, 20)]);
        let u = IntervalList::union_all(&[&a, &b]);
        assert_eq!(u.as_slice(), &[Interval::open(0)]);
    }

    #[test]
    fn close_at_truncates_open_tail() {
        let a = IntervalList::from_intervals(vec![Interval::new(0, 5), Interval::open(10)]);
        let c = a.close_at(42);
        assert_eq!(c.as_slice(), &[Interval::new(0, 5), Interval::new(10, 42)]);
        // Closing before the open interval's start drops it.
        let c2 = a.close_at(10);
        assert_eq!(c2.as_slice(), &[Interval::new(0, 5)]);
    }

    #[test]
    fn clip_restricts_to_window() {
        let a = il(&[(0, 10), (20, 30), (40, 50)]);
        let c = a.clip(5, 45);
        assert_eq!(
            c.as_slice(),
            &[
                Interval::new(5, 10),
                Interval::new(20, 30),
                Interval::new(40, 45)
            ]
        );
    }

    #[test]
    fn duration_measures() {
        let a = il(&[(0, 10), (20, 25)]);
        assert_eq!(a.duration_up_to(100), 15);
        assert_eq!(a.duration_up_to(22), 12);
        let open = IntervalList::from_intervals(vec![Interval::open(90)]);
        assert_eq!(open.duration_up_to(100), 10);
    }

    #[test]
    fn merge_accumulates_across_windows() {
        let mut acc = il(&[(0, 10)]);
        acc.merge(&il(&[(10, 20)]));
        assert_eq!(acc.as_slice(), &[Interval::new(0, 20)]);
        acc.merge(&il(&[(30, 40)]));
        assert_eq!(acc.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn empty_interval_panics() {
        let _ = Interval::new(5, 5);
    }

    #[test]
    fn push_amalgamates_adjacent() {
        let mut l = IntervalList::new();
        l.push(Interval::new(0, 5));
        l.push(Interval::new(5, 9));
        l.push(Interval::new(12, 14));
        assert_eq!(l.as_slice(), &[Interval::new(0, 9), Interval::new(12, 14)]);
    }
}
