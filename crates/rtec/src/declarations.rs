//! Input-schema declarations.
//!
//! Real RTEC deployments ship a declarations file alongside the event
//! description, naming the input events and input fluents of the
//! application. Declarations enable *schema checking*: a rule body that
//! refers to an event or fluent that is neither declared as input nor
//! defined by the description is flagged — exactly the paper's third
//! error category ("conditions include composite activities that are not
//! defined"), caught statically instead of at run time.
//!
//! Declarations are written as ordinary facts using `/`-terms:
//!
//! ```text
//! inputEvent(entersArea/2).
//! inputEvent(gap_start/1).
//! inputFluent(proximity/2).
//! ```

use crate::ast::FluentKey;
use crate::description::CompiledDescription;
use crate::error::{Severity, ValidationReport};
use crate::symbol::{Symbol, SymbolTable};
use crate::term::Term;
use std::collections::HashSet;

/// The declared input schema of an event description.
#[derive(Clone, Debug, Default)]
pub struct Declarations {
    /// Declared input events, as `(functor, arity)`.
    pub input_events: HashSet<(Symbol, usize)>,
    /// Declared input fluents, as `(functor, arity)`.
    pub input_fluents: HashSet<(Symbol, usize)>,
}

impl Declarations {
    /// Whether any declaration exists (schema checking is opt-in: with no
    /// declarations, nothing is checked).
    pub fn is_empty(&self) -> bool {
        self.input_events.is_empty() && self.input_fluents.is_empty()
    }

    /// Extracts declarations from a compiled description's background
    /// facts (`inputEvent/1` and `inputFluent/1` over `Name/Arity`
    /// terms).
    pub fn from_description(desc: &CompiledDescription) -> Declarations {
        let mut d = Declarations::default();
        let Some(slash) = desc.symbols.get("/") else {
            return d;
        };
        let parse_sig = |t: &Term| -> Option<(Symbol, usize)> {
            match t {
                Term::Compound(f, args) if *f == slash && args.len() == 2 => {
                    let name = match &args[0] {
                        Term::Atom(s) => *s,
                        _ => return None,
                    };
                    let arity = match &args[1] {
                        Term::Int(i) if *i >= 0 => *i as usize,
                        _ => return None,
                    };
                    Some((name, arity))
                }
                _ => None,
            }
        };
        for fact in desc.facts.iter() {
            let Some((functor, _)) = fact.signature() else {
                continue;
            };
            let name = desc.symbols.try_name(functor).unwrap_or("");
            if fact.arity() != 1 {
                continue;
            }
            if let Some(sig) = parse_sig(&fact.args()[0]) {
                match name {
                    "inputEvent" => {
                        d.input_events.insert(sig);
                    }
                    "inputFluent" => {
                        d.input_fluents.insert(sig);
                    }
                    _ => {}
                }
            }
        }
        d
    }

    /// Schema-checks a compiled description against these declarations,
    /// reporting each out-of-schema reference once as a warning.
    ///
    /// Checked: `happensAt` body events must be declared input events;
    /// `holdsAt`/`holdsFor` body fluents must be declared input fluents or
    /// defined by the description.
    pub fn check(&self, desc: &CompiledDescription) -> ValidationReport {
        let mut report = ValidationReport::default();
        if self.is_empty() {
            return report;
        }
        let mut seen: HashSet<(bool, FluentKey)> = HashSet::new();
        let mut flag = |is_event: bool,
                        key: FluentKey,
                        clause: usize,
                        symbols: &SymbolTable,
                        report: &mut ValidationReport| {
            if !seen.insert((is_event, key)) {
                return;
            }
            let kind = if is_event { "event" } else { "fluent" };
            report.push(
                Severity::Warning,
                clause,
                format!(
                    "{kind} '{}/{}' is neither a declared input nor defined by the \
                     description",
                    symbols.try_name(key.0).unwrap_or("?"),
                    key.1
                ),
            );
        };

        for rule in &desc.simple {
            for lit in &rule.body {
                match lit {
                    crate::ast::BodyLiteral::HappensAt { event, .. } => {
                        if let Some(sig) = event.signature() {
                            if !self.input_events.contains(&sig) {
                                flag(true, sig, rule.clause, &desc.symbols, &mut report);
                            }
                        }
                    }
                    crate::ast::BodyLiteral::HoldsAt { fvp, .. } => {
                        if let Some(key) = fvp.key() {
                            if !self.input_fluents.contains(&key) && !desc.defines(key) {
                                flag(false, key, rule.clause, &desc.symbols, &mut report);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        for rule in &desc.statics {
            for lit in &rule.body {
                if let crate::ast::StaticLiteral::HoldsFor { fvp, .. } = lit {
                    if let Some(key) = fvp.key() {
                        if !self.input_fluents.contains(&key) && !desc.defines(key) {
                            flag(false, key, rule.clause, &desc.symbols, &mut report);
                        }
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::EventDescription;

    const SRC: &str = "
        inputEvent(entersArea/2).
        inputEvent(gap_start/1).
        inputFluent(proximity/2).
        initiatedAt(withinArea(V, K)=true, T) :-
            happensAt(entersArea(V, A), T), areaType(A, K).
        terminatedAt(withinArea(V, K)=true, T) :-
            happensAt(gap_start(V), T).
        holdsFor(together(V1, V2)=true, I) :-
            holdsFor(proximity(V1, V2)=true, Ip), union_all([Ip], I).
        areaType(a1, fishing).
    ";

    #[test]
    fn declarations_are_extracted() {
        let desc = EventDescription::parse(SRC).unwrap();
        let compiled = desc.compile().unwrap();
        let d = Declarations::from_description(&compiled);
        assert_eq!(d.input_events.len(), 2);
        assert_eq!(d.input_fluents.len(), 1);
    }

    #[test]
    fn conforming_description_passes() {
        let desc = EventDescription::parse(SRC).unwrap();
        let compiled = desc.compile().unwrap();
        let d = Declarations::from_description(&compiled);
        let report = d.check(&compiled);
        assert!(report.issues.is_empty(), "{:?}", report.issues);
    }

    #[test]
    fn out_of_schema_references_are_flagged() {
        let src = format!(
            "{SRC}\n\
             initiatedAt(odd(V)=true, T) :- happensAt(mysteryEvent(V), T).\n\
             holdsFor(weird(V)=true, I) :- holdsFor(phantom(V)=true, Ip), union_all([Ip], I).",
        );
        let desc = EventDescription::parse(&src).unwrap();
        let compiled = desc.compile().unwrap();
        let d = Declarations::from_description(&compiled);
        let report = d.check(&compiled);
        let messages: Vec<&str> = report.issues.iter().map(|i| i.message.as_str()).collect();
        assert_eq!(messages.len(), 2, "{messages:?}");
        assert!(messages.iter().any(|m| m.contains("mysteryEvent")));
        assert!(messages.iter().any(|m| m.contains("phantom")));
    }

    #[test]
    fn defined_fluents_are_in_schema() {
        // withinArea is defined by the description, so referencing it via
        // holdsAt is fine even though it is not an input fluent.
        let src = format!(
            "{SRC}\n\
             initiatedAt(alert(V)=true, T) :- happensAt(gap_start(V), T), \
                 holdsAt(withinArea(V, fishing)=true, T).",
        );
        let desc = EventDescription::parse(&src).unwrap();
        let compiled = desc.compile().unwrap();
        let d = Declarations::from_description(&compiled);
        assert!(d.check(&compiled).issues.is_empty());
    }

    #[test]
    fn no_declarations_means_no_checking() {
        let desc =
            EventDescription::parse("initiatedAt(f(V)=true, T) :- happensAt(anything(V), T).")
                .unwrap();
        let compiled = desc.compile().unwrap();
        let d = Declarations::from_description(&compiled);
        assert!(d.is_empty());
        assert!(d.check(&compiled).issues.is_empty());
    }

    #[test]
    fn duplicate_references_reported_once() {
        let src = format!(
            "{SRC}\n\
             initiatedAt(odd(V)=true, T) :- happensAt(mysteryEvent(V), T).\n\
             terminatedAt(odd(V)=true, T) :- happensAt(mysteryEvent(V), T).",
        );
        let desc = EventDescription::parse(&src).unwrap();
        let compiled = desc.compile().unwrap();
        let d = Declarations::from_description(&compiled);
        assert_eq!(d.check(&compiled).issues.len(), 1);
    }
}
